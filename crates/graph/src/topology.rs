//! The [`Topology`] abstraction: what the CONGEST engine actually needs
//! from a graph, plus seed-deterministic *implicit* topologies that emit
//! adjacency on demand without materializing an edge list.
//!
//! A materialized CSR [`Graph`] is an implementation accident, not a
//! requirement: the engine and every node program touch a graph only
//! through `node_count` / `degree` / `port` / `endpoints` / `weight` /
//! `side_of`. [`Topology`] captures exactly that surface, object-safely,
//! so a `&dyn Topology` can stand in anywhere a `&Graph` used to — the
//! CSR graph implements it by delegation (unchanged semantics,
//! bit-identical runs), and [`ImplicitTopology`] implements it from
//! closed-form adjacency, making n = 10⁶ runs fit in memory that a
//! materialized graph plus per-node state would exhaust.
//!
//! # Port/edge-id contract
//!
//! [`Graph`] numbers ports in edge-insertion order. Every implicit
//! family defines a canonical global edge-id enumeration and presents
//! each node's ports **sorted by edge id**; its
//! [`ImplicitTopology::materialize`] twin inserts edges in exactly that
//! id order, which makes the CSR twin's ports identical — so a protocol
//! run is bit-for-bit the same on either representation (the
//! `topology_equiv` proptests pin this).
//!
//! # Determinism domain
//!
//! `ring`, `torus` and `reg` (circulant) adjacency is pure arithmetic:
//! O(1) per port, any n. `gnp` draws each pair's coin from a keyed hash
//! of `(seed, u, v)` — exact and replayable, but a *row* costs O(n)
//! hashes and construction costs O(n²), so the spec parser caps it at
//! [`GNP_MAX_NODES`] nodes; million-node runs use the structured
//! families.

use crate::bitset::BitSet;
use crate::graph::{EdgeId, Graph, NodeId, Side};
use crate::GraphError;

/// Maximum node count the `gnp:` implicit family accepts: G(n,p)
/// construction is O(n²) keyed hashes, so past this size it stops being
/// "implicit" in any useful sense (use `ring`/`torus`/`reg` instead).
pub const GNP_MAX_NODES: usize = 50_000;

/// The graph surface the CONGEST engine and runtime middleware consume.
///
/// Object-safe by construction: engines hold `&dyn Topology`. `Sync` is
/// required because the sharded engine shares the topology across
/// worker threads.
pub trait Topology: Sync {
    /// Number of nodes.
    fn node_count(&self) -> usize;

    /// Number of edges (parallel edges counted individually).
    fn edge_count(&self) -> usize;

    /// The degree of `v` (number of incident edges).
    fn degree(&self, v: NodeId) -> usize;

    /// The maximum degree `Δ` (0 for an empty graph).
    fn max_degree(&self) -> usize;

    /// The `(neighbour, edge)` pair behind port `p` of node `v`; ports
    /// number `0..degree(v)`.
    fn port(&self, v: NodeId, p: usize) -> (NodeId, EdgeId);

    /// Endpoints of edge `e` (unordered).
    fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId);

    /// Weight of edge `e` (1.0 for unweighted topologies).
    fn weight(&self, e: EdgeId) -> f64 {
        let _ = e;
        1.0
    }

    /// Whether explicit weights are attached.
    fn is_weighted(&self) -> bool {
        false
    }

    /// The side of `v` in a known bipartition, if one is known.
    fn side_of(&self, v: NodeId) -> Option<Side> {
        let _ = v;
        None
    }

    /// Downcast hook: the materialized CSR graph behind this topology,
    /// if it *is* one. Layers that genuinely need CSR-only operations
    /// (e.g. `edge_subgraph` in churn maintenance) use this to avoid
    /// re-materializing, and fall back to [`materialize`] otherwise.
    fn as_graph(&self) -> Option<&Graph> {
        None
    }

    /// The endpoint of `e` that is not `v`.
    ///
    /// # Panics
    /// Panics if `v` is not an endpoint of `e`.
    fn other_endpoint(&self, e: EdgeId, v: NodeId) -> NodeId {
        let (a, b) = self.endpoints(e);
        if v == a {
            b
        } else {
            assert_eq!(v, b, "node {v} is not an endpoint of edge {e}");
            a
        }
    }

    /// Neighbours of `v` in port order (one entry per incident edge).
    fn neighbors<'a>(&'a self, v: NodeId) -> Box<dyn Iterator<Item = NodeId> + 'a> {
        Box::new((0..self.degree(v)).map(move |p| self.port(v, p).0))
    }

    /// Incident arcs of `v` as `(port, neighbour, edge)` triples.
    fn incident<'a>(&'a self, v: NodeId) -> Box<dyn Iterator<Item = (usize, NodeId, EdgeId)> + 'a> {
        Box::new((0..self.degree(v)).map(move |p| {
            let (u, e) = self.port(v, p);
            (p, u, e)
        }))
    }

    /// The port of `v` whose arc is edge `e`, if any.
    fn port_of_edge(&self, v: NodeId, e: EdgeId) -> Option<usize> {
        (0..self.degree(v)).find(|&p| self.port(v, p).1 == e)
    }
}

impl Topology for Graph {
    fn node_count(&self) -> usize {
        Graph::node_count(self)
    }

    fn edge_count(&self) -> usize {
        Graph::edge_count(self)
    }

    fn degree(&self, v: NodeId) -> usize {
        Graph::degree(self, v)
    }

    fn max_degree(&self) -> usize {
        Graph::max_degree(self)
    }

    fn port(&self, v: NodeId, p: usize) -> (NodeId, EdgeId) {
        Graph::port(self, v, p)
    }

    fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        Graph::endpoints(self, e)
    }

    fn weight(&self, e: EdgeId) -> f64 {
        Graph::weight(self, e)
    }

    fn is_weighted(&self) -> bool {
        Graph::is_weighted(self)
    }

    fn side_of(&self, v: NodeId) -> Option<Side> {
        self.bipartition().map(|b| b[v])
    }

    fn as_graph(&self) -> Option<&Graph> {
        Some(self)
    }

    fn other_endpoint(&self, e: EdgeId, v: NodeId) -> NodeId {
        Graph::other_endpoint(self, e, v)
    }

    fn neighbors<'a>(&'a self, v: NodeId) -> Box<dyn Iterator<Item = NodeId> + 'a> {
        Box::new(Graph::neighbors(self, v))
    }

    fn incident<'a>(&'a self, v: NodeId) -> Box<dyn Iterator<Item = (usize, NodeId, EdgeId)> + 'a> {
        Box::new(Graph::incident(self, v))
    }

    fn port_of_edge(&self, v: NodeId, e: EdgeId) -> Option<usize> {
        Graph::port_of_edge(self, v, e)
    }
}

/// SplitMix64: the keyed hash behind the `gnp` family's pair coins.
/// (Same mixer as `dam_congest::rng::splitmix64`; duplicated here so the
/// graph crate stays dependency-free.)
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The keyed coin of pair `(u, v)` (`u < v`) under `seed`: present iff
/// the hash clears the probability threshold.
fn gnp_pair_present(seed: u64, threshold: u128, u: NodeId, v: NodeId) -> bool {
    let h = splitmix64(
        splitmix64(seed ^ 0x6E70_5F67_6E70_C01A) ^ (((u as u64) << 32) | (v as u64 & 0xFFFF_FFFF)),
    );
    u128::from(h) < threshold
}

/// A seed-deterministic implicit topology: adjacency in closed form, no
/// materialized edge list. See the module docs for the port/edge-id
/// contract each family obeys.
#[derive(Debug, Clone, PartialEq)]
pub enum ImplicitTopology {
    /// The cycle `C_n` (`n ≥ 3`): edge `e` joins `e` and `(e+1) mod n`.
    /// Bipartition (even/odd) is exposed when `n` is even.
    Ring {
        /// Number of nodes.
        n: usize,
    },
    /// The `w × h` torus grid (`w, h ≥ 3`): node `v = y·w + x`; edge
    /// `2v` goes right (x-wrap), edge `2v+1` goes down (y-wrap).
    /// Bipartition (coordinate parity) is exposed when both `w` and `h`
    /// are even.
    Torus {
        /// Grid width.
        w: usize,
        /// Grid height.
        h: usize,
    },
    /// The `d`-regular circulant on `n` nodes: offset `j ∈ 1..=d/2`
    /// contributes the edge block `(j−1)·n + v ↦ (v, (v+j) mod n)`; odd
    /// `d` (requires even `n`) adds the diameter block of `n/2` edges.
    Regular {
        /// Number of nodes (`d < n`; even when `d` is odd).
        n: usize,
        /// Degree (`1 ≤ d < n`).
        d: usize,
    },
    /// G(n, p) with keyed pairwise hash coins: pair `(u, v)` (`u < v`)
    /// is present iff `hash(seed, u, v) < p·2⁶⁴`. Exact and replayable,
    /// but O(n) per adjacency row — capped at [`GNP_MAX_NODES`].
    Gnp {
        /// Number of nodes.
        n: usize,
        /// Edge probability.
        p: f64,
        /// Coin-hash key.
        seed: u64,
        /// Forward-edge prefix sums: `prefix[u]` is the number of edges
        /// `(a, b)` with `a < u` — i.e. the first edge id owned by `u`'s
        /// forward block. Length `n + 1`; `prefix[n]` is the edge count.
        prefix: Vec<u64>,
        /// Per-node total degrees (forward + backward).
        degrees: Vec<u32>,
        /// Cached maximum degree.
        max_deg: usize,
    },
}

impl ImplicitTopology {
    /// The ring `C_n`.
    ///
    /// # Errors
    /// `n < 3` (smaller rings degenerate to parallel edges/self-loops).
    pub fn ring(n: usize) -> Result<ImplicitTopology, String> {
        if n < 3 {
            return Err(format!("ring needs n >= 3, got {n}"));
        }
        Ok(ImplicitTopology::Ring { n })
    }

    /// The `w × h` torus.
    ///
    /// # Errors
    /// `w < 3` or `h < 3` (wrap-around would create parallel edges).
    pub fn torus(w: usize, h: usize) -> Result<ImplicitTopology, String> {
        if w < 3 || h < 3 {
            return Err(format!("torus needs w, h >= 3, got {w}x{h}"));
        }
        Ok(ImplicitTopology::Torus { w, h })
    }

    /// The `d`-regular circulant on `n` nodes.
    ///
    /// # Errors
    /// `d == 0`, `d >= n`, or odd `d` with odd `n` (the diameter offset
    /// needs an even node count).
    pub fn regular(n: usize, d: usize) -> Result<ImplicitTopology, String> {
        if d == 0 || d >= n {
            return Err(format!("reg needs 1 <= d < n, got n={n} d={d}"));
        }
        if d % 2 == 1 && n % 2 == 1 {
            return Err(format!("reg with odd d={d} needs even n, got n={n}"));
        }
        Ok(ImplicitTopology::Regular { n, d })
    }

    /// G(n, p) with keyed hash coins under `seed`.
    ///
    /// # Errors
    /// `p` outside `[0, 1]` or `n > `[`GNP_MAX_NODES`] (construction is
    /// O(n²); use a structured family at that scale).
    pub fn gnp(n: usize, p: f64, seed: u64) -> Result<ImplicitTopology, String> {
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("gnp probability must be in [0, 1], got {p}"));
        }
        if n > GNP_MAX_NODES {
            return Err(format!(
                "gnp is O(n^2) to construct; n={n} exceeds the {GNP_MAX_NODES}-node cap \
                 (use ring/torus/reg at this scale)"
            ));
        }
        let threshold = gnp_threshold(p);
        let mut degrees = vec![0u32; n];
        let mut prefix = vec![0u64; n + 1];
        for u in 0..n {
            let mut fwd = 0u64;
            for v in (u + 1)..n {
                if gnp_pair_present(seed, threshold, u, v) {
                    fwd += 1;
                    degrees[u] += 1;
                    degrees[v] += 1;
                }
            }
            prefix[u + 1] = prefix[u] + fwd;
        }
        let max_deg = degrees.iter().copied().max().unwrap_or(0) as usize;
        Ok(ImplicitTopology::Gnp { n, p, seed, prefix, degrees, max_deg })
    }

    /// Parses the canonical topology spec grammar shared by the CLI,
    /// the chaos harness and the bench bins:
    ///
    /// * `ring:N` — the cycle `C_N`;
    /// * `torus:WxH` — the `W × H` torus grid;
    /// * `reg:N:D` — the `D`-regular circulant on `N` nodes;
    /// * `gnp:N:P:SEED` — G(N, P) with keyed hash coins under `SEED`.
    ///
    /// # Errors
    /// A human-readable message naming the malformed or out-of-domain
    /// spec (CLIs map it to usage-error exit 2).
    pub fn parse(spec: &str) -> Result<ImplicitTopology, String> {
        let bad = |what: &str| format!("bad topology spec '{spec}': {what}");
        let mut parts = spec.split(':');
        let family = parts.next().unwrap_or("");
        let rest: Vec<&str> = parts.collect();
        match family {
            "ring" => {
                let [n] = rest[..] else { return Err(bad("want ring:N")) };
                let n: usize = n.parse().map_err(|_| bad("N must be an integer"))?;
                ImplicitTopology::ring(n)
            }
            "torus" => {
                let [dims] = rest[..] else { return Err(bad("want torus:WxH")) };
                let (w, h) = dims.split_once('x').ok_or_else(|| bad("want torus:WxH"))?;
                let w: usize = w.parse().map_err(|_| bad("W must be an integer"))?;
                let h: usize = h.parse().map_err(|_| bad("H must be an integer"))?;
                ImplicitTopology::torus(w, h)
            }
            "reg" => {
                let [n, d] = rest[..] else { return Err(bad("want reg:N:D")) };
                let n: usize = n.parse().map_err(|_| bad("N must be an integer"))?;
                let d: usize = d.parse().map_err(|_| bad("D must be an integer"))?;
                ImplicitTopology::regular(n, d)
            }
            "gnp" => {
                let [n, p, seed] = rest[..] else { return Err(bad("want gnp:N:P:SEED")) };
                let n: usize = n.parse().map_err(|_| bad("N must be an integer"))?;
                let p: f64 = p.parse().map_err(|_| bad("P must be a probability"))?;
                let seed: u64 = seed.parse().map_err(|_| bad("SEED must be an integer"))?;
                ImplicitTopology::gnp(n, p, seed)
            }
            other => Err(format!(
                "unknown topology family '{other}' in '{spec}' (ring:N | torus:WxH | reg:N:D | \
                 gnp:N:P:SEED)"
            )),
        }
    }

    /// The canonical spec string this topology parses from.
    #[must_use]
    pub fn spec(&self) -> String {
        match *self {
            ImplicitTopology::Ring { n } => format!("ring:{n}"),
            ImplicitTopology::Torus { w, h } => format!("torus:{w}x{h}"),
            ImplicitTopology::Regular { n, d } => format!("reg:{n}:{d}"),
            ImplicitTopology::Gnp { n, p, seed, .. } => format!("gnp:{n}:{p}:{seed}"),
        }
    }

    /// Materializes the CSR twin: same node count, same edge ids, same
    /// port numbering (edges are inserted in global id order, and every
    /// implicit family presents ports sorted by edge id — which is what
    /// makes runs on either representation bit-identical).
    ///
    /// # Panics
    /// Panics only on internal enumeration bugs (the construction is
    /// self-validating).
    #[must_use]
    pub fn materialize(&self) -> Graph {
        let n = Topology::node_count(self);
        let m = Topology::edge_count(self);
        let mut b = Graph::builder(n);
        for e in 0..m {
            let (u, v) = Topology::endpoints(self, e);
            b.edge(u, v);
        }
        if let Some(sides) = self.bipartition_vec() {
            b.bipartition(sides);
        }
        b.build().expect("implicit families enumerate valid simple edges")
    }

    /// The full bipartition vector, when the family exposes one.
    fn bipartition_vec(&self) -> Option<Vec<Side>> {
        let n = Topology::node_count(self);
        (0..n).map(|v| Topology::side_of(self, v)).collect()
    }

    /// All-present node and edge masks sized for this topology —
    /// convenience for presence-mask call sites.
    #[must_use]
    pub fn full_masks(&self) -> (BitSet, BitSet) {
        (
            BitSet::filled(Topology::node_count(self), true),
            BitSet::filled(Topology::edge_count(self), true),
        )
    }

    /// Incident `(edge, neighbour)` pairs of `v`, sorted by edge id —
    /// the shared implementation behind `port`/`degree` for the
    /// constant-degree families.
    fn incident_sorted(&self, v: NodeId) -> Vec<(EdgeId, NodeId)> {
        match *self {
            ImplicitTopology::Ring { n } => {
                assert!(v < n, "node {v} out of range");
                let pred = (v + n - 1) % n;
                let succ = (v + 1) % n;
                // Edge ids: predecessor edge is `pred`, successor edge is `v`.
                let mut inc = vec![(pred, pred), (v, succ)];
                inc.sort_unstable();
                inc
            }
            ImplicitTopology::Torus { w, h } => {
                let n = w * h;
                assert!(v < n, "node {v} out of range");
                let (x, y) = (v % w, v / w);
                let right = y * w + (x + 1) % w;
                let down = ((y + 1) % h) * w + x;
                let left = y * w + (x + w - 1) % w;
                let up = ((y + h - 1) % h) * w + x;
                let mut inc =
                    vec![(2 * v, right), (2 * v + 1, down), (2 * left, left), (2 * up + 1, up)];
                inc.sort_unstable();
                inc
            }
            ImplicitTopology::Regular { n, d } => {
                assert!(v < n, "node {v} out of range");
                let mut inc = Vec::with_capacity(d);
                for j in 1..=(d / 2) {
                    let block = ((j - 1) * n) as EdgeId;
                    inc.push((block + v, (v + j) % n)); // forward: v -> v+j
                    inc.push((block + (v + n - j) % n, (v + n - j) % n)); // backward
                }
                if d % 2 == 1 {
                    let block = ((d / 2) * n) as EdgeId;
                    let half = n / 2;
                    inc.push((block + v % half, (v + half) % n));
                }
                inc.sort_unstable();
                inc
            }
            ImplicitTopology::Gnp { .. } => {
                unreachable!("gnp uses its own row scan (see `port`)")
            }
        }
    }
}

/// `p` as a 128-bit threshold on a 64-bit hash (exact at `p = 1`).
fn gnp_threshold(p: f64) -> u128 {
    if p >= 1.0 {
        1u128 << 64
    } else if p <= 0.0 {
        0
    } else {
        // Exact rounding of p·2⁶⁴ through f64 arithmetic.
        (p * (u64::MAX as f64 + 1.0)) as u128
    }
}

impl Topology for ImplicitTopology {
    fn node_count(&self) -> usize {
        match *self {
            ImplicitTopology::Ring { n }
            | ImplicitTopology::Regular { n, .. }
            | ImplicitTopology::Gnp { n, .. } => n,
            ImplicitTopology::Torus { w, h } => w * h,
        }
    }

    fn edge_count(&self) -> usize {
        match *self {
            ImplicitTopology::Ring { n } => n,
            ImplicitTopology::Torus { w, h } => 2 * w * h,
            ImplicitTopology::Regular { n, d } => (d / 2) * n + (d % 2) * (n / 2),
            ImplicitTopology::Gnp { ref prefix, .. } => {
                usize::try_from(*prefix.last().expect("prefix is nonempty")).expect("fits usize")
            }
        }
    }

    fn degree(&self, v: NodeId) -> usize {
        match *self {
            ImplicitTopology::Ring { n } => {
                assert!(v < n, "node {v} out of range");
                2
            }
            ImplicitTopology::Torus { w, h } => {
                assert!(v < w * h, "node {v} out of range");
                4
            }
            ImplicitTopology::Regular { n, d } => {
                assert!(v < n, "node {v} out of range");
                d
            }
            ImplicitTopology::Gnp { ref degrees, .. } => degrees[v] as usize,
        }
    }

    fn max_degree(&self) -> usize {
        match *self {
            ImplicitTopology::Ring { .. } => 2,
            ImplicitTopology::Torus { .. } => 4,
            ImplicitTopology::Regular { d, .. } => d,
            ImplicitTopology::Gnp { max_deg, .. } => max_deg,
        }
    }

    fn port(&self, v: NodeId, p: usize) -> (NodeId, EdgeId) {
        if let ImplicitTopology::Gnp { n, seed, p: prob, ref prefix, ref degrees, .. } = *self {
            assert!(p < degrees[v] as usize, "port {p} out of range at node {v}");
            let threshold = gnp_threshold(prob);
            // Ports sorted by edge id: edges to smaller neighbours come
            // first (their ids live in the neighbour's forward block,
            // blocks ordered by owner), then edges to larger neighbours
            // (this node's own forward block, ordered by neighbour).
            let mut seen = 0usize;
            for u in 0..v {
                if gnp_pair_present(seed, threshold, u, v) {
                    if seen == p {
                        return (u, gnp_edge_id(seed, threshold, prefix, u, v));
                    }
                    seen += 1;
                }
            }
            let mut fwd = prefix[v];
            for u in (v + 1)..n {
                if gnp_pair_present(seed, threshold, v, u) {
                    if seen == p {
                        return (u, usize::try_from(fwd).expect("fits usize"));
                    }
                    seen += 1;
                    fwd += 1;
                }
            }
            unreachable!("degree table disagrees with coin scan at node {v}");
        }
        let inc = self.incident_sorted(v);
        let (e, u) = *inc.get(p).unwrap_or_else(|| panic!("port {p} out of range at node {v}"));
        (u, e)
    }

    fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        match *self {
            ImplicitTopology::Ring { n } => {
                assert!(e < n, "edge {e} out of range");
                (e, (e + 1) % n)
            }
            ImplicitTopology::Torus { w, h } => {
                let n = w * h;
                assert!(e < 2 * n, "edge {e} out of range");
                let v = e / 2;
                let (x, y) = (v % w, v / w);
                if e.is_multiple_of(2) {
                    (v, y * w + (x + 1) % w)
                } else {
                    (v, ((y + 1) % h) * w + x)
                }
            }
            ImplicitTopology::Regular { n, d } => {
                assert!(e < Topology::edge_count(self), "edge {e} out of range");
                let j = e / n + 1;
                if d % 2 == 1 && e >= (d / 2) * n {
                    let v = e - (d / 2) * n;
                    (v, v + n / 2)
                } else {
                    let v = e % n;
                    (v, (v + j) % n)
                }
            }
            ImplicitTopology::Gnp { seed, p, ref prefix, .. } => {
                let m = Topology::edge_count(self);
                assert!(e < m, "edge {e} out of range");
                let threshold = gnp_threshold(p);
                // Owner: the largest u with prefix[u] <= e.
                let u = match prefix.partition_point(|&x| x <= e as u64) {
                    0 => unreachable!("prefix[0] == 0"),
                    idx => idx - 1,
                };
                let mut rank = e as u64 - prefix[u];
                for v in (u + 1)..Topology::node_count(self) {
                    if gnp_pair_present(seed, threshold, u, v) {
                        if rank == 0 {
                            return (u, v);
                        }
                        rank -= 1;
                    }
                }
                unreachable!("prefix table disagrees with coin scan at edge {e}");
            }
        }
    }

    fn side_of(&self, v: NodeId) -> Option<Side> {
        match *self {
            ImplicitTopology::Ring { n } if n % 2 == 0 => {
                Some(if v.is_multiple_of(2) { Side::X } else { Side::Y })
            }
            ImplicitTopology::Torus { w, h } if w % 2 == 0 && h % 2 == 0 => {
                let (x, y) = (v % w, v / w);
                Some(if (x + y) % 2 == 0 { Side::X } else { Side::Y })
            }
            _ => None,
        }
    }
}

/// The edge id of present pair `(u, v)` (`u < v`): `u`'s block start
/// plus `v`'s rank among `u`'s forward neighbours.
fn gnp_edge_id(seed: u64, threshold: u128, prefix: &[u64], u: NodeId, v: NodeId) -> EdgeId {
    let rank = ((u + 1)..v).filter(|&w| gnp_pair_present(seed, threshold, u, w)).count() as u64;
    usize::try_from(prefix[u] + rank).expect("fits usize")
}

/// Materializes *any* topology into a CSR [`Graph`] by inserting edges
/// in global id order. For topologies whose ports are sorted by edge id
/// (every [`ImplicitTopology`] family) the twin is port-identical; for
/// an arbitrary [`Graph`] input prefer [`Topology::as_graph`], which is
/// free and exact.
///
/// # Errors
/// Propagates builder errors (cannot happen for well-formed topologies).
pub fn materialize(topo: &dyn Topology) -> Result<Graph, GraphError> {
    if let Some(g) = topo.as_graph() {
        return Ok(g.clone());
    }
    let mut b = Graph::builder(topo.node_count());
    for e in 0..topo.edge_count() {
        let (u, v) = topo.endpoints(e);
        if topo.is_weighted() {
            b.weighted_edge(u, v, topo.weight(e));
        } else {
            b.edge(u, v);
        }
    }
    if let Some(sides) = (0..topo.node_count()).map(|v| topo.side_of(v)).collect() {
        b.bipartition(sides);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the trait contract against the materialized twin: node/edge
    /// counts, degrees, every port (neighbour *and* edge id), every
    /// endpoint pair, and the bipartition.
    fn assert_twin(t: &ImplicitTopology) {
        let g = t.materialize();
        assert_eq!(Topology::node_count(t), g.node_count(), "{}", t.spec());
        assert_eq!(Topology::edge_count(t), g.edge_count(), "{}", t.spec());
        assert_eq!(Topology::max_degree(t), g.max_degree(), "{}", t.spec());
        for v in 0..g.node_count() {
            assert_eq!(Topology::degree(t, v), g.degree(v), "{} node {v}", t.spec());
            for p in 0..g.degree(v) {
                assert_eq!(Topology::port(t, v, p), g.port(v, p), "{} port {v}.{p}", t.spec());
            }
            assert_eq!(Topology::side_of(t, v), Topology::side_of(&g, v), "{} side {v}", t.spec());
        }
        for e in 0..g.edge_count() {
            assert_eq!(Topology::endpoints(t, e), g.endpoints(e), "{} edge {e}", t.spec());
        }
        if let Some(b) = g.bipartition() {
            assert_eq!(b.len(), g.node_count());
            g.validate_bipartition().expect("exposed bipartitions are proper");
        }
    }

    #[test]
    fn ring_matches_twin() {
        for n in [3, 4, 5, 8, 17] {
            assert_twin(&ImplicitTopology::ring(n).unwrap());
        }
    }

    #[test]
    fn torus_matches_twin() {
        for (w, h) in [(3, 3), (3, 4), (4, 4), (5, 3), (6, 4)] {
            assert_twin(&ImplicitTopology::torus(w, h).unwrap());
        }
    }

    #[test]
    fn regular_matches_twin() {
        for (n, d) in [(5, 2), (6, 3), (8, 4), (10, 5), (9, 4), (12, 7)] {
            assert_twin(&ImplicitTopology::regular(n, d).unwrap());
        }
    }

    #[test]
    fn gnp_matches_twin() {
        for (n, p, seed) in [(1, 0.5, 0), (12, 0.3, 1), (20, 0.5, 7), (16, 1.0, 3), (10, 0.0, 9)] {
            assert_twin(&ImplicitTopology::gnp(n, p, seed).unwrap());
        }
    }

    #[test]
    fn spec_parser_roundtrips_and_rejects() {
        for spec in ["ring:8", "torus:4x6", "reg:10:4", "gnp:12:0.25:7"] {
            let t = ImplicitTopology::parse(spec).unwrap();
            assert_eq!(t.spec(), spec);
            assert_twin(&t);
        }
        for bad in [
            "ring:2",
            "ring:x",
            "ring",
            "torus:4",
            "torus:2x5",
            "reg:4:4",
            "reg:5:3",
            "reg:4:0",
            "gnp:5:1.5:0",
            "gnp:5:0.5",
            "mesh:4",
            "",
            "gnp:999999999:0.5:0",
        ] {
            assert!(ImplicitTopology::parse(bad).is_err(), "'{bad}' must be rejected");
        }
    }

    #[test]
    fn generic_materialize_prefers_csr_and_rebuilds_implicit() {
        let t = ImplicitTopology::ring(6).unwrap();
        let twin = t.materialize();
        let again = materialize(&t).unwrap();
        assert_eq!(twin, again);
        let back = materialize(&twin).unwrap();
        assert_eq!(twin, back);
    }

    #[test]
    fn gnp_coins_are_seed_keyed() {
        let a = ImplicitTopology::gnp(30, 0.4, 1).unwrap();
        let b = ImplicitTopology::gnp(30, 0.4, 2).unwrap();
        let c = ImplicitTopology::gnp(30, 0.4, 1).unwrap();
        assert_eq!(a, c, "same seed, same graph");
        assert_ne!(a.materialize(), b.materialize(), "different seeds should differ somewhere");
    }
}
