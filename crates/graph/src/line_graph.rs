//! The line graph `L(G)`.
//!
//! Node `e` of `L(G)` is edge `e` of `G`; two nodes are adjacent iff the
//! edges share an endpoint. Two facts make it relevant here:
//!
//! * a matching of `G` is exactly an independent set of `L(G)`, and a
//!   *maximal* matching a *maximal* independent set — the paper's
//!   matching-via-MIS trick in its simplest form;
//! * Definition 3.1's conflict graph with the empty matching and `ℓ = 1`
//!   **is** the line graph (`C_∅(1) = L(G)`), which the tests check
//!   against [`crate::conflict::ConflictGraph`].

use crate::graph::{EdgeId, Graph};

/// Builds the line graph of `g`.
///
/// Node `i` of the result corresponds to edge `i` of `g`. Parallel edges
/// of `g` become distinct, mutually adjacent nodes. The result is
/// unweighted; callers wanting edge weights as node weights keep `g`
/// alongside.
///
/// Size warning: `L(G)` has `Σ_v deg(v)·(deg(v)−1)/2` edges, quadratic in
/// the maximum degree.
#[must_use]
pub fn line_graph(g: &Graph) -> Graph {
    let mut b = Graph::builder(g.edge_count());
    for v in g.nodes() {
        let inc: Vec<EdgeId> = g.incident(v).map(|(_, _, e)| e).collect();
        for (i, &e) in inc.iter().enumerate() {
            for &f in &inc[i + 1..] {
                b.edge(e, f);
            }
        }
    }
    b.build().expect("line graph is valid")
}

/// Checks that `selected` (a set of `g`-edges, i.e. `L(G)`-nodes) is an
/// independent set of `L(G)` — equivalently, a matching of `g`.
#[must_use]
pub fn is_independent_in_line_graph(g: &Graph, selected: &[bool]) -> bool {
    assert_eq!(selected.len(), g.edge_count(), "one flag per edge");
    g.nodes().all(|v| g.incident(v).filter(|&(_, _, e)| selected[e]).count() <= 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::ConflictGraph;
    use crate::matching::Matching;
    use crate::{generators, maximal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_of_structures() {
        // L(P_n) = P_{n-1}.
        let lg = line_graph(&generators::path(5));
        assert_eq!(lg.node_count(), 4);
        assert_eq!(lg.edge_count(), 3);
        // L(C_n) = C_n.
        let lg = line_graph(&generators::cycle(7));
        assert_eq!(lg.node_count(), 7);
        assert_eq!(lg.edge_count(), 7);
        // L(K_{1,n}) = K_n.
        let lg = line_graph(&generators::star(5));
        assert_eq!(lg.node_count(), 4);
        assert_eq!(lg.edge_count(), 6);
    }

    /// Definition 3.1 with `M = ∅`, `ℓ = 1` is the line graph.
    #[test]
    fn conflict_graph_of_empty_matching_is_line_graph() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..10 {
            let g = generators::gnp(12, 0.3, &mut rng);
            let lg = line_graph(&g);
            let c = ConflictGraph::build(&g, &Matching::new(&g), 1);
            assert_eq!(c.len(), lg.node_count());
            // Each conflict-graph path is a single edge; map it to its
            // edge id and compare neighbourhoods.
            let path_edge: Vec<usize> = c.paths().iter().map(|p| p.edges()[0]).collect();
            for (i, &e) in path_edge.iter().enumerate() {
                let mut conflict_nbrs: Vec<usize> =
                    c.neighbors(i).iter().map(|&j| path_edge[j]).collect();
                conflict_nbrs.sort_unstable();
                let mut lg_nbrs: Vec<usize> = lg.neighbors(e).collect();
                lg_nbrs.sort_unstable();
                lg_nbrs.dedup(); // parallel L(G)-edges vs set semantics
                assert_eq!(conflict_nbrs, lg_nbrs, "edge {e}");
            }
        }
    }

    /// Matchings of `g` = independent sets of `L(G)`; maximality carries
    /// over.
    #[test]
    fn matchings_are_line_graph_independent_sets() {
        let mut rng = StdRng::seed_from_u64(32);
        for _ in 0..10 {
            let g = generators::gnp(14, 0.25, &mut rng);
            let m = maximal::random_maximal_matching(&g, &mut rng);
            let mut selected = vec![false; g.edge_count()];
            for e in m.edges() {
                selected[e] = true;
            }
            assert!(is_independent_in_line_graph(&g, &selected));
            // Maximal matching ⇒ maximal independent set in L(G).
            let lg = line_graph(&g);
            for e in g.edge_ids() {
                if !selected[e] {
                    assert!(
                        lg.neighbors(e).any(|f| selected[f]),
                        "unmatched edge {e} must conflict with a matched one"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_and_single_edge() {
        let g = crate::Graph::builder(4).build().unwrap();
        assert_eq!(line_graph(&g).node_count(), 0);
        let g = crate::Graph::builder(2).edge(0, 1).build().unwrap();
        let lg = line_graph(&g);
        assert_eq!(lg.node_count(), 1);
        assert_eq!(lg.edge_count(), 0);
    }
}
