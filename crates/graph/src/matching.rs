//! The [`Matching`] type: a set of pairwise non-adjacent edges.
//!
//! A matching is stored both as a per-node mate pointer (mirroring the
//! paper's distributed output convention: "each node maintains an output
//! register which either points to an incident edge ... or to NULL", §2)
//! and as a per-edge membership bitmap. The two views are kept consistent
//! by construction and checked by [`Matching::validate`].

use std::fmt;

use crate::error::GraphError;
use crate::graph::{EdgeId, Graph, NodeId};
use crate::topology::Topology;

/// A matching in a [`Graph`].
///
/// # Example
///
/// ```
/// use dam_graph::{Graph, Matching};
///
/// let g = Graph::builder(4).edge(0, 1).edge(1, 2).edge(2, 3).build().unwrap();
/// let mut m = Matching::new(&g);
/// m.add(&g, 0).unwrap();
/// assert!(m.add(&g, 1).is_err()); // edge 1 shares node 1 with edge 0
/// m.add(&g, 2).unwrap();
/// assert_eq!(m.size(), 2);
/// assert_eq!(m.mate(&g, 0), Some(1));
/// assert!(m.is_free(3) == false);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Matching {
    /// For each node, the incident matching edge (the "output register").
    mate_edge: Vec<Option<EdgeId>>,
    /// Per-edge membership.
    in_matching: Vec<bool>,
    /// Cached cardinality.
    size: usize,
}

impl Matching {
    /// The empty matching for `g`.
    #[must_use]
    pub fn new(g: &Graph) -> Matching {
        Matching::new_on(g)
    }

    /// The empty matching sized for any [`Topology`].
    #[must_use]
    pub fn new_on(g: &dyn Topology) -> Matching {
        Matching {
            mate_edge: vec![None; g.node_count()],
            in_matching: vec![false; g.edge_count()],
            size: 0,
        }
    }

    /// Builds a matching from an edge list.
    ///
    /// # Errors
    /// Returns an error if any two edges share an endpoint or an id is out
    /// of range.
    pub fn from_edges<I>(g: &Graph, edges: I) -> Result<Matching, GraphError>
    where
        I: IntoIterator<Item = EdgeId>,
    {
        Matching::from_edges_on(g, edges)
    }

    /// Builds a matching from an edge list against any [`Topology`],
    /// resolving endpoints implicitly (no CSR required).
    ///
    /// # Errors
    /// Returns an error if any two edges share an endpoint or an id is out
    /// of range.
    pub fn from_edges_on<I>(g: &dyn Topology, edges: I) -> Result<Matching, GraphError>
    where
        I: IntoIterator<Item = EdgeId>,
    {
        let mut m = Matching::new_on(g);
        for e in edges {
            m.add_on(g, e)?;
        }
        Ok(m)
    }

    /// Number of matched edges.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Whether the matching is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Total weight of the matching under `g`'s weight function.
    #[must_use]
    pub fn weight(&self, g: &dyn Topology) -> f64 {
        self.edges().map(|e| g.weight(e)).sum()
    }

    /// Whether edge `e` is in the matching.
    #[must_use]
    pub fn contains(&self, e: EdgeId) -> bool {
        self.in_matching[e]
    }

    /// Whether node `v` is free (unmatched).
    #[must_use]
    pub fn is_free(&self, v: NodeId) -> bool {
        self.mate_edge[v].is_none()
    }

    /// The matching edge incident to `v`, if any.
    #[must_use]
    pub fn matched_edge(&self, v: NodeId) -> Option<EdgeId> {
        self.mate_edge[v]
    }

    /// The mate of `v` (the paper's `M(v)`), if matched.
    #[must_use]
    pub fn mate(&self, g: &Graph, v: NodeId) -> Option<NodeId> {
        self.mate_edge[v].map(|e| g.other_endpoint(e, v))
    }

    /// Iterator over matched edge ids, ascending.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.in_matching.iter().enumerate().filter_map(|(e, &inm)| inm.then_some(e))
    }

    /// Iterator over free nodes, ascending.
    pub fn free_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.mate_edge.iter().enumerate().filter_map(|(v, me)| me.is_none().then_some(v))
    }

    /// Adds edge `e` to the matching.
    ///
    /// # Errors
    /// Returns [`GraphError::MatchingConflict`] if either endpoint is
    /// already matched, or [`GraphError::EdgeOutOfRange`].
    pub fn add(&mut self, g: &Graph, e: EdgeId) -> Result<(), GraphError> {
        self.add_on(g, e)
    }

    /// Adds edge `e` to the matching, resolving endpoints through any
    /// [`Topology`].
    ///
    /// # Errors
    /// Returns [`GraphError::MatchingConflict`] if either endpoint is
    /// already matched, or [`GraphError::EdgeOutOfRange`].
    pub fn add_on(&mut self, g: &dyn Topology, e: EdgeId) -> Result<(), GraphError> {
        if e >= self.in_matching.len() {
            return Err(GraphError::EdgeOutOfRange { edge: e, m: self.in_matching.len() });
        }
        let (u, v) = g.endpoints(e);
        if let Some(first) = self.mate_edge[u] {
            return Err(GraphError::MatchingConflict { node: u, first, second: e });
        }
        if let Some(first) = self.mate_edge[v] {
            return Err(GraphError::MatchingConflict { node: v, first, second: e });
        }
        self.mate_edge[u] = Some(e);
        self.mate_edge[v] = Some(e);
        self.in_matching[e] = true;
        self.size += 1;
        Ok(())
    }

    /// Removes edge `e` from the matching; a no-op if `e` is not matched.
    pub fn remove(&mut self, g: &Graph, e: EdgeId) {
        if e < self.in_matching.len() && self.in_matching[e] {
            let (u, v) = g.endpoints(e);
            self.mate_edge[u] = None;
            self.mate_edge[v] = None;
            self.in_matching[e] = false;
            self.size -= 1;
        }
    }

    /// Replaces the matching by `M ⊕ edges` (symmetric difference).
    ///
    /// This is the augmentation primitive: for an augmenting path `P`,
    /// `m.toggle(g, P)` yields `M ⊕ P` with one more edge. The caller is
    /// responsible for `edges` being a valid alternating structure; the
    /// result is validated and an error restores nothing (use on trusted
    /// input or validate after).
    ///
    /// # Errors
    /// Returns [`GraphError::MatchingConflict`] if the toggle does not
    /// produce a matching.
    pub fn toggle(&mut self, g: &Graph, edges: &[EdgeId]) -> Result<(), GraphError> {
        debug_assert!(
            {
                let mut sorted = edges.to_vec();
                sorted.sort_unstable();
                sorted.windows(2).all(|w| w[0] != w[1])
            },
            "toggle edges must be distinct"
        );
        let mut to_add = Vec::with_capacity(edges.len());
        for &e in edges {
            if e >= self.in_matching.len() {
                return Err(GraphError::EdgeOutOfRange { edge: e, m: self.in_matching.len() });
            }
            if self.in_matching[e] {
                self.remove(g, e);
            } else {
                to_add.push(e);
            }
        }
        for e in to_add {
            self.add(g, e)?;
        }
        Ok(())
    }

    /// Validates internal consistency and the matching property against `g`.
    ///
    /// # Errors
    /// Returns the first violation found.
    pub fn validate(&self, g: &Graph) -> Result<(), GraphError> {
        if self.mate_edge.len() != g.node_count() || self.in_matching.len() != g.edge_count() {
            return Err(GraphError::InconsistentMatching { node: 0 });
        }
        let mut count = 0usize;
        let mut seen = vec![false; g.node_count()];
        for e in g.edge_ids() {
            if !self.in_matching[e] {
                continue;
            }
            count += 1;
            let (u, v) = g.endpoints(e);
            for w in [u, v] {
                if seen[w] {
                    let first = self.mate_edge[w].unwrap_or(e);
                    return Err(GraphError::MatchingConflict { node: w, first, second: e });
                }
                seen[w] = true;
                if self.mate_edge[w] != Some(e) {
                    return Err(GraphError::InconsistentMatching { node: w });
                }
            }
        }
        for v in g.nodes() {
            if !seen[v] && self.mate_edge[v].is_some() {
                return Err(GraphError::InconsistentMatching { node: v });
            }
        }
        if count != self.size {
            return Err(GraphError::InconsistentMatching { node: 0 });
        }
        Ok(())
    }

    /// Returns the edge set as a sorted `Vec`.
    #[must_use]
    pub fn to_edge_vec(&self) -> Vec<EdgeId> {
        self.edges().collect()
    }
}

impl fmt::Debug for Matching {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Matching")
            .field("size", &self.size)
            .field("edges", &self.to_edge_vec())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path5() -> Graph {
        Graph::builder(5).edge(0, 1).edge(1, 2).edge(2, 3).edge(3, 4).build().unwrap()
    }

    #[test]
    fn add_remove_roundtrip() {
        let g = path5();
        let mut m = Matching::new(&g);
        m.add(&g, 1).unwrap();
        assert_eq!(m.size(), 1);
        assert!(m.contains(1));
        assert_eq!(m.mate(&g, 1), Some(2));
        assert_eq!(m.mate(&g, 2), Some(1));
        assert!(m.is_free(0));
        m.remove(&g, 1);
        assert!(m.is_empty());
        assert!(m.is_free(1));
        m.validate(&g).unwrap();
    }

    #[test]
    fn conflicts_rejected() {
        let g = path5();
        let mut m = Matching::new(&g);
        m.add(&g, 0).unwrap();
        let err = m.add(&g, 1).unwrap_err();
        assert!(matches!(err, GraphError::MatchingConflict { node: 1, .. }));
        m.validate(&g).unwrap();
    }

    #[test]
    fn from_edges_and_weight() {
        let g =
            Graph::builder(4).weighted_edge(0, 1, 3.0).weighted_edge(2, 3, 4.5).build().unwrap();
        let m = Matching::from_edges(&g, [0, 1]).unwrap();
        assert_eq!(m.size(), 2);
        assert!((m.weight(&g) - 7.5).abs() < 1e-12);
        assert_eq!(m.free_nodes().count(), 0);
    }

    #[test]
    fn toggle_augments_along_path() {
        // Path 0-1-2-3-4 with M = {e1 (1,2), e3 (3,4)}? e3=(3,4); take
        // M = {e1}. Augmenting path from 0 to 3: e0, e1, e2.
        let g = path5();
        let mut m = Matching::from_edges(&g, [1]).unwrap();
        m.toggle(&g, &[0, 1, 2]).unwrap();
        assert_eq!(m.size(), 2);
        assert!(m.contains(0) && m.contains(2) && !m.contains(1));
        m.validate(&g).unwrap();
        // Toggling back restores the original matching.
        m.toggle(&g, &[0, 1, 2]).unwrap();
        assert_eq!(m.to_edge_vec(), vec![1]);
    }

    #[test]
    fn out_of_range_edge() {
        let g = path5();
        let mut m = Matching::new(&g);
        assert!(matches!(m.add(&g, 99), Err(GraphError::EdgeOutOfRange { .. })));
    }
}
