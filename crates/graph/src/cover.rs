//! Vertex covers and König certificates.
//!
//! König's theorem: in a bipartite graph the maximum matching size
//! equals the minimum vertex cover size. This module extracts the
//! minimum cover from a maximum matching (the alternating-reachability
//! construction), which gives the test suite an *independently checkable
//! optimality certificate* for the Hopcroft–Karp oracle: if a matching
//! `M` and a cover `C` with `|M| = |C|` both validate, `M` is maximum —
//! no trust in the matching code required.

use crate::graph::{Graph, NodeId, Side};
use crate::matching::Matching;

/// Computes a minimum vertex cover of a bipartite graph from a maximum
/// matching (König's construction).
///
/// Let `Z` be the nodes reachable from free `X` nodes by alternating
/// paths; the cover is `(X \ Z) ∪ (Y ∩ Z)`.
///
/// # Panics
/// Panics if `g` has no recorded bipartition.
#[must_use]
pub fn koenig_vertex_cover(g: &Graph, m: &Matching) -> Vec<NodeId> {
    let sides = g.bipartition().expect("König needs a bipartition");
    let mut reachable = vec![false; g.node_count()];
    let mut queue: std::collections::VecDeque<NodeId> =
        m.free_nodes().filter(|&v| sides[v] == Side::X).collect();
    for &v in &queue {
        reachable[v] = true;
    }
    while let Some(v) = queue.pop_front() {
        if sides[v] == Side::X {
            // Leave X over non-matching edges.
            for (_, u, e) in g.incident(v) {
                if !m.contains(e) && !reachable[u] {
                    reachable[u] = true;
                    queue.push_back(u);
                }
            }
        } else if let Some(e) = m.matched_edge(v) {
            // Leave Y over the matching edge.
            let u = g.other_endpoint(e, v);
            if !reachable[u] {
                reachable[u] = true;
                queue.push_back(u);
            }
        }
    }
    g.nodes()
        .filter(|&v| match sides[v] {
            Side::X => !reachable[v],
            Side::Y => reachable[v],
        })
        .collect()
}

/// Whether `cover` touches every edge of `g`.
#[must_use]
pub fn is_vertex_cover(g: &Graph, cover: &[NodeId]) -> bool {
    let mut inc = vec![false; g.node_count()];
    for &v in cover {
        inc[v] = true;
    }
    g.edge_ids().all(|e| {
        let (u, v) = g.endpoints(e);
        inc[u] || inc[v]
    })
}

/// Certifies that `m` is a **maximum** matching of bipartite `g`:
/// validates `m`, extracts the König cover, checks it covers every edge
/// and that `|cover| == |m|`. Any matching and any cover sandwich each
/// other (`|M| ≤ |C|` always), so equality proves optimality of both.
#[must_use]
pub fn certify_maximum_bipartite(g: &Graph, m: &Matching) -> bool {
    if m.validate(g).is_err() {
        return false;
    }
    let cover = koenig_vertex_cover(g, m);
    is_vertex_cover(g, &cover) && cover.len() == m.size()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, hopcroft_karp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn certifies_hopcroft_karp() {
        let mut rng = StdRng::seed_from_u64(71);
        for trial in 0..30 {
            let g = generators::bipartite_gnp(12, 14, 0.25, &mut rng);
            let m = hopcroft_karp::maximum_bipartite_matching(&g);
            assert!(certify_maximum_bipartite(&g, &m), "certificate failed on trial {trial}");
        }
    }

    #[test]
    fn rejects_non_maximum_matchings() {
        let g = generators::path(4); // maximum matching has size 2
        let m = Matching::from_edges(&g, [1]).unwrap(); // middle edge only
        assert!(!certify_maximum_bipartite(&g, &m));
    }

    #[test]
    fn cover_on_structures() {
        // Star: cover = centre (size 1 = matching size).
        let g = generators::star(7);
        let m = hopcroft_karp::maximum_bipartite_matching(&g);
        let cover = koenig_vertex_cover(&g, &m);
        assert_eq!(cover, vec![0]);

        // Complete bipartite K_{3,5}: cover = the X side.
        let g = generators::complete_bipartite(3, 5);
        let m = hopcroft_karp::maximum_bipartite_matching(&g);
        let cover = koenig_vertex_cover(&g, &m);
        assert_eq!(cover.len(), 3);
        assert!(is_vertex_cover(&g, &cover));
    }

    #[test]
    fn empty_graph_cover() {
        let mut g = crate::Graph::builder(4).build().unwrap();
        g.compute_bipartition();
        let m = Matching::new(&g);
        assert!(certify_maximum_bipartite(&g, &m));
        assert!(koenig_vertex_cover(&g, &m).is_empty());
    }
}
