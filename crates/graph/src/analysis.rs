//! Structural graph analysis: components, distances, diameter, degree
//! statistics.
//!
//! Used by the experiment harness (e.g. to report the diameter that the
//! tree algorithm's `O(diameter)` round count is measured against) and
//! by users sizing CONGEST budgets.

use std::collections::VecDeque;

use crate::graph::{Graph, NodeId};

/// BFS distances from `source` (`usize::MAX` = unreachable).
#[must_use]
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.node_count()];
    dist[source] = 0;
    let mut queue = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        for u in g.neighbors(v) {
            if dist[u] == usize::MAX {
                dist[u] = dist[v] + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Connected components: `(component id per node, number of components)`.
#[must_use]
pub fn connected_components(g: &Graph) -> (Vec<usize>, usize) {
    let mut comp = vec![usize::MAX; g.node_count()];
    let mut count = 0;
    for start in g.nodes() {
        if comp[start] != usize::MAX {
            continue;
        }
        let id = count;
        count += 1;
        let mut stack = vec![start];
        comp[start] = id;
        while let Some(v) = stack.pop() {
            for u in g.neighbors(v) {
                if comp[u] == usize::MAX {
                    comp[u] = id;
                    stack.push(u);
                }
            }
        }
    }
    (comp, count)
}

/// Whether `g` is connected (vacuously true for `n ≤ 1`).
#[must_use]
pub fn is_connected(g: &Graph) -> bool {
    g.node_count() <= 1 || connected_components(g).1 == 1
}

/// The exact diameter of the largest component (`0` for edgeless
/// graphs). `O(n·m)` — intended for experiment-sized graphs.
#[must_use]
pub fn diameter(g: &Graph) -> usize {
    let mut best = 0;
    for v in g.nodes() {
        let ecc = bfs_distances(g, v).into_iter().filter(|&d| d != usize::MAX).max().unwrap_or(0);
        best = best.max(ecc);
    }
    best
}

/// Double-sweep lower bound on the diameter: one BFS from `source`, a
/// second from the farthest node found. Exact on trees; `O(m)`.
#[must_use]
pub fn diameter_double_sweep(g: &Graph, source: NodeId) -> usize {
    let d1 = bfs_distances(g, source);
    let far = d1
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != usize::MAX)
        .max_by_key(|&(_, &d)| d)
        .map_or(source, |(v, _)| v);
    bfs_distances(g, far).into_iter().filter(|&d| d != usize::MAX).max().unwrap_or(0)
}

/// Degree summary of a graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree (`Δ`).
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Number of isolated nodes.
    pub isolated: usize,
}

/// Computes min/max/mean degree and isolated-node count.
#[must_use]
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let n = g.node_count();
    if n == 0 {
        return DegreeStats { min: 0, max: 0, mean: 0.0, isolated: 0 };
    }
    let degs: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    DegreeStats {
        min: degs.iter().copied().min().unwrap_or(0),
        max: degs.iter().copied().max().unwrap_or(0),
        mean: degs.iter().sum::<usize>() as f64 / n as f64,
        isolated: degs.iter().filter(|&&d| d == 0).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distances_on_structures() {
        let g = generators::path(6);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
        let g = generators::cycle(8);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[4], 4);
        assert_eq!(d[7], 1);
    }

    #[test]
    fn components_and_connectivity() {
        let g = generators::disjoint_paths(3, 5);
        let (_, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert!(!is_connected(&g));
        assert!(is_connected(&generators::complete(5)));
        let empty = crate::Graph::builder(0).build().unwrap();
        assert!(is_connected(&empty));
    }

    #[test]
    fn diameters() {
        assert_eq!(diameter(&generators::path(10)), 9);
        assert_eq!(diameter(&generators::cycle(10)), 5);
        assert_eq!(diameter(&generators::complete(6)), 1);
        assert_eq!(diameter(&generators::star(7)), 2);
        // Double sweep is exact on trees.
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let t = generators::random_tree(40, &mut rng);
            assert_eq!(diameter_double_sweep(&t, 0), diameter(&t));
        }
    }

    #[test]
    fn double_sweep_lower_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let g = generators::gnp(30, 0.12, &mut rng);
            if g.edge_count() == 0 {
                continue;
            }
            assert!(diameter_double_sweep(&g, 0) <= diameter(&g));
        }
    }

    #[test]
    fn degree_summary() {
        let g = generators::star(5);
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
        assert_eq!(s.isolated, 0);
        let g = crate::Graph::builder(3).edge(0, 1).build().unwrap();
        assert_eq!(degree_stats(&g).isolated, 1);
    }
}
