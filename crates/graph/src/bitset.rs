//! Word-packed bitsets for per-node / per-edge presence masks.
//!
//! The engine, the repair/maintenance layers and the checkpoint codec
//! all carry "one flag per node" (or per edge) masks. At million-node
//! scale a `Vec<bool>` spends a byte per flag and defeats cache locality
//! in the hot presence checks; [`BitSet`] packs 64 flags per word while
//! keeping the `mask[v]` read syntax via [`std::ops::Index`].
//!
//! Invariant: bits at positions `>= len` in the last word are always
//! zero, so equality, hashing and [`BitSet::count_ones`] are
//! well-defined on the logical length alone.

use std::fmt;

/// A fixed-length sequence of bits, packed 64 per word.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    len: usize,
    words: Vec<u64>,
}

static TRUE: bool = true;
static FALSE: bool = false;

impl BitSet {
    /// An all-zero bitset of `len` bits.
    #[must_use]
    pub fn new(len: usize) -> BitSet {
        BitSet { len, words: vec![0; len.div_ceil(64)] }
    }

    /// A bitset of `len` bits, all equal to `value`.
    #[must_use]
    pub fn filled(len: usize, value: bool) -> BitSet {
        let mut b = BitSet::new(len);
        if value {
            for w in &mut b.words {
                *w = u64::MAX;
            }
            b.mask_tail();
        }
        b
    }

    /// Packs a `bool` slice.
    #[must_use]
    pub fn from_bools(bools: &[bool]) -> BitSet {
        let mut b = BitSet::new(bools.len());
        for (i, &v) in bools.iter().enumerate() {
            if v {
                b.words[i / 64] |= 1 << (i % 64);
            }
        }
        b
    }

    /// Builds a bitset of `len` bits from a predicate.
    #[must_use]
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> BitSet {
        let mut b = BitSet::new(len);
        for i in 0..len {
            if f(i) {
                b.words[i / 64] |= 1 << (i % 64);
            }
        }
        b
    }

    /// Unpacks into a `bool` vector (compatibility with `Vec<bool>` APIs).
    #[must_use]
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Number of bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitset has zero bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit at `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range ({} bits)", self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Sets the bit at `i` to `value`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit {i} out of range ({} bits)", self.len);
        if value {
            self.words[i / 64] |= 1 << (i % 64);
        } else {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether any bit is set.
    #[must_use]
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Whether every bit is set.
    #[must_use]
    pub fn all(&self) -> bool {
        self.count_ones() == self.len
    }

    /// Iterator over the bits in position order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Iterator over the positions of set bits.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.get(i))
    }

    /// The backing words (64 bits each, little-endian bit order; tail
    /// bits beyond `len` are zero).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Zeroes the bits at positions `>= len` in the last word.
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Serializes as `len (u64 LE) ++ words (u64 LE each) ++ checksum
    /// (u64 LE)`: a self-delimiting, checksummed section for the
    /// checkpoint codec. Truncation and bit flips are both caught by
    /// [`BitSet::decode`].
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&self.checksum().to_le_bytes());
    }

    /// Serialized byte length of a `len`-bit set (see
    /// [`BitSet::encode_into`]).
    #[must_use]
    pub fn encoded_len(len: usize) -> usize {
        8 + 8 * len.div_ceil(64) + 8
    }

    /// Inverse of [`BitSet::encode_into`]: reads one section from the
    /// front of `bytes` and returns it with the number of bytes
    /// consumed.
    ///
    /// # Errors
    /// A static description of the first structural violation found:
    /// truncated header, truncated words, nonzero tail bits, or a
    /// checksum mismatch (any single bit flip is caught).
    pub fn decode(bytes: &[u8]) -> Result<(BitSet, usize), &'static str> {
        if bytes.len() < 8 {
            return Err("bitset header truncated");
        }
        let len = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
        let len = usize::try_from(len).map_err(|_| "bitset length overflows usize")?;
        let n_words = len.div_ceil(64);
        let need = 8 + 8 * n_words + 8;
        if bytes.len() < need {
            return Err("bitset body truncated");
        }
        let mut words = Vec::with_capacity(n_words);
        for i in 0..n_words {
            let at = 8 + 8 * i;
            words.push(u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes")));
        }
        let sum_at = 8 + 8 * n_words;
        let sum = u64::from_le_bytes(bytes[sum_at..sum_at + 8].try_into().expect("8 bytes"));
        let out = BitSet { len, words };
        let tail = len % 64;
        if tail != 0 {
            if let Some(&last) = out.words.last() {
                if last & !((1u64 << tail) - 1) != 0 {
                    return Err("bitset tail bits nonzero");
                }
            }
        }
        if out.checksum() != sum {
            return Err("bitset checksum mismatch");
        }
        Ok((out, need))
    }

    /// FNV-1a over the length and words, whitened; one flipped bit
    /// anywhere in the section changes the sum.
    fn checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.len as u64);
        for &w in &self.words {
            eat(w);
        }
        h ^ 0x5bd1_e995_9d1b_54a5
    }
}

impl std::ops::Index<usize> for BitSet {
    type Output = bool;

    fn index(&self, i: usize) -> &bool {
        if self.get(i) {
            &TRUE
        } else {
            &FALSE
        }
    }
}

impl fmt::Debug for BitSet {
    /// Bounded output even for million-bit masks.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitSet({} bits, {} set)", self.len, self.count_ones())
    }
}

impl From<&[bool]> for BitSet {
    fn from(bools: &[bool]) -> BitSet {
        BitSet::from_bools(bools)
    }
}

impl From<Vec<bool>> for BitSet {
    fn from(bools: Vec<bool>) -> BitSet {
        BitSet::from_bools(&bools)
    }
}

impl FromIterator<bool> for BitSet {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> BitSet {
        let bools: Vec<bool> = iter.into_iter().collect();
        BitSet::from_bools(&bools)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip_across_word_boundaries() {
        let mut b = BitSet::new(130);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!b.get(i));
            b.set(i, true);
            assert!(b.get(i));
            assert!(b[i]);
        }
        assert_eq!(b.count_ones(), 8);
        b.set(64, false);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 7);
    }

    #[test]
    fn filled_masks_tail_bits() {
        let b = BitSet::filled(70, true);
        assert_eq!(b.count_ones(), 70);
        assert!(b.all());
        assert_eq!(*b.words().last().unwrap() >> 6, 0, "tail bits must be zero");
        assert!(!BitSet::filled(70, false).any());
    }

    #[test]
    fn bools_roundtrip_and_equality() {
        let bools: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        let b = BitSet::from_bools(&bools);
        assert_eq!(b.to_bools(), bools);
        assert_eq!(b, BitSet::from_fn(100, |i| i % 3 == 0));
        assert_eq!(b.ones().collect::<Vec<_>>(), (0..100).step_by(3).collect::<Vec<_>>());
        assert!(b.iter().zip(&bools).all(|(a, &e)| a == e));
    }

    #[test]
    fn codec_roundtrips() {
        for len in [0usize, 1, 63, 64, 65, 1000] {
            let b = BitSet::from_fn(len, |i| i % 7 == 2);
            let mut bytes = Vec::new();
            b.encode_into(&mut bytes);
            assert_eq!(bytes.len(), BitSet::encoded_len(len));
            let (back, used) = BitSet::decode(&bytes).unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(back, b);
        }
    }

    #[test]
    fn codec_detects_truncation_and_bit_flips() {
        let b = BitSet::from_fn(129, |i| i % 2 == 0);
        let mut bytes = Vec::new();
        b.encode_into(&mut bytes);
        // Truncation at every boundary short of complete.
        for cut in 0..bytes.len() {
            assert!(BitSet::decode(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
        // Any single bit flip is caught (checksum or tail-bit check).
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                assert!(BitSet::decode(&bad).is_err(), "flip {byte}:{bit} must fail");
            }
        }
    }
}
