//! Plain-text graph serialization.
//!
//! A small line-oriented format so instances can move between runs,
//! external tools, and bug reports:
//!
//! ```text
//! # comments start with '#'
//! p <n> <m>              # header: node and edge counts
//! e <u> <v> [w]          # one edge per line, optional weight
//! b <side per node>      # optional bipartition line: X/Y characters
//! ```
//!
//! The format round-trips everything [`Graph`] represents: parallel
//! edges, weights, and a recorded bipartition.

use std::fmt::Write as _;
use std::str::FromStr;

use crate::error::GraphError;
use crate::graph::{Graph, GraphBuilder, Side};

/// Serializes `g` to the text format.
#[must_use]
pub fn to_text(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p {} {}", g.node_count(), g.edge_count());
    for e in g.edge_ids() {
        let (u, v) = g.endpoints(e);
        if g.is_weighted() {
            let _ = writeln!(out, "e {u} {v} {}", g.weight(e));
        } else {
            let _ = writeln!(out, "e {u} {v}");
        }
    }
    if let Some(sides) = g.bipartition() {
        let line: String = sides.iter().map(|s| if *s == Side::X { 'X' } else { 'Y' }).collect();
        let _ = writeln!(out, "b {line}");
    }
    out
}

/// Parse errors for the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line did not match the grammar.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// The `p` header is missing or duplicated.
    Header,
    /// The edges violate graph invariants.
    Graph(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Malformed { line, reason } => write!(f, "line {line}: {reason}"),
            ParseError::Header => write!(f, "missing or duplicate 'p' header"),
            ParseError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<GraphError> for ParseError {
    fn from(e: GraphError) -> ParseError {
        ParseError::Graph(e.to_string())
    }
}

fn field<T: FromStr>(tok: Option<&str>, line: usize, what: &str) -> Result<T, ParseError> {
    tok.ok_or_else(|| ParseError::Malformed { line, reason: format!("missing {what}") })?
        .parse::<T>()
        .map_err(|_| ParseError::Malformed { line, reason: format!("bad {what}") })
}

/// Parses the text format back into a [`Graph`].
///
/// # Errors
/// [`ParseError`] on malformed input or invalid graph structure.
pub fn from_text(text: &str) -> Result<Graph, ParseError> {
    let mut builder: Option<GraphBuilder> = None;
    let mut sides: Option<Vec<Side>> = None;
    let mut expected_edges = 0usize;
    let mut seen_edges = 0usize;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut toks = line.split_whitespace();
        match toks.next() {
            Some("p") => {
                if builder.is_some() {
                    return Err(ParseError::Header);
                }
                let n: usize = field(toks.next(), line_no, "node count")?;
                expected_edges = field(toks.next(), line_no, "edge count")?;
                builder = Some(GraphBuilder::new(n));
            }
            Some("e") => {
                let b = builder.as_mut().ok_or(ParseError::Header)?;
                let u: usize = field(toks.next(), line_no, "endpoint")?;
                let v: usize = field(toks.next(), line_no, "endpoint")?;
                match toks.next() {
                    Some(w) => {
                        let w: f64 = w.parse().map_err(|_| ParseError::Malformed {
                            line: line_no,
                            reason: "bad weight".to_string(),
                        })?;
                        b.weighted_edge(u, v, w);
                        b.force_weighted();
                    }
                    None => {
                        b.edge(u, v);
                    }
                }
                seen_edges += 1;
            }
            Some("b") => {
                let chars: &str = toks.next().ok_or(ParseError::Malformed {
                    line: line_no,
                    reason: "missing bipartition string".to_string(),
                })?;
                sides = Some(
                    chars
                        .chars()
                        .map(|c| match c {
                            'X' | 'x' => Ok(Side::X),
                            'Y' | 'y' => Ok(Side::Y),
                            other => Err(ParseError::Malformed {
                                line: line_no,
                                reason: format!("bad side character '{other}'"),
                            }),
                        })
                        .collect::<Result<Vec<Side>, ParseError>>()?,
                );
            }
            Some(other) => {
                return Err(ParseError::Malformed {
                    line: line_no,
                    reason: format!("unknown record '{other}'"),
                })
            }
            None => unreachable!("empty lines are skipped"),
        }
    }
    let mut b = builder.ok_or(ParseError::Header)?;
    if seen_edges != expected_edges {
        return Err(ParseError::Graph(format!(
            "header promised {expected_edges} edges, found {seen_edges}"
        )));
    }
    if let Some(sides) = sides {
        b.bipartition(sides);
    }
    Ok(b.build()?)
}

/// Serializes `g` (optionally with a matching highlighted) to Graphviz
/// DOT, for eyeballing small instances.
#[must_use]
pub fn to_dot(g: &Graph, matching: Option<&crate::matching::Matching>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph dam {{");
    let _ = writeln!(out, "  node [shape=circle];");
    for v in g.nodes() {
        let _ = writeln!(out, "  {v};");
    }
    for e in g.edge_ids() {
        let (u, v) = g.endpoints(e);
        let mut attrs: Vec<String> = Vec::new();
        if g.is_weighted() {
            attrs.push(format!("label=\"{}\"", g.weight(e)));
        }
        if matching.is_some_and(|m| m.contains(e)) {
            attrs.push("penwidth=3".to_string());
            attrs.push("color=red".to_string());
        }
        if attrs.is_empty() {
            let _ = writeln!(out, "  {u} -- {v};");
        } else {
            let _ = writeln!(out, "  {u} -- {v} [{}];", attrs.join(", "));
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::weights::{randomize_weights, WeightDist};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_unweighted() {
        let g = generators::cycle(8);
        let g2 = from_text(&to_text(&g)).unwrap();
        assert_eq!(g.node_count(), g2.node_count());
        assert_eq!(g.edge_count(), g2.edge_count());
        for e in g.edge_ids() {
            assert_eq!(g.endpoints(e), g2.endpoints(e));
        }
        g2.validate_bipartition().unwrap();
    }

    #[test]
    fn roundtrip_weighted() {
        let mut rng = StdRng::seed_from_u64(7);
        let base = generators::gnp(12, 0.3, &mut rng);
        let g = randomize_weights(&base, WeightDist::Uniform { lo: 0.25, hi: 4.0 }, &mut rng);
        let g2 = from_text(&to_text(&g)).unwrap();
        assert!(g2.is_weighted());
        for e in g.edge_ids() {
            assert!((g.weight(e) - g2.weight(e)).abs() < 1e-12);
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# a graph\n\np 3 2\ne 0 1\n# middle comment\ne 1 2\n";
        let g = from_text(text).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn errors_are_reported() {
        assert!(matches!(from_text("e 0 1\n"), Err(ParseError::Header)));
        assert!(matches!(from_text("p 2 1\ne 0\n"), Err(ParseError::Malformed { line: 2, .. })));
        assert!(matches!(from_text("p 2 2\ne 0 1\n"), Err(ParseError::Graph(_))));
        assert!(matches!(from_text("p 2 1\nz 0 1\n"), Err(ParseError::Malformed { .. })));
        assert!(matches!(from_text("p 2 1\ne 0 1\nb XZ\n"), Err(ParseError::Malformed { .. })));
        // Graph-level invariants propagate.
        assert!(matches!(from_text("p 2 1\ne 0 5\n"), Err(ParseError::Graph(_))));
    }

    #[test]
    fn dot_output_shape() {
        let g = generators::greedy_trap(1, 0.5);
        let m = crate::maximal::greedy_mwm(&g);
        let dot = to_dot(&g, Some(&m));
        assert!(dot.starts_with("graph dam {"));
        assert!(dot.contains("--"));
        assert!(dot.contains("penwidth=3"), "matched edges must be highlighted");
        assert!(dot.contains("label="), "weights must be labelled");
        assert!(dot.trim_end().ends_with('}'));
        let plain = to_dot(&generators::path(3), None);
        assert!(!plain.contains("penwidth"));
    }

    #[test]
    fn parallel_edges_roundtrip() {
        let g = crate::Graph::builder(2).edge(0, 1).edge(0, 1).build().unwrap();
        let g2 = from_text(&to_text(&g)).unwrap();
        assert_eq!(g2.edge_count(), 2);
    }
}
