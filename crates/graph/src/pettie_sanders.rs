//! Random local augmentations — the Pettie & Sanders (2004)
//! `(2/3−ε)`-MWM, the source of the paper's Lemma 4.2.
//!
//! Lemma 4.2 ("there exists a collection of disjoint augmentations with
//! at most `k` unmatched edges gaining `(k+1)/(2k+1)·(k/(k+1)·w(M*) −
//! w(M))`") is exactly the analysis tool of Pettie & Sanders' linear-time
//! algorithm: repeatedly pick a random vertex and apply the *best
//! augmentation centered there* with at most two unmatched edges. After
//! `O(n·log(1/ε))` steps the expected weight is a `(2/3−ε)` fraction of
//! optimal.
//!
//! An *augmentation centered at `v`* here is any of:
//! * an alternating path through (or ending at) `v` with ≤ 2 unmatched
//!   edges, whose ends are unmatched edges, together with the dangling
//!   matched *stubs* at its endpoints (the `wrap` of §4 is the one-edge
//!   case);
//! * an alternating 4-cycle through `v` (swap a matched pair for the
//!   opposite pair).
//!
//! Applying the best positive-gain augmentation is a strict weight
//! improvement, so the algorithm is an anytime improver; the tests check
//! validity, monotonicity and the `2/3` regime empirically against the
//! exact solver.

use rand::Rng;

use crate::graph::{EdgeId, Graph, NodeId};
use crate::matching::Matching;

/// One candidate augmentation: edges to remove and edges to add.
#[derive(Debug, Clone, PartialEq)]
pub struct Augmentation {
    /// Matched edges leaving `M`.
    pub remove: Vec<EdgeId>,
    /// Unmatched edges entering `M`.
    pub add: Vec<EdgeId>,
    /// `w(add) − w(remove)`.
    pub gain: f64,
}

impl Augmentation {
    /// Applies the augmentation.
    ///
    /// # Panics
    /// Panics if the result is not a matching (candidates produced by
    /// [`best_local_augmentation`] always are).
    pub fn apply(&self, g: &Graph, m: &mut Matching) {
        for &e in &self.remove {
            debug_assert!(m.contains(e));
            m.remove(g, e);
        }
        for &e in &self.add {
            m.add(g, e).expect("augmentation candidates are consistent");
        }
    }
}

/// Stub (matched edge) hanging off `x` that is not `skip`.
fn stub(m: &Matching, x: NodeId, skip: &[EdgeId]) -> Option<EdgeId> {
    m.matched_edge(x).filter(|e| !skip.contains(e))
}

/// The best positive-gain augmentation with ≤ 2 unmatched edges centered
/// at `v`, or `None`.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn best_local_augmentation(g: &Graph, m: &Matching, v: NodeId) -> Option<Augmentation> {
    let mut best: Option<Augmentation> = None;
    let mut consider = |remove: Vec<EdgeId>, add: Vec<EdgeId>| {
        let gain: f64 = add.iter().map(|&e| g.weight(e)).sum::<f64>()
            - remove.iter().map(|&e| g.weight(e)).sum::<f64>();
        if gain > 1e-12 && best.as_ref().is_none_or(|b| gain > b.gain) {
            best = Some(Augmentation { remove, add, gain });
        }
    };

    // Case 1: a single unmatched edge (u, x) with u ∈ {v} ∪ N(v)… we
    // only need edges incident to v for centering.
    for (_, x, e) in g.incident(v) {
        if m.contains(e) {
            continue;
        }
        let mut remove = Vec::new();
        if let Some(s) = stub(m, v, &[]) {
            remove.push(s);
        }
        if let Some(s) = stub(m, x, &remove) {
            remove.push(s);
        }
        consider(remove, vec![e]);
    }

    // Case 2: two unmatched edges (a, b) + (c, d) connected through the
    // matched edge (b, c): the length-3 alternating path a-b-c-d through
    // v (v ∈ {a, b, c, d}); stubs at a and d leave.
    // Enumerate with v at each position by walking from v.
    let mut two_edge = |a: NodeId, e1: EdgeId, b: NodeId| {
        // e1 = (a, b) unmatched; extend over b's matched edge.
        let Some(mid) = m.matched_edge(b) else { return };
        let c = g.other_endpoint(mid, b);
        if c == a {
            // Only possible with a parallel matched edge (a, b): the
            // "path" degenerates and both added edges would share `a`.
            return;
        }
        for (_, d, e2) in g.incident(c) {
            if m.contains(e2) || e2 == e1 || d == a || d == b {
                continue;
            }
            let mut remove = vec![mid];
            if let Some(s) = stub(m, a, &remove) {
                remove.push(s);
            }
            if let Some(s) = stub(m, d, &remove) {
                if !remove.contains(&s) {
                    remove.push(s);
                }
            }
            // Degenerate: a and d matched to each other — that stub is
            // shared and already deduplicated by the contains check.
            consider(remove, vec![e1, e2]);
        }
    };
    // v as an endpoint of the first unmatched edge, both orientations.
    for (_, x, e) in g.incident(v) {
        if !m.contains(e) {
            two_edge(v, e, x); // path starts v - x - M(x) - …
            two_edge(x, e, v); // path starts x - v - M(v) - …
        }
    }

    // Case 3: alternating 4-cycle through v: matched (v, b), (c, d);
    // unmatched (v, c)/(b, d) or (v, d)/(b, c) — swap pairs.
    if let Some(mv) = m.matched_edge(v) {
        let b = g.other_endpoint(mv, v);
        for (_, c, e1) in g.incident(v) {
            if m.contains(e1) || c == b {
                continue;
            }
            if let Some(mc) = m.matched_edge(c) {
                let d = g.other_endpoint(mc, c);
                if d == v || d == b {
                    continue;
                }
                // Need unmatched edge (b, d).
                for (_, y, e2) in g.incident(b) {
                    if y == d && !m.contains(e2) {
                        consider(vec![mv, mc], vec![e1, e2]);
                    }
                }
            }
        }
    }

    best
}

/// Runs the random-augmentation improver: `passes × n` random centers.
/// Starts from the given matching (commonly empty or greedy) and returns
/// the improved matching.
pub fn pettie_sanders_mwm<R: Rng + ?Sized>(
    g: &Graph,
    start: Matching,
    passes: usize,
    rng: &mut R,
) -> Matching {
    use rand::RngExt;
    let n = g.node_count();
    let mut m = start;
    if n == 0 {
        return m;
    }
    for _ in 0..passes.saturating_mul(n) {
        let v = rng.random_range(0..n);
        if let Some(aug) = best_local_augmentation(g, &m, v) {
            aug.apply(g, &mut m);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::{randomize_weights, WeightDist};
    use crate::{brute, generators, maximal, mwm};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn augmentations_are_strict_improvements() {
        let mut rng = StdRng::seed_from_u64(301);
        for trial in 0..15 {
            let base = generators::gnp(12, 0.35, &mut rng);
            let g = randomize_weights(&base, WeightDist::Integer { max: 9 }, &mut rng);
            let mut m = Matching::new(&g);
            let mut last = 0.0;
            for _ in 0..100 {
                use rand::RngExt;
                let v = rng.random_range(0..g.node_count());
                if let Some(aug) = best_local_augmentation(&g, &m, v) {
                    aug.apply(&g, &mut m);
                    m.validate(&g).unwrap();
                    let w = m.weight(&g);
                    assert!(w > last, "trial {trial}: gain must be strict ({last} -> {w})");
                    last = w;
                }
            }
        }
    }

    #[test]
    fn escapes_the_greedy_trap() {
        // Start from the trap's stalled middle-edge matching: a single
        // two-unmatched-edge augmentation fixes each component.
        let g = generators::greedy_trap(3, 0.2);
        let mut m = maximal::greedy_mwm(&g); // the stalled 0.6 matching
        for base in [0usize, 4, 8] {
            let aug = best_local_augmentation(&g, &m, base + 1)
                .expect("the outer-pair swap must be visible from the middle");
            assert!(aug.gain > 0.0);
            aug.apply(&g, &mut m);
        }
        assert!((m.weight(&g) - 6.0).abs() < 1e-9, "optimum reached: {}", m.weight(&g));
    }

    #[test]
    fn two_thirds_regime_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(302);
        let mut total = 0.0;
        let mut opt_total = 0.0;
        for _ in 0..8 {
            let base = generators::gnp(20, 0.25, &mut rng);
            let g = randomize_weights(&base, WeightDist::Uniform { lo: 0.2, hi: 4.0 }, &mut rng);
            let m = pettie_sanders_mwm(&g, Matching::new(&g), 12, &mut rng);
            m.validate(&g).unwrap();
            total += m.weight(&g);
            opt_total += mwm::maximum_weight(&g);
        }
        let ratio = total / opt_total;
        assert!(ratio >= 2.0 / 3.0 - 0.02, "aggregate ratio {ratio} below the 2/3 regime");
    }

    #[test]
    fn four_cycle_swaps_found() {
        // C4 with the light pair matched: only the cycle case improves.
        let g = crate::Graph::builder(4)
            .weighted_edge(0, 1, 1.0)
            .weighted_edge(1, 2, 5.0)
            .weighted_edge(2, 3, 1.0)
            .weighted_edge(3, 0, 5.0)
            .build()
            .unwrap();
        let m = Matching::from_edges(&g, [0, 2]).unwrap();
        let aug = best_local_augmentation(&g, &m, 0).expect("cycle swap exists");
        assert!((aug.gain - 8.0).abs() < 1e-9, "swap gain 10-2: {}", aug.gain);
        let mut m2 = m;
        aug.apply(&g, &mut m2);
        assert!((m2.weight(&g) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn beats_greedy_on_average() {
        let mut rng = StdRng::seed_from_u64(303);
        let mut ps_total = 0.0;
        let mut greedy_total = 0.0;
        for _ in 0..10 {
            let base = generators::gnp(16, 0.3, &mut rng);
            let g = randomize_weights(&base, WeightDist::PowersOfTwo { classes: 8 }, &mut rng);
            let ps = pettie_sanders_mwm(&g, maximal::greedy_mwm(&g), 8, &mut rng);
            ps_total += ps.weight(&g);
            greedy_total += maximal::greedy_mwm(&g).weight(&g);
        }
        assert!(ps_total >= greedy_total - 1e-9, "PS never loses to its greedy start");
    }

    #[test]
    fn small_exactness() {
        // On tiny graphs enough passes land on the optimum frequently;
        // check at least validity + the 2/3 floor per instance.
        let mut rng = StdRng::seed_from_u64(304);
        for _ in 0..10 {
            let base = generators::gnp(8, 0.5, &mut rng);
            let g = randomize_weights(&base, WeightDist::Integer { max: 7 }, &mut rng);
            let m = pettie_sanders_mwm(&g, Matching::new(&g), 20, &mut rng);
            let opt = brute::maximum_weight(&g);
            assert!(m.weight(&g) >= (2.0 / 3.0) * opt - 1e-9, "{} vs {opt}", m.weight(&g));
        }
    }
}
