//! `b`-matchings: the degree-capacitated generalization of matching.
//!
//! The paper's §1 ("More Related Work") points at the *c-matching* /
//! edge-packing generalization treated by Koufogiannakis & Young (2011):
//! select a maximum-size or -weight edge set subject to per-node degree
//! capacities `b(v)` (plain matching is `b ≡ 1`). This module provides
//! the sequential substrate: the [`BMatching`] container, a brute-force
//! oracle for small instances, and the `½`-approximate greedy
//! (`b`-matchings are a 2-extendible system, so greedy keeps the same
//! guarantee as for matchings). The distributed counterpart lives in
//! `dam-core::weighted::b_local_max`.

use crate::error::GraphError;
use crate::graph::{EdgeId, Graph, NodeId};

/// An edge set respecting per-node degree capacities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BMatching {
    capacities: Vec<usize>,
    degree: Vec<usize>,
    in_set: Vec<bool>,
    size: usize,
}

impl BMatching {
    /// The empty `b`-matching with the given capacities.
    ///
    /// # Panics
    /// Panics if `capacities.len() != g.node_count()`.
    #[must_use]
    pub fn new(g: &Graph, capacities: Vec<usize>) -> BMatching {
        assert_eq!(capacities.len(), g.node_count(), "one capacity per node");
        BMatching {
            capacities,
            degree: vec![0; g.node_count()],
            in_set: vec![false; g.edge_count()],
            size: 0,
        }
    }

    /// Number of selected edges.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// The capacity of node `v`.
    #[must_use]
    pub fn capacity(&self, v: NodeId) -> usize {
        self.capacities[v]
    }

    /// Selected degree of `v`.
    #[must_use]
    pub fn degree(&self, v: NodeId) -> usize {
        self.degree[v]
    }

    /// Remaining capacity at `v`.
    #[must_use]
    pub fn slack(&self, v: NodeId) -> usize {
        self.capacities[v] - self.degree[v]
    }

    /// Whether edge `e` is selected.
    #[must_use]
    pub fn contains(&self, e: EdgeId) -> bool {
        self.in_set[e]
    }

    /// Iterator over selected edges, ascending.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.in_set.iter().enumerate().filter_map(|(e, &b)| b.then_some(e))
    }

    /// Total weight under `g`.
    #[must_use]
    pub fn weight(&self, g: &Graph) -> f64 {
        self.edges().map(|e| g.weight(e)).sum()
    }

    /// Adds edge `e`.
    ///
    /// # Errors
    /// [`GraphError::MatchingConflict`] if an endpoint is saturated (the
    /// `first` field carries the capacity for lack of a better slot).
    pub fn add(&mut self, g: &Graph, e: EdgeId) -> Result<(), GraphError> {
        if e >= self.in_set.len() {
            return Err(GraphError::EdgeOutOfRange { edge: e, m: self.in_set.len() });
        }
        if self.in_set[e] {
            return Ok(());
        }
        let (u, v) = g.endpoints(e);
        for x in [u, v] {
            if self.degree[x] >= self.capacities[x] {
                return Err(GraphError::CapacityExceeded { node: x, capacity: self.capacities[x] });
            }
        }
        self.degree[u] += 1;
        self.degree[v] += 1;
        self.in_set[e] = true;
        self.size += 1;
        Ok(())
    }

    /// Validates capacities against `g`.
    ///
    /// # Errors
    /// Returns the first violated node.
    pub fn validate(&self, g: &Graph) -> Result<(), GraphError> {
        let mut deg = vec![0usize; g.node_count()];
        for e in self.edges() {
            let (u, v) = g.endpoints(e);
            deg[u] += 1;
            deg[v] += 1;
        }
        for v in g.nodes() {
            if deg[v] != self.degree[v] || deg[v] > self.capacities[v] {
                return Err(GraphError::CapacityExceeded { node: v, capacity: self.capacities[v] });
            }
        }
        Ok(())
    }
}

/// Greedy maximum-weight `b`-matching: heaviest edges first (ties by
/// id). A `½`-approximation (greedy on a 2-extendible system).
#[must_use]
pub fn greedy_b_matching(g: &Graph, capacities: &[usize]) -> BMatching {
    let mut order: Vec<EdgeId> = g.edge_ids().collect();
    order.sort_by(|&a, &b| g.weight(b).partial_cmp(&g.weight(a)).expect("finite").then(a.cmp(&b)));
    let mut bm = BMatching::new(g, capacities.to_vec());
    for e in order {
        let (u, v) = g.endpoints(e);
        if bm.slack(u) > 0 && bm.slack(v) > 0 {
            bm.add(g, e).expect("slack checked");
        }
    }
    bm
}

/// Exhaustive maximum-weight `b`-matching (tiny instances only).
#[must_use]
pub fn brute_force_b_matching(g: &Graph, capacities: &[usize]) -> BMatching {
    let mut best = BMatching::new(g, capacities.to_vec());
    let mut best_w = 0.0f64;
    let mut current = BMatching::new(g, capacities.to_vec());
    let mut suffix = vec![0.0f64; g.edge_count() + 1];
    for e in (0..g.edge_count()).rev() {
        suffix[e] = suffix[e + 1] + g.weight(e);
    }
    fn branch(
        g: &Graph,
        e: EdgeId,
        w: f64,
        suffix: &[f64],
        current: &mut BMatching,
        best_w: &mut f64,
        best: &mut BMatching,
    ) {
        if w > *best_w {
            *best_w = w;
            *best = current.clone();
        }
        if e >= g.edge_count() || w + suffix[e] <= *best_w {
            return;
        }
        let (u, v) = g.endpoints(e);
        if current.slack(u) > 0 && current.slack(v) > 0 {
            current.add(g, e).expect("slack checked");
            branch(g, e + 1, w + g.weight(e), suffix, current, best_w, best);
            // Manual removal (no public remove; rebuild fields).
            current.in_set[e] = false;
            current.degree[u] -= 1;
            current.degree[v] -= 1;
            current.size -= 1;
        }
        branch(g, e + 1, w, suffix, current, best_w, best);
    }
    branch(g, 0, 0.0, &suffix, &mut current, &mut best_w, &mut best);
    best
}

/// Whether no more edges can be added (greedy-maximality).
#[must_use]
pub fn is_b_maximal(g: &Graph, bm: &BMatching) -> bool {
    g.edge_ids().all(|e| {
        let (u, v) = g.endpoints(e);
        bm.contains(e) || bm.slack(u) == 0 || bm.slack(v) == 0
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::weights::{randomize_weights, WeightDist};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn capacities_enforced() {
        let g = generators::star(4); // centre 0, leaves 1..3
        let mut bm = BMatching::new(&g, vec![2, 1, 1, 1]);
        bm.add(&g, 0).unwrap();
        bm.add(&g, 1).unwrap();
        assert!(bm.add(&g, 2).is_err(), "centre capacity 2 exhausted");
        assert_eq!(bm.size(), 2);
        assert_eq!(bm.slack(0), 0);
        bm.validate(&g).unwrap();
    }

    #[test]
    fn b_equals_one_is_matching() {
        let mut rng = StdRng::seed_from_u64(51);
        for _ in 0..10 {
            let base = generators::gnp(10, 0.35, &mut rng);
            let g = randomize_weights(&base, WeightDist::Integer { max: 9 }, &mut rng);
            let caps = vec![1usize; g.node_count()];
            let bw = brute_force_b_matching(&g, &caps).weight(&g);
            let mw = crate::brute::maximum_weight(&g);
            assert!((bw - mw).abs() < 1e-9);
        }
    }

    #[test]
    fn greedy_is_half_approximate() {
        let mut rng = StdRng::seed_from_u64(52);
        for trial in 0..15 {
            let base = generators::gnp(9, 0.4, &mut rng);
            let g = randomize_weights(&base, WeightDist::Uniform { lo: 0.1, hi: 5.0 }, &mut rng);
            let caps: Vec<usize> = (0..g.node_count()).map(|_| rng.random_range(1..=3)).collect();
            let greedy = greedy_b_matching(&g, &caps);
            greedy.validate(&g).unwrap();
            assert!(is_b_maximal(&g, &greedy));
            let opt = brute_force_b_matching(&g, &caps);
            assert!(
                greedy.weight(&g) >= 0.5 * opt.weight(&g) - 1e-9,
                "trial {trial}: greedy {} vs opt {}",
                greedy.weight(&g),
                opt.weight(&g)
            );
        }
    }

    #[test]
    fn higher_capacity_never_hurts() {
        let mut rng = StdRng::seed_from_u64(53);
        let base = generators::gnp(8, 0.5, &mut rng);
        let g = randomize_weights(&base, WeightDist::Integer { max: 7 }, &mut rng);
        let w1 = brute_force_b_matching(&g, &[1; 8]).weight(&g);
        let w2 = brute_force_b_matching(&g, &[2; 8]).weight(&g);
        let w3 = brute_force_b_matching(&g, &[3; 8]).weight(&g);
        assert!(w1 <= w2 + 1e-9 && w2 <= w3 + 1e-9);
    }

    #[test]
    fn zero_capacity_blocks() {
        let g = generators::path(3);
        let bm = greedy_b_matching(&g, &[0, 5, 5]);
        assert!(!bm.contains(0));
        assert!(bm.contains(1));
    }
}
