//! The conflict graph `C_M(ℓ)` of Definition 3.1.
//!
//! Nodes of `C_M(ℓ)` are the augmenting paths w.r.t. `M` of length at most
//! `ℓ`; two nodes are adjacent iff their paths share a vertex of `G`. An
//! independent set in `C_M(ℓ)` is exactly a set of vertex-disjoint
//! augmenting paths, which can all be applied simultaneously (Algorithm 1,
//! step 7).
//!
//! This is the *sequential reference* construction; the distributed
//! emulation lives in `dam-core::generic`. It is exponential in `ℓ` and is
//! meant for the paper's `ℓ = O(1/ε)` regime and for testing.

use crate::graph::{Graph, NodeId};
use crate::matching::Matching;
use crate::paths::{enumerate_augmenting_paths, AugmentingPath};

/// The conflict graph `C_M(ℓ)`, with its path-nodes materialized.
#[derive(Debug, Clone)]
pub struct ConflictGraph {
    paths: Vec<AugmentingPath>,
    /// Adjacency between path indices (sorted, deduplicated).
    adj: Vec<Vec<usize>>,
}

impl ConflictGraph {
    /// Builds `C_M(ℓ)` by enumerating all augmenting paths of length at
    /// most `max_len` and intersecting them.
    ///
    /// Quadratic in the number of paths; exponential in `max_len`.
    #[must_use]
    pub fn build(g: &Graph, m: &Matching, max_len: usize) -> ConflictGraph {
        let paths = enumerate_augmenting_paths(g, m, max_len);
        Self::from_paths(g, paths)
    }

    /// Builds the conflict graph over a given set of paths.
    #[must_use]
    pub fn from_paths(g: &Graph, paths: Vec<AugmentingPath>) -> ConflictGraph {
        // Bucket paths by the graph nodes they visit: two paths conflict
        // iff they share a bucket.
        let mut by_node: Vec<Vec<usize>> = vec![Vec::new(); g.node_count()];
        for (i, p) in paths.iter().enumerate() {
            for &v in p.nodes() {
                by_node[v].push(i);
            }
        }
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); paths.len()];
        for bucket in &by_node {
            for (a, &i) in bucket.iter().enumerate() {
                for &j in &bucket[a + 1..] {
                    adj[i].push(j);
                    adj[j].push(i);
                }
            }
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        ConflictGraph { paths, adj }
    }

    /// Number of path-nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether there are no augmenting paths at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// The paths (the conflict graph's nodes).
    #[must_use]
    pub fn paths(&self) -> &[AugmentingPath] {
        &self.paths
    }

    /// Neighbours of path-node `i`.
    #[must_use]
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.adj[i]
    }

    /// Whether `set` is an independent set of `C_M(ℓ)`.
    #[must_use]
    pub fn is_independent(&self, set: &[usize]) -> bool {
        let chosen: std::collections::HashSet<usize> = set.iter().copied().collect();
        set.iter().all(|&i| self.adj[i].iter().all(|j| !chosen.contains(j)))
    }

    /// Whether `set` is a **maximal** independent set.
    #[must_use]
    pub fn is_maximal_independent(&self, set: &[usize]) -> bool {
        if !self.is_independent(set) {
            return false;
        }
        let chosen: std::collections::HashSet<usize> = set.iter().copied().collect();
        (0..self.len())
            .all(|i| chosen.contains(&i) || self.adj[i].iter().any(|j| chosen.contains(j)))
    }

    /// Extracts the paths selected by an independent set.
    #[must_use]
    pub fn select(&self, set: &[usize]) -> Vec<AugmentingPath> {
        set.iter().map(|&i| self.paths[i].clone()).collect()
    }

    /// A sequential greedy MIS (reference; the distributed algorithms use
    /// Luby's algorithm instead).
    #[must_use]
    pub fn greedy_mis(&self) -> Vec<usize> {
        let mut killed = vec![false; self.len()];
        let mut mis = Vec::new();
        for i in 0..self.len() {
            if killed[i] {
                continue;
            }
            mis.push(i);
            for &j in &self.adj[i] {
                killed[j] = true;
            }
        }
        mis
    }

    /// The maximum number of paths any single path conflicts with, plus 1
    /// (an upper bound on the conflict-graph degree used by the paper's
    /// MIS analysis).
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Convenience: nodes of `g` covered by any of the given paths.
#[must_use]
pub fn covered_nodes(g: &Graph, paths: &[AugmentingPath]) -> Vec<NodeId> {
    let mut covered = vec![false; g.node_count()];
    for p in paths {
        for &v in p.nodes() {
            covered[v] = true;
        }
    }
    covered.iter().enumerate().filter_map(|(v, &c)| c.then_some(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Two disjoint edges plus a bridge: paths {e0}, {e1}, {e2} where the
    /// bridge conflicts with both.
    fn fixture() -> (Graph, Matching) {
        let g = Graph::builder(4).edge(0, 1).edge(2, 3).edge(1, 2).build().unwrap();
        let m = Matching::new(&g);
        (g, m)
    }

    #[test]
    fn builds_expected_conflicts() {
        let (g, m) = fixture();
        let c = ConflictGraph::build(&g, &m, 1);
        assert_eq!(c.len(), 3);
        let bridge = c.paths().iter().position(|p| p.endpoints() == (1, 2)).unwrap();
        assert_eq!(c.neighbors(bridge).len(), 2);
        assert_eq!(c.max_degree(), 2);
    }

    #[test]
    fn greedy_mis_is_maximal_independent() {
        let (g, m) = fixture();
        let c = ConflictGraph::build(&g, &m, 1);
        let mis = c.greedy_mis();
        assert!(c.is_maximal_independent(&mis));
        // The two disjoint edges form the unique maximum independent set.
        assert_eq!(mis.len(), 2);
    }

    #[test]
    fn independence_implies_disjoint_augmentation() {
        let (g, m) = fixture();
        let c = ConflictGraph::build(&g, &m, 1);
        let mis = c.greedy_mis();
        let paths = c.select(&mis);
        let mut m2 = m.clone();
        crate::paths::augment_all(&g, &mut m2, &paths).unwrap();
        m2.validate(&g).unwrap();
        assert_eq!(m2.size(), 2);
    }

    #[test]
    fn maximality_detects_missing_path() {
        let (g, m) = fixture();
        let c = ConflictGraph::build(&g, &m, 1);
        // The bridge alone is independent but NOT maximal? The bridge
        // conflicts with both others, so {bridge} is maximal. An empty set
        // is not.
        assert!(!c.is_maximal_independent(&[]));
        let bridge = c.paths().iter().position(|p| p.endpoints() == (1, 2)).unwrap();
        assert!(c.is_maximal_independent(&[bridge]));
    }

    #[test]
    fn empty_graph_has_empty_conflict_graph() {
        let g = Graph::builder(3).build().unwrap();
        let m = Matching::new(&g);
        let c = ConflictGraph::build(&g, &m, 3);
        assert!(c.is_empty());
        assert!(c.is_maximal_independent(&[]));
    }
}
