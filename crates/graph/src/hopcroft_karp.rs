//! Hopcroft–Karp maximum-cardinality matching for bipartite graphs.
//!
//! This is the `O(m √n)` exact algorithm from Hopcroft & Karp (1973) — the
//! same paper whose Lemmas the distributed algorithm builds on (Lemmas 3.2
//! and 3.3 of our paper). Here it serves as the *oracle* against which
//! approximation ratios are measured.

use crate::graph::{EdgeId, Graph, NodeId, Side};
use crate::matching::Matching;

const INF: usize = usize::MAX;

/// Computes a maximum-cardinality matching of a bipartite graph.
///
/// Uses the recorded bipartition if present, otherwise computes one.
///
/// # Panics
/// Panics if the graph is not bipartite.
///
/// # Example
/// ```
/// use dam_graph::{generators, hopcroft_karp};
/// let g = generators::complete_bipartite(3, 5);
/// let m = hopcroft_karp::maximum_bipartite_matching(&g);
/// assert_eq!(m.size(), 3);
/// ```
#[must_use]
pub fn maximum_bipartite_matching(g: &Graph) -> Matching {
    let owned;
    let sides: &[Side] = match g.bipartition() {
        Some(s) => s,
        None => {
            let mut g2 = g.clone();
            owned = g2
                .compute_bipartition()
                .expect("maximum_bipartite_matching requires a bipartite graph")
                .to_vec();
            &owned
        }
    };
    HopcroftKarp::new(g, sides).run()
}

/// The maximum matching *size* (convenience wrapper).
#[must_use]
pub fn maximum_bipartite_matching_size(g: &Graph) -> usize {
    maximum_bipartite_matching(g).size()
}

struct HopcroftKarp<'a> {
    g: &'a Graph,
    sides: &'a [Side],
    /// mate_arc[v] = Some(edge) matched at v.
    mate: Vec<Option<EdgeId>>,
    dist: Vec<usize>,
}

impl<'a> HopcroftKarp<'a> {
    fn new(g: &'a Graph, sides: &'a [Side]) -> HopcroftKarp<'a> {
        HopcroftKarp { g, sides, mate: vec![None; g.node_count()], dist: vec![INF; g.node_count()] }
    }

    fn run(mut self) -> Matching {
        while self.bfs() {
            let xs: Vec<NodeId> = self
                .g
                .nodes()
                .filter(|&v| self.sides[v] == Side::X && self.mate[v].is_none())
                .collect();
            for x in xs {
                if self.mate[x].is_none() {
                    self.dfs(x);
                }
            }
        }
        let edges: Vec<EdgeId> = self
            .g
            .nodes()
            .filter(|&v| self.sides[v] == Side::X)
            .filter_map(|v| self.mate[v])
            .collect();
        Matching::from_edges(self.g, edges).expect("HK produces a valid matching")
    }

    /// Layers free X nodes at distance 0; returns whether any free Y node
    /// is reachable by an alternating path.
    fn bfs(&mut self) -> bool {
        let mut queue = std::collections::VecDeque::new();
        for v in self.g.nodes() {
            if self.sides[v] == Side::X && self.mate[v].is_none() {
                self.dist[v] = 0;
                queue.push_back(v);
            } else {
                self.dist[v] = INF;
            }
        }
        let mut found = false;
        while let Some(v) = queue.pop_front() {
            if self.sides[v] == Side::X {
                for (_, u, e) in self.g.incident(v) {
                    if Some(e) == self.mate[v] {
                        continue;
                    }
                    if self.dist[u] == INF {
                        self.dist[u] = self.dist[v] + 1;
                        match self.mate[u] {
                            None => found = true,
                            Some(me) => {
                                let w = self.g.other_endpoint(me, u);
                                if self.dist[w] == INF {
                                    self.dist[w] = self.dist[u] + 1;
                                    queue.push_back(w);
                                }
                            }
                        }
                    }
                }
            }
        }
        found
    }

    /// DFS along layered alternating paths from a free X node.
    fn dfs(&mut self, v: NodeId) -> bool {
        let arcs: Vec<(NodeId, EdgeId)> = self.g.incident(v).map(|(_, u, e)| (u, e)).collect();
        for (u, e) in arcs {
            if self.dist[u] != self.dist[v] + 1 {
                continue;
            }
            // Mark consumed so later DFS calls skip this layer entry.
            self.dist[u] = INF;
            let extendable = match self.mate[u] {
                None => true,
                Some(me) => {
                    let w = self.g.other_endpoint(me, u);
                    self.dist[w] == self.dist[v] + 2 && {
                        // Temporarily restore w's layer check via dfs.
                        self.dfs_from_matched(w, self.dist[v] + 2)
                    }
                }
            };
            if extendable {
                self.mate[u] = Some(e);
                self.mate[v] = Some(e);
                return true;
            }
        }
        false
    }

    fn dfs_from_matched(&mut self, v: NodeId, expected: usize) -> bool {
        debug_assert_eq!(self.dist[v], expected);
        self.dfs(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn simple_cases() {
        assert_eq!(maximum_bipartite_matching_size(&generators::path(2)), 1);
        assert_eq!(maximum_bipartite_matching_size(&generators::path(5)), 2);
        assert_eq!(maximum_bipartite_matching_size(&generators::cycle(8)), 4);
        assert_eq!(maximum_bipartite_matching_size(&generators::star(6)), 1);
        assert_eq!(maximum_bipartite_matching_size(&generators::complete_bipartite(4, 7)), 4);
    }

    #[test]
    fn empty_and_edgeless() {
        let g = crate::Graph::builder(5).build().unwrap();
        assert_eq!(maximum_bipartite_matching_size(&g), 0);
    }

    #[test]
    fn matches_brute_force_on_random_bipartite() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..40 {
            let g = generators::bipartite_gnp(6, 6, 0.35, &mut rng);
            let hk = maximum_bipartite_matching(&g);
            hk.validate(&g).unwrap();
            let opt = brute::maximum_matching_size(&g);
            assert_eq!(hk.size(), opt, "HK disagrees with brute force on {g}");
        }
    }

    #[test]
    fn perfect_on_regular_bipartite() {
        // König/Hall: a d-regular bipartite graph has a perfect matching.
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::bipartite_regular_out(10, 10, 10, &mut rng); // complete
        assert_eq!(maximum_bipartite_matching_size(&g), 10);
    }
}
