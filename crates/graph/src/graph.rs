//! The [`Graph`] type: a compact undirected (multi)graph in CSR form.
//!
//! The same object serves two roles in this workspace:
//!
//! 1. the *input* of the matching problem (with optional positive edge
//!    weights and an optional recorded bipartition), and
//! 2. the *network topology* on which `dam-congest` runs distributed
//!    protocols (the paper's assumption that "the input graph is also the
//!    underlying computational platform", §2).
//!
//! Following the paper, graphs need not be simple: parallel edges are
//! allowed and each carries its own [`EdgeId`]. Self-loops are rejected
//! because a matching over self-loops is undefined.

use std::fmt;

use crate::error::GraphError;

/// Identifier of a node, `0..n`.
///
/// The paper assumes `O(log n)`-bit unique identifiers; using the index
/// directly is without loss of generality (any id assignment can be
/// relabelled) and keeps the simulator allocation-free.
pub type NodeId = usize;

/// Identifier of an edge, `0..m`, in insertion order.
pub type EdgeId = usize;

/// The side of a node in a bipartition `(X, Y)`.
///
/// The paper's bipartite algorithm (§3.2) roots its BFS at free `X` nodes
/// and elects free `Y` nodes as path leaders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The `X` side (BFS sources).
    X,
    /// The `Y` side (path leaders).
    Y,
}

impl Side {
    /// The opposite side.
    #[must_use]
    pub fn other(self) -> Side {
        match self {
            Side::X => Side::Y,
            Side::Y => Side::X,
        }
    }
}

/// An undirected (multi)graph with optional weights and bipartition,
/// stored in compressed sparse row form.
///
/// Construct one with [`Graph::builder`]. All accessors are `O(1)` or
/// return iterators over CSR slices.
#[derive(Clone, PartialEq)]
pub struct Graph {
    n: usize,
    /// CSR offsets, length `n + 1`.
    offsets: Vec<usize>,
    /// Neighbour of each arc, length `2m`, grouped by source node.
    neigh: Vec<NodeId>,
    /// Edge id of each arc, parallel to `neigh`.
    arc_edge: Vec<EdgeId>,
    /// Endpoint pairs by edge id (unordered; stored as inserted).
    edges: Vec<(NodeId, NodeId)>,
    /// Per-edge weights; `None` for unweighted graphs (implicit weight 1).
    weights: Option<Vec<f64>>,
    /// Recorded proper 2-colouring, if the graph is known bipartite.
    bipartition: Option<Vec<Side>>,
    /// Maximum degree, cached at build time (`max_degree` sits on the
    /// `tuned_for_async`/plan-validation path and must not rescan).
    max_deg: usize,
}

impl Graph {
    /// Starts building a graph on `n` nodes.
    #[must_use]
    pub fn builder(n: usize) -> GraphBuilder {
        GraphBuilder::new(n)
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges (parallel edges counted individually).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.n
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        0..self.edges.len()
    }

    /// The degree of `v` (number of incident edges, counting parallels).
    ///
    /// # Panics
    /// Panics if `v >= n`.
    #[must_use]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The maximum degree `Δ` of the graph (0 for an empty graph).
    /// O(1): cached by the builder.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.max_deg
    }

    /// Endpoints of edge `e` as inserted.
    ///
    /// # Panics
    /// Panics if `e >= m`.
    #[must_use]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e]
    }

    /// The endpoint of `e` that is not `v`.
    ///
    /// # Panics
    /// Panics if `v` is not an endpoint of `e`.
    #[must_use]
    pub fn other_endpoint(&self, e: EdgeId, v: NodeId) -> NodeId {
        let (a, b) = self.edges[e];
        if v == a {
            b
        } else {
            assert_eq!(v, b, "node {v} is not an endpoint of edge {e}");
            a
        }
    }

    /// Weight of edge `e` (1.0 for unweighted graphs).
    #[must_use]
    pub fn weight(&self, e: EdgeId) -> f64 {
        match &self.weights {
            Some(w) => w[e],
            None => 1.0,
        }
    }

    /// Whether explicit weights were supplied.
    #[must_use]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Total weight of all edges.
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.edge_ids().map(|e| self.weight(e)).sum()
    }

    /// Neighbours of `v` (one entry per incident edge).
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.neigh[self.offsets[v]..self.offsets[v + 1]].iter().copied()
    }

    /// Incident arcs of `v` as `(port, neighbour, edge)` triples.
    ///
    /// The *port* is the arc's index among `v`'s arcs (`0..degree(v)`); the
    /// CONGEST simulator addresses messages by port, so port numbering is
    /// part of this crate's stable contract: ports follow edge-insertion
    /// order.
    pub fn incident(&self, v: NodeId) -> impl Iterator<Item = (usize, NodeId, EdgeId)> + '_ {
        let lo = self.offsets[v];
        let hi = self.offsets[v + 1];
        (lo..hi).map(move |i| (i - lo, self.neigh[i], self.arc_edge[i]))
    }

    /// The `(neighbour, edge)` pair behind port `p` of node `v`.
    ///
    /// # Panics
    /// Panics if `p >= degree(v)`.
    #[must_use]
    pub fn port(&self, v: NodeId, p: usize) -> (NodeId, EdgeId) {
        let i = self.offsets[v] + p;
        assert!(i < self.offsets[v + 1], "port {p} out of range at node {v}");
        (self.neigh[i], self.arc_edge[i])
    }

    /// The port of `v` whose arc is edge `e`, if any.
    #[must_use]
    pub fn port_of_edge(&self, v: NodeId, e: EdgeId) -> Option<usize> {
        self.incident(v).find(|&(_, _, ae)| ae == e).map(|(p, _, _)| p)
    }

    /// The recorded bipartition, if any.
    #[must_use]
    pub fn bipartition(&self) -> Option<&[Side]> {
        self.bipartition.as_deref()
    }

    /// The side of `v` in the recorded bipartition.
    ///
    /// # Errors
    /// Returns [`GraphError::NotBipartite`] if no bipartition is recorded.
    pub fn side(&self, v: NodeId) -> Result<Side, GraphError> {
        self.bipartition.as_ref().map(|b| b[v]).ok_or(GraphError::NotBipartite)
    }

    /// Computes a proper 2-colouring if the graph is bipartite and records
    /// it, returning the colouring; returns `None` for non-bipartite graphs.
    ///
    /// Isolated nodes are assigned [`Side::X`].
    pub fn compute_bipartition(&mut self) -> Option<&[Side]> {
        if self.bipartition.is_some() {
            return self.bipartition.as_deref();
        }
        let mut color: Vec<Option<Side>> = vec![None; self.n];
        let mut queue = std::collections::VecDeque::new();
        for start in 0..self.n {
            if color[start].is_some() {
                continue;
            }
            color[start] = Some(Side::X);
            queue.push_back(start);
            while let Some(v) = queue.pop_front() {
                let cv = color[v].expect("queued nodes are coloured");
                for u in self.neighbors(v) {
                    match color[u] {
                        None => {
                            color[u] = Some(cv.other());
                            queue.push_back(u);
                        }
                        Some(cu) if cu == cv => return None,
                        Some(_) => {}
                    }
                }
            }
        }
        self.bipartition = Some(color.into_iter().map(|c| c.expect("all coloured")).collect());
        self.bipartition.as_deref()
    }

    /// Validates a recorded bipartition (every edge bichromatic).
    ///
    /// # Errors
    /// Returns [`GraphError::NotBipartite`] if absent or improper.
    pub fn validate_bipartition(&self) -> Result<(), GraphError> {
        let b = self.bipartition.as_ref().ok_or(GraphError::NotBipartite)?;
        for &(u, v) in &self.edges {
            if b[u] == b[v] {
                return Err(GraphError::NotBipartite);
            }
        }
        Ok(())
    }

    /// Returns a copy of this graph with new weights (same topology).
    ///
    /// # Errors
    /// Returns [`GraphError::InvalidWeight`] on non-positive or non-finite
    /// weights, or a length mismatch panic.
    ///
    /// # Panics
    /// Panics if `weights.len() != edge_count()`.
    pub fn with_weights(&self, weights: Vec<f64>) -> Result<Graph, GraphError> {
        assert_eq!(weights.len(), self.edge_count(), "one weight per edge");
        for (e, &w) in weights.iter().enumerate() {
            if !(w.is_finite() && w > 0.0) {
                return Err(GraphError::InvalidWeight { edge: e, weight: w });
            }
        }
        let mut g = self.clone();
        g.weights = Some(weights);
        Ok(g)
    }

    /// Returns the unweighted version of this graph (same topology).
    #[must_use]
    pub fn without_weights(&self) -> Graph {
        let mut g = self.clone();
        g.weights = None;
        g
    }

    /// Builds the subgraph induced by the given edge mask, **keeping all
    /// nodes and edge ids** (masked-out edges disappear from adjacency).
    ///
    /// Node ids, edge ids and weights of surviving edges are preserved so
    /// that matchings and messages computed on the subgraph translate
    /// directly back to `self`. Port numbers are *not* preserved.
    ///
    /// # Panics
    /// Panics if `keep.len() != edge_count()`.
    #[must_use]
    pub fn edge_subgraph(&self, keep: &[bool]) -> Graph {
        assert_eq!(keep.len(), self.edge_count(), "one flag per edge");
        let mut b = GraphBuilder::new_preserving(self.n, self.edges.len());
        for (e, &(u, v)) in self.edges.iter().enumerate() {
            if keep[e] {
                b.push_preserved(u, v, e);
            }
        }
        b.build_preserving(self)
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.n)
            .field("m", &self.edges.len())
            .field("weighted", &self.is_weighted())
            .field("bipartite", &self.bipartition.is_some())
            .finish()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "graph on {} nodes, {} edges:", self.n, self.edges.len())?;
        for (e, &(u, v)) in self.edges.iter().enumerate() {
            if self.is_weighted() {
                writeln!(f, "  e{e}: {u} -- {v}  (w = {})", self.weight(e))?;
            } else {
                writeln!(f, "  e{e}: {u} -- {v}")?;
            }
        }
        Ok(())
    }
}

/// Incremental builder for [`Graph`] (see `C-BUILDER`).
///
/// # Example
///
/// ```
/// use dam_graph::Graph;
///
/// let g = Graph::builder(3)
///     .edge(0, 1)
///     .weighted_edge(1, 2, 2.5)
///     .build()
///     .unwrap();
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.weight(1), 2.5);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
    /// Edge ids, used only by `edge_subgraph` to preserve ids.
    ids: Option<Vec<EdgeId>>,
    /// Total edge count in the preserved id space.
    id_space: usize,
    weights: Vec<f64>,
    any_weight: bool,
    bipartition: Option<Vec<Side>>,
    error: Option<GraphError>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> GraphBuilder {
        GraphBuilder {
            n,
            edges: Vec::new(),
            ids: None,
            id_space: 0,
            weights: Vec::new(),
            any_weight: false,
            bipartition: None,
            error: None,
        }
    }

    fn new_preserving(n: usize, id_space: usize) -> GraphBuilder {
        let mut b = GraphBuilder::new(n);
        b.ids = Some(Vec::new());
        b.id_space = id_space;
        b
    }

    fn push_preserved(&mut self, u: NodeId, v: NodeId, id: EdgeId) {
        self.edges.push((u, v));
        self.ids.as_mut().expect("preserving builder").push(id);
    }

    /// Adds an unweighted edge `u -- v`.
    pub fn edge(&mut self, u: NodeId, v: NodeId) -> &mut GraphBuilder {
        self.weighted_edge(u, v, 1.0)
    }

    /// Adds an edge `u -- v` with weight `w`.
    ///
    /// Invalid endpoints or weights are recorded and reported by
    /// [`GraphBuilder::build`].
    pub fn weighted_edge(&mut self, u: NodeId, v: NodeId, w: f64) -> &mut GraphBuilder {
        if self.error.is_some() {
            return self;
        }
        if u >= self.n {
            self.error = Some(GraphError::NodeOutOfRange { node: u, n: self.n });
            return self;
        }
        if v >= self.n {
            self.error = Some(GraphError::NodeOutOfRange { node: v, n: self.n });
            return self;
        }
        if u == v {
            self.error = Some(GraphError::SelfLoop { node: u });
            return self;
        }
        if !(w.is_finite() && w > 0.0) {
            self.error = Some(GraphError::InvalidWeight { edge: self.edges.len(), weight: w });
            return self;
        }
        if (w - 1.0).abs() > f64::EPSILON {
            self.any_weight = true;
        }
        self.edges.push((u, v));
        self.weights.push(w);
        self
    }

    /// Adds many unweighted edges.
    pub fn edges<I>(&mut self, iter: I) -> &mut GraphBuilder
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        for (u, v) in iter {
            self.edge(u, v);
        }
        self
    }

    /// Records a bipartition to attach to the built graph.
    ///
    /// The partition is validated by [`GraphBuilder::build`].
    ///
    /// # Panics
    /// Panics if `sides.len() != n`.
    pub fn bipartition(&mut self, sides: Vec<Side>) -> &mut GraphBuilder {
        assert_eq!(sides.len(), self.n, "one side per node");
        self.bipartition = Some(sides);
        self
    }

    /// Marks the graph as explicitly weighted even if all weights are 1.
    pub fn force_weighted(&mut self) -> &mut GraphBuilder {
        self.any_weight = true;
        self
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    /// Returns the first construction error: out-of-range endpoints,
    /// self-loops, invalid weights, or an improper recorded bipartition.
    pub fn build(&self) -> Result<Graph, GraphError> {
        if let Some(err) = &self.error {
            return Err(err.clone());
        }
        let g = self.assemble(self.edges.len(), None);
        if g.bipartition.is_some() {
            g.validate_bipartition()?;
        }
        Ok(g)
    }

    fn build_preserving(&self, original: &Graph) -> Graph {
        assert!(self.error.is_none(), "preserving builder is infallible");
        let mut g = self.assemble(self.id_space, self.ids.as_deref());
        // Keep the whole original id space addressable: endpoints and
        // weights of masked-out edges stay valid even though those edges
        // no longer appear in any adjacency list.
        g.edges = original.edges.clone();
        g.weights = original.weights.clone();
        g.bipartition = original.bipartition.clone();
        g
    }

    /// Builds CSR arrays. `id_space` is the number of edge ids in the final
    /// graph; `ids` maps each inserted edge to its id (identity if `None`).
    fn assemble(&self, id_space: usize, ids: Option<&[EdgeId]>) -> Graph {
        let n = self.n;
        let mut deg = vec![0usize; n];
        for &(u, v) in &self.edges {
            deg[u] += 1;
            deg[v] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + deg[v];
        }
        let total = offsets[n];
        let mut neigh = vec![0 as NodeId; total];
        let mut arc_edge = vec![0 as EdgeId; total];
        let mut cursor = offsets.clone();
        // `edges` must live in id space: allocate dense edge list.
        let mut edges = vec![(usize::MAX, usize::MAX); id_space];
        let mut weights = vec![0.0f64; id_space];
        for (i, &(u, v)) in self.edges.iter().enumerate() {
            let e = ids.map_or(i, |ids| ids[i]);
            edges[e] = (u, v);
            if !self.weights.is_empty() {
                weights[e] = self.weights[i];
            }
            neigh[cursor[u]] = v;
            arc_edge[cursor[u]] = e;
            cursor[u] += 1;
            neigh[cursor[v]] = u;
            arc_edge[cursor[v]] = e;
            cursor[v] += 1;
        }
        Graph {
            n,
            offsets,
            neigh,
            arc_edge,
            edges,
            weights: if self.any_weight && ids.is_none() { Some(weights) } else { None },
            bipartition: self.bipartition.clone(),
            max_deg: deg.iter().copied().max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::builder(4).edge(0, 1).edge(1, 2).edge(2, 3).build().unwrap()
    }

    #[test]
    fn builds_csr_correctly() {
        let g = path4();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.neighbors(1).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(g.endpoints(1), (1, 2));
        assert_eq!(g.other_endpoint(1, 2), 1);
    }

    #[test]
    fn ports_follow_insertion_order() {
        let g = path4();
        // Node 1 got arcs from edges 0 and 1, in that order.
        assert_eq!(g.port(1, 0), (0, 0));
        assert_eq!(g.port(1, 1), (2, 1));
        assert_eq!(g.port_of_edge(1, 1), Some(1));
        assert_eq!(g.port_of_edge(1, 2), None);
        let inc: Vec<_> = g.incident(1).collect();
        assert_eq!(inc, vec![(0, 0, 0), (1, 2, 1)]);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            Graph::builder(2).edge(0, 2).build(),
            Err(GraphError::NodeOutOfRange { node: 2, n: 2 })
        ));
        assert!(matches!(
            Graph::builder(2).edge(1, 1).build(),
            Err(GraphError::SelfLoop { node: 1 })
        ));
        assert!(matches!(
            Graph::builder(2).weighted_edge(0, 1, -1.0).build(),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            Graph::builder(2).weighted_edge(0, 1, f64::NAN).build(),
            Err(GraphError::InvalidWeight { .. })
        ));
    }

    #[test]
    fn parallel_edges_are_distinct() {
        let g = Graph::builder(2).edge(0, 1).edge(0, 1).build().unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.port(0, 0), (1, 0));
        assert_eq!(g.port(0, 1), (1, 1));
    }

    #[test]
    fn weights_default_to_one() {
        let g = path4();
        assert!(!g.is_weighted());
        assert_eq!(g.weight(0), 1.0);
        let gw = g.with_weights(vec![2.0, 3.0, 4.0]).unwrap();
        assert!(gw.is_weighted());
        assert_eq!(gw.weight(2), 4.0);
        assert_eq!(gw.total_weight(), 9.0);
        assert!(!gw.without_weights().is_weighted());
    }

    #[test]
    fn with_weights_validates() {
        let g = path4();
        assert!(matches!(
            g.with_weights(vec![1.0, 0.0, 1.0]),
            Err(GraphError::InvalidWeight { edge: 1, .. })
        ));
    }

    #[test]
    fn bipartition_detection() {
        let mut g = path4();
        let sides = g.compute_bipartition().unwrap().to_vec();
        assert_eq!(sides[0], Side::X);
        assert_eq!(sides[1], Side::Y);
        assert_eq!(sides[2], Side::X);
        g.validate_bipartition().unwrap();

        let mut tri = Graph::builder(3).edge(0, 1).edge(1, 2).edge(2, 0).build().unwrap();
        assert!(tri.compute_bipartition().is_none());
    }

    #[test]
    fn builder_records_explicit_bipartition() {
        let g = Graph::builder(2).edge(0, 1).bipartition(vec![Side::X, Side::Y]).build().unwrap();
        assert_eq!(g.side(0).unwrap(), Side::X);
        assert!(Graph::builder(2).edge(0, 1).bipartition(vec![Side::X, Side::X]).build().is_err());
    }

    #[test]
    fn edge_subgraph_preserves_ids_and_weights() {
        let g = Graph::builder(4)
            .weighted_edge(0, 1, 5.0)
            .weighted_edge(1, 2, 6.0)
            .weighted_edge(2, 3, 7.0)
            .build()
            .unwrap();
        let sub = g.edge_subgraph(&[true, false, true]);
        assert_eq!(sub.node_count(), 4);
        assert_eq!(sub.edge_count(), 3); // id space preserved
        assert_eq!(sub.degree(1), 1);
        assert_eq!(sub.degree(2), 1);
        assert_eq!(sub.neighbors(2).collect::<Vec<_>>(), vec![3]);
        assert_eq!(sub.weight(2), 7.0);
        // Edge 1 is masked out of adjacency but its id remains valid.
        assert_eq!(sub.incident(1).count(), 1);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Graph::builder(0).build().unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.max_degree(), 0);
        let g1 = Graph::builder(5).build().unwrap();
        assert_eq!(g1.edge_count(), 0);
        assert_eq!(g1.degree(3), 0);
    }

    #[test]
    fn debug_and_display_nonempty() {
        let g = path4();
        assert!(!format!("{g:?}").is_empty());
        assert!(format!("{g}").contains("0 -- 1"));
    }
}
