//! Exact maximum-weight matching in general graphs, `O(n³)`.
//!
//! This is a Rust port of the classical blossom-with-duals algorithm in
//! the formulation of Galil ("Efficient algorithms for finding maximum
//! matching in graphs", 1986), following the well-known reference
//! implementation by Joris van Rantwijk (the one inside NetworkX). It is
//! the weighted oracle for Theorem 4.5's experiments: the distributed
//! `(½−ε)`-MWM is measured against the true optimum this module computes.
//!
//! Supports an optional *maximum-cardinality* mode that maximizes weight
//! among maximum-cardinality matchings.
//!
//! # Numerics
//!
//! Dual variables are maintained as `f64`. With integer-valued weights all
//! intermediate quantities are integers (dual updates use half-integers,
//! handled by doubling internally), so results are exact; with arbitrary
//! float weights the usual caveats apply. The differential tests use
//! integer weights for exactness plus float spot-checks.

use crate::graph::{EdgeId, Graph};
use crate::matching::Matching;

const NONE: usize = usize::MAX;

/// Computes a maximum-weight matching of `g`.
///
/// # Example
/// ```
/// use dam_graph::{generators, mwm};
/// let g = generators::greedy_trap(1, 0.5); // path with weights 1, 1.5, 1
/// let m = mwm::maximum_weight_matching(&g);
/// assert_eq!(m.size(), 2); // takes the two outer edges, weight 2 > 1.5
/// ```
#[must_use]
pub fn maximum_weight_matching(g: &Graph) -> Matching {
    solve(g, false)
}

/// Computes the maximum-weight matching among the maximum-cardinality
/// matchings of `g`.
#[must_use]
pub fn maximum_weight_maximum_cardinality_matching(g: &Graph) -> Matching {
    solve(g, true)
}

/// The maximum matching weight (convenience wrapper).
#[must_use]
pub fn maximum_weight(g: &Graph) -> f64 {
    maximum_weight_matching(g).weight(g)
}

fn solve(g: &Graph, max_cardinality: bool) -> Matching {
    let n = g.node_count();
    let ne = g.edge_count();
    if n == 0 || ne == 0 {
        return Matching::new(g);
    }
    // Double all weights so dual updates stay integral for integer input.
    let wt: Vec<f64> = g.edge_ids().map(|e| 2.0 * g.weight(e)).collect();
    let max_weight = wt.iter().cloned().fold(0.0f64, f64::max);

    // endpoint[p]: vertex at endpoint index p; edge k owns indices 2k, 2k+1.
    let mut endpoint = Vec::with_capacity(2 * ne);
    for e in g.edge_ids() {
        let (u, v) = g.endpoints(e);
        endpoint.push(u);
        endpoint.push(v);
    }
    // neighbend[v]: endpoint indices p such that endpoint[p ^ 1] == v.
    let mut neighbend: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in g.edge_ids() {
        let (u, v) = g.endpoints(e);
        neighbend[u].push(2 * e + 1);
        neighbend[v].push(2 * e);
    }

    let mut s = State {
        n,
        endpoint,
        neighbend,
        wt,
        max_cardinality,
        mate: vec![NONE; n],
        label: vec![0; 2 * n],
        labelend: vec![NONE; 2 * n],
        inblossom: (0..n).collect(),
        blossomparent: vec![NONE; 2 * n],
        blossomchilds: vec![Vec::new(); 2 * n],
        blossombase: (0..n).chain(std::iter::repeat_n(NONE, n)).collect(),
        blossomendps: vec![Vec::new(); 2 * n],
        bestedge: vec![NONE; 2 * n],
        blossombestedges: vec![None; 2 * n],
        unusedblossoms: (n..2 * n).collect(),
        dualvar: std::iter::repeat_n(max_weight, n).chain(std::iter::repeat_n(0.0, n)).collect(),
        allowedge: vec![false; ne],
        queue: Vec::new(),
    };
    s.run();

    let mut m = Matching::new(g);
    for v in 0..n {
        let p = s.mate[v];
        if p != NONE {
            let e: EdgeId = p / 2;
            if !m.contains(e) {
                m.add(g, e).expect("mate pointers form a matching");
            }
        }
    }
    m
}

struct State {
    n: usize,
    endpoint: Vec<usize>,
    neighbend: Vec<Vec<usize>>,
    wt: Vec<f64>,
    max_cardinality: bool,
    /// mate[v] = endpoint index of the edge matched at v, or NONE.
    mate: Vec<usize>,
    /// 0 = free, 1 = S, 2 = T (bit 4 marks scanBlossom visits).
    label: Vec<u8>,
    labelend: Vec<usize>,
    inblossom: Vec<usize>,
    blossomparent: Vec<usize>,
    blossomchilds: Vec<Vec<usize>>,
    blossombase: Vec<usize>,
    blossomendps: Vec<Vec<usize>>,
    bestedge: Vec<usize>,
    blossombestedges: Vec<Option<Vec<usize>>>,
    unusedblossoms: Vec<usize>,
    dualvar: Vec<f64>,
    allowedge: Vec<bool>,
    queue: Vec<usize>,
}

impl State {
    fn edge_nodes(&self, k: usize) -> (usize, usize) {
        (self.endpoint[2 * k], self.endpoint[2 * k + 1])
    }

    fn slack(&self, k: usize) -> f64 {
        let (i, j) = self.edge_nodes(k);
        self.dualvar[i] + self.dualvar[j] - self.wt[k]
    }

    fn blossom_leaves(&self, b: usize, out: &mut Vec<usize>) {
        if b < self.n {
            out.push(b);
        } else {
            for &t in &self.blossomchilds[b] {
                self.blossom_leaves_inner(t, out);
            }
        }
    }

    fn blossom_leaves_inner(&self, t: usize, out: &mut Vec<usize>) {
        if t < self.n {
            out.push(t);
        } else {
            for &s in &self.blossomchilds[t] {
                self.blossom_leaves_inner(s, out);
            }
        }
    }

    fn leaves(&self, b: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.blossom_leaves(b, &mut out);
        out
    }

    fn assign_label(&mut self, w: usize, t: u8, p: usize) {
        let b = self.inblossom[w];
        debug_assert!(self.label[w] == 0 && self.label[b] == 0);
        self.label[w] = t;
        self.label[b] = t;
        self.labelend[w] = p;
        self.labelend[b] = p;
        self.bestedge[w] = NONE;
        self.bestedge[b] = NONE;
        if t == 1 {
            let ls = self.leaves(b);
            self.queue.extend(ls);
        } else if t == 2 {
            let base = self.blossombase[b];
            debug_assert!(self.mate[base] != NONE);
            let mp = self.mate[base];
            self.assign_label(self.endpoint[mp], 1, mp ^ 1);
        }
    }

    /// Traces back from `v` and `w` to find a common ancestor (blossom
    /// base) of the alternating trees, or NONE if the roots differ.
    fn scan_blossom(&mut self, v0: usize, w0: usize) -> usize {
        let mut path = Vec::new();
        let mut base = NONE;
        let mut v = v0;
        let mut w = Some(w0);
        let mut v_opt = Some(v);
        while let Some(cur) = v_opt {
            v = cur;
            let b = self.inblossom[v];
            if self.label[b] & 4 != 0 {
                base = self.blossombase[b];
                break;
            }
            debug_assert_eq!(self.label[b], 1);
            path.push(b);
            self.label[b] = 5;
            debug_assert_eq!(self.labelend[b], self.mate[self.blossombase[b]]);
            if self.labelend[b] == NONE {
                v_opt = None;
            } else {
                let t = self.endpoint[self.labelend[b]];
                let bt = self.inblossom[t];
                debug_assert_eq!(self.label[bt], 2);
                debug_assert!(self.labelend[bt] != NONE);
                v_opt = Some(self.endpoint[self.labelend[bt]]);
            }
            if w.is_some() {
                std::mem::swap(&mut v_opt, &mut w);
            }
        }
        for b in path {
            self.label[b] = 1;
        }
        base
    }

    /// Contracts the blossom found via edge `k` with base `base`.
    fn add_blossom(&mut self, base: usize, k: usize) {
        let (mut v, mut w) = self.edge_nodes(k);
        let bb = self.inblossom[base];
        let mut bv = self.inblossom[v];
        let mut bw = self.inblossom[w];
        let b = self.unusedblossoms.pop().expect("blossom pool exhausted");
        self.blossombase[b] = base;
        self.blossomparent[b] = NONE;
        self.blossomparent[bb] = b;

        let mut path = Vec::new();
        let mut endps = Vec::new();
        while bv != bb {
            self.blossomparent[bv] = b;
            path.push(bv);
            endps.push(self.labelend[bv]);
            debug_assert!(
                self.label[bv] == 2
                    || (self.label[bv] == 1
                        && self.labelend[bv] == self.mate[self.blossombase[bv]])
            );
            debug_assert!(self.labelend[bv] != NONE);
            v = self.endpoint[self.labelend[bv]];
            bv = self.inblossom[v];
        }
        path.push(bb);
        path.reverse();
        endps.reverse();
        endps.push(2 * k);
        while bw != bb {
            self.blossomparent[bw] = b;
            path.push(bw);
            endps.push(self.labelend[bw] ^ 1);
            debug_assert!(
                self.label[bw] == 2
                    || (self.label[bw] == 1
                        && self.labelend[bw] == self.mate[self.blossombase[bw]])
            );
            debug_assert!(self.labelend[bw] != NONE);
            w = self.endpoint[self.labelend[bw]];
            bw = self.inblossom[w];
        }

        debug_assert_eq!(self.label[bb], 1);
        self.label[b] = 1;
        self.labelend[b] = self.labelend[bb];
        self.dualvar[b] = 0.0;
        let leaves = {
            self.blossomchilds[b] = path.clone();
            self.blossomendps[b] = endps;
            self.leaves(b)
        };
        for v in leaves {
            if self.label[self.inblossom[v]] == 2 {
                self.queue.push(v);
            }
            self.inblossom[v] = b;
        }

        // Recompute best-edge lists for the new blossom.
        let mut bestedgeto = vec![NONE; 2 * self.n];
        for &bv in &path {
            let nblists: Vec<Vec<usize>> = match self.blossombestedges[bv].take() {
                Some(list) => vec![list],
                None => self
                    .leaves(bv)
                    .into_iter()
                    .map(|v| self.neighbend[v].iter().map(|&p| p / 2).collect())
                    .collect(),
            };
            for nblist in nblists {
                for k in nblist {
                    let (mut i, mut j) = self.edge_nodes(k);
                    if self.inblossom[j] == b {
                        std::mem::swap(&mut i, &mut j);
                    }
                    let bj = self.inblossom[j];
                    if bj != b
                        && self.label[bj] == 1
                        && (bestedgeto[bj] == NONE || self.slack(k) < self.slack(bestedgeto[bj]))
                    {
                        bestedgeto[bj] = k;
                    }
                }
            }
            self.blossombestedges[bv] = None;
            self.bestedge[bv] = NONE;
        }
        let best: Vec<usize> = bestedgeto.into_iter().filter(|&k| k != NONE).collect();
        self.bestedge[b] = NONE;
        for &k in &best {
            if self.bestedge[b] == NONE || self.slack(k) < self.slack(self.bestedge[b]) {
                self.bestedge[b] = k;
            }
        }
        self.blossombestedges[b] = Some(best);
    }

    /// Expands blossom `b`, restoring its children as top-level blossoms.
    fn expand_blossom(&mut self, b: usize, endstage: bool) {
        let childs = self.blossomchilds[b].clone();
        for &s in &childs {
            self.blossomparent[s] = NONE;
            if s < self.n {
                self.inblossom[s] = s;
            } else if endstage && self.dualvar[s] == 0.0 {
                self.expand_blossom(s, endstage);
            } else {
                for v in self.leaves(s) {
                    self.inblossom[v] = s;
                }
            }
        }
        if !endstage && self.label[b] == 2 {
            debug_assert!(self.labelend[b] != NONE);
            let entrychild = self.inblossom[self.endpoint[self.labelend[b] ^ 1]];
            let childs = &self.blossomchilds[b];
            let len = childs.len() as isize;
            let mut j =
                childs.iter().position(|&c| c == entrychild).expect("entry child is a child")
                    as isize;
            let (jstep, endptrick): (isize, usize) = if j & 1 != 0 {
                j -= len;
                (1, 0)
            } else {
                (-1, 1)
            };
            let idx = move |j: isize| -> usize { (((j % len) + len) % len) as usize };
            let mut p = self.labelend[b];
            while j != 0 {
                let ep = self.blossomendps[b][idx(j - endptrick as isize)];
                self.label[self.endpoint[p ^ 1]] = 0;
                self.label[self.endpoint[ep ^ endptrick ^ 1]] = 0;
                self.assign_label(self.endpoint[p ^ 1], 2, p);
                self.allowedge[ep / 2] = true;
                j += jstep;
                p = self.blossomendps[b][idx(j - endptrick as isize)] ^ endptrick;
                self.allowedge[p / 2] = true;
                j += jstep;
            }
            let bv = self.blossomchilds[b][idx(j)];
            let ep1 = self.endpoint[p ^ 1];
            self.label[ep1] = 2;
            self.label[bv] = 2;
            self.labelend[ep1] = p;
            self.labelend[bv] = p;
            self.bestedge[bv] = NONE;
            j += jstep;
            while self.blossomchilds[b][idx(j)] != entrychild {
                let bv = self.blossomchilds[b][idx(j)];
                if self.label[bv] == 1 {
                    j += jstep;
                    continue;
                }
                let leaves = self.leaves(bv);
                let v = leaves.iter().copied().find(|&v| self.label[v] != 0);
                if let Some(v) = v {
                    debug_assert_eq!(self.label[v], 2);
                    debug_assert_eq!(self.inblossom[v], bv);
                    self.label[v] = 0;
                    let base_mate = self.mate[self.blossombase[bv]];
                    self.label[self.endpoint[base_mate]] = 0;
                    let le = self.labelend[v];
                    self.assign_label(v, 2, le);
                }
                j += jstep;
            }
        }
        self.label[b] = 0;
        self.labelend[b] = NONE;
        self.blossomchilds[b].clear();
        self.blossomendps[b].clear();
        self.blossombase[b] = NONE;
        self.blossombestedges[b] = None;
        self.bestedge[b] = NONE;
        self.unusedblossoms.push(b);
    }

    /// Swaps matched/unmatched edges within blossom `b` so that its base
    /// becomes `v`.
    fn augment_blossom(&mut self, b: usize, v: usize) {
        let mut t = v;
        while self.blossomparent[t] != b {
            t = self.blossomparent[t];
        }
        if t >= self.n {
            self.augment_blossom(t, v);
        }
        let len = self.blossomchilds[b].len() as isize;
        let i = self.blossomchilds[b].iter().position(|&c| c == t).expect("t is a child") as isize;
        let mut j = i;
        let (jstep, endptrick): (isize, usize) = if i & 1 != 0 {
            j -= len;
            (1, 0)
        } else {
            (-1, 1)
        };
        let idx = |j: isize| -> usize { (((j % len) + len) % len) as usize };
        while j != 0 {
            j += jstep;
            let t = self.blossomchilds[b][idx(j)];
            let p = self.blossomendps[b][idx(j - endptrick as isize)] ^ endptrick;
            if t >= self.n {
                self.augment_blossom(t, self.endpoint[p]);
            }
            j += jstep;
            let t = self.blossomchilds[b][idx(j)];
            if t >= self.n {
                self.augment_blossom(t, self.endpoint[p ^ 1]);
            }
            self.mate[self.endpoint[p]] = p ^ 1;
            self.mate[self.endpoint[p ^ 1]] = p;
        }
        self.blossomchilds[b].rotate_left(i as usize);
        self.blossomendps[b].rotate_left(i as usize);
        self.blossombase[b] = self.blossombase[self.blossomchilds[b][0]];
        debug_assert_eq!(self.blossombase[b], v);
    }

    /// Augments the matching along the path through edge `k`.
    fn augment_matching(&mut self, k: usize) {
        let (v, w) = self.edge_nodes(k);
        for (sv, pv) in [(v, 2 * k + 1), (w, 2 * k)] {
            let mut s = sv;
            let mut p = pv;
            loop {
                let bs = self.inblossom[s];
                debug_assert_eq!(self.label[bs], 1);
                debug_assert_eq!(self.labelend[bs], self.mate[self.blossombase[bs]]);
                if bs >= self.n {
                    self.augment_blossom(bs, s);
                }
                self.mate[s] = p;
                if self.labelend[bs] == NONE {
                    break;
                }
                let t = self.endpoint[self.labelend[bs]];
                let bt = self.inblossom[t];
                debug_assert_eq!(self.label[bt], 2);
                debug_assert!(self.labelend[bt] != NONE);
                s = self.endpoint[self.labelend[bt]];
                let j = self.endpoint[self.labelend[bt] ^ 1];
                debug_assert_eq!(self.blossombase[bt], t);
                if bt >= self.n {
                    self.augment_blossom(bt, j);
                }
                self.mate[j] = self.labelend[bt];
                p = self.labelend[bt] ^ 1;
            }
        }
    }

    fn run(&mut self) {
        let n = self.n;
        for _ in 0..n {
            // Stage: grow trees until an augmenting path is found or the
            // duals prove optimality.
            self.label.iter_mut().for_each(|l| *l = 0);
            self.bestedge.iter_mut().for_each(|b| *b = NONE);
            for i in n..2 * n {
                self.blossombestedges[i] = None;
            }
            self.allowedge.iter_mut().for_each(|a| *a = false);
            self.queue.clear();
            for v in 0..n {
                if self.mate[v] == NONE && self.label[self.inblossom[v]] == 0 {
                    self.assign_label(v, 1, NONE);
                }
            }
            let mut augmented = false;
            loop {
                while let Some(v) = self.queue.pop() {
                    debug_assert_eq!(self.label[self.inblossom[v]], 1);
                    let arcs = self.neighbend[v].clone();
                    let mut did_augment = false;
                    for p in arcs {
                        let k = p / 2;
                        let w = self.endpoint[p];
                        if self.inblossom[v] == self.inblossom[w] {
                            continue;
                        }
                        let mut kslack = 0.0;
                        if !self.allowedge[k] {
                            kslack = self.slack(k);
                            if kslack <= 0.0 {
                                self.allowedge[k] = true;
                            }
                        }
                        if self.allowedge[k] {
                            if self.label[self.inblossom[w]] == 0 {
                                self.assign_label(w, 2, p ^ 1);
                            } else if self.label[self.inblossom[w]] == 1 {
                                let base = self.scan_blossom(v, w);
                                if base != NONE {
                                    self.add_blossom(base, k);
                                } else {
                                    self.augment_matching(k);
                                    did_augment = true;
                                    break;
                                }
                            } else if self.label[w] == 0 {
                                debug_assert_eq!(self.label[self.inblossom[w]], 2);
                                self.label[w] = 2;
                                self.labelend[w] = p ^ 1;
                            }
                        } else if self.label[self.inblossom[w]] == 1 {
                            let b = self.inblossom[v];
                            if self.bestedge[b] == NONE || kslack < self.slack(self.bestedge[b]) {
                                self.bestedge[b] = k;
                            }
                        } else if self.label[w] == 0
                            && (self.bestedge[w] == NONE || kslack < self.slack(self.bestedge[w]))
                        {
                            self.bestedge[w] = k;
                        }
                    }
                    if did_augment {
                        augmented = true;
                        break;
                    }
                }
                if augmented {
                    break;
                }

                // Dual update.
                let mut deltatype: i32 = -1;
                let mut delta = 0.0f64;
                let mut deltaedge = NONE;
                let mut deltablossom = NONE;
                if !self.max_cardinality {
                    deltatype = 1;
                    delta = self.dualvar[..n].iter().cloned().fold(f64::INFINITY, f64::min);
                }
                for v in 0..n {
                    if self.label[self.inblossom[v]] == 0 && self.bestedge[v] != NONE {
                        let d = self.slack(self.bestedge[v]);
                        if deltatype == -1 || d < delta {
                            delta = d;
                            deltatype = 2;
                            deltaedge = self.bestedge[v];
                        }
                    }
                }
                for b in 0..2 * n {
                    if self.blossomparent[b] == NONE
                        && self.label[b] == 1
                        && self.bestedge[b] != NONE
                    {
                        let kslack = self.slack(self.bestedge[b]);
                        let d = kslack / 2.0;
                        if deltatype == -1 || d < delta {
                            delta = d;
                            deltatype = 3;
                            deltaedge = self.bestedge[b];
                        }
                    }
                }
                for b in n..2 * n {
                    if self.blossombase[b] != NONE
                        && self.blossomparent[b] == NONE
                        && self.label[b] == 2
                        && (deltatype == -1 || self.dualvar[b] < delta)
                    {
                        delta = self.dualvar[b];
                        deltatype = 4;
                        deltablossom = b;
                    }
                }
                if deltatype == -1 {
                    // No further progress possible (max-cardinality mode).
                    deltatype = 1;
                    delta =
                        self.dualvar[..n].iter().cloned().fold(f64::INFINITY, f64::min).max(0.0);
                }

                for v in 0..n {
                    match self.label[self.inblossom[v]] {
                        1 => self.dualvar[v] -= delta,
                        2 => self.dualvar[v] += delta,
                        _ => {}
                    }
                }
                for b in n..2 * n {
                    if self.blossombase[b] != NONE && self.blossomparent[b] == NONE {
                        match self.label[b] {
                            1 => self.dualvar[b] += delta,
                            2 => self.dualvar[b] -= delta,
                            _ => {}
                        }
                    }
                }

                match deltatype {
                    1 => break,
                    2 => {
                        self.allowedge[deltaedge] = true;
                        let (mut i, j) = self.edge_nodes(deltaedge);
                        if self.label[self.inblossom[i]] == 0 {
                            i = j;
                        }
                        debug_assert_eq!(self.label[self.inblossom[i]], 1);
                        self.queue.push(i);
                    }
                    3 => {
                        self.allowedge[deltaedge] = true;
                        let (i, _) = self.edge_nodes(deltaedge);
                        debug_assert_eq!(self.label[self.inblossom[i]], 1);
                        self.queue.push(i);
                    }
                    4 => self.expand_blossom(deltablossom, false),
                    _ => unreachable!("delta type is 1..=4"),
                }
            }
            if !augmented {
                break;
            }
            // End of stage: expand all S-blossoms with zero dual.
            for b in n..2 * n {
                if self.blossomparent[b] == NONE
                    && self.blossombase[b] != NONE
                    && self.label[b] == 1
                    && self.dualvar[b] == 0.0
                {
                    self.expand_blossom(b, true);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use crate::generators;
    use crate::weights::{randomize_weights, WeightDist};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn trivial_cases() {
        let g = crate::Graph::builder(2).weighted_edge(0, 1, 3.5).build().unwrap();
        let m = maximum_weight_matching(&g);
        assert_eq!(m.size(), 1);
        assert_eq!(maximum_weight(&g), 3.5);
        let empty = crate::Graph::builder(4).build().unwrap();
        assert_eq!(maximum_weight_matching(&empty).size(), 0);
    }

    #[test]
    fn prefers_outer_edges() {
        let g = generators::greedy_trap(2, 0.3);
        let m = maximum_weight_matching(&g);
        m.validate(&g).unwrap();
        assert!((m.weight(&g) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn negative_gain_edges_skipped() {
        // A single light edge between two heavy matched pairs should not
        // be taken: classic wrap-gain scenario.
        let g = crate::Graph::builder(4)
            .weighted_edge(0, 1, 5.0)
            .weighted_edge(1, 2, 6.0)
            .weighted_edge(2, 3, 5.0)
            .build()
            .unwrap();
        let m = maximum_weight_matching(&g);
        assert!((m.weight(&g) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn agrees_with_brute_force_integer_weights() {
        let mut rng = StdRng::seed_from_u64(2024);
        for trial in 0..80 {
            let base = generators::gnp(9, 0.35, &mut rng);
            let g = randomize_weights(&base, WeightDist::Integer { max: 12 }, &mut rng);
            let m = maximum_weight_matching(&g);
            m.validate(&g).unwrap();
            let opt = brute::maximum_weight(&g);
            assert!(
                (m.weight(&g) - opt).abs() < 1e-9,
                "trial {trial}: mwm {} vs brute {opt} on {g}",
                m.weight(&g)
            );
        }
    }

    #[test]
    fn agrees_with_brute_force_float_weights() {
        let mut rng = StdRng::seed_from_u64(4096);
        for trial in 0..40 {
            let base = generators::gnp(8, 0.4, &mut rng);
            let g = randomize_weights(&base, WeightDist::Uniform { lo: 0.5, hi: 4.0 }, &mut rng);
            let m = maximum_weight_matching(&g);
            m.validate(&g).unwrap();
            let opt = brute::maximum_weight(&g);
            assert!(
                (m.weight(&g) - opt).abs() < 1e-6,
                "trial {trial}: mwm {} vs brute {opt}",
                m.weight(&g)
            );
        }
    }

    #[test]
    fn blossom_heavy_structures() {
        // Odd cycles with weights force blossom handling.
        let mut rng = StdRng::seed_from_u64(55);
        for _ in 0..20 {
            let base = generators::flower(3);
            let g = randomize_weights(&base, WeightDist::Integer { max: 9 }, &mut rng);
            let m = maximum_weight_matching(&g);
            m.validate(&g).unwrap();
            assert!((m.weight(&g) - brute::maximum_weight(&g)).abs() < 1e-9);
        }
    }

    #[test]
    fn agrees_with_hungarian_on_bipartite() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..30 {
            let base = generators::bipartite_gnp(6, 7, 0.4, &mut rng);
            let g = randomize_weights(&base, WeightDist::Integer { max: 20 }, &mut rng);
            let a = maximum_weight(&g);
            let b = crate::hungarian::maximum_weight_bipartite(&g);
            assert!((a - b).abs() < 1e-9, "mwm {a} vs hungarian {b}");
        }
    }

    #[test]
    fn max_cardinality_mode() {
        // Max-weight alone takes just the heavy middle edge; the
        // max-cardinality variant must take two edges.
        let g = crate::Graph::builder(4)
            .weighted_edge(0, 1, 1.0)
            .weighted_edge(1, 2, 10.0)
            .weighted_edge(2, 3, 1.0)
            .build()
            .unwrap();
        let m1 = maximum_weight_matching(&g);
        assert_eq!(m1.size(), 1);
        let m2 = maximum_weight_maximum_cardinality_matching(&g);
        assert_eq!(m2.size(), 2);
        assert!((m2.weight(&g) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unweighted_reduces_to_blossom_cardinality() {
        let mut rng = StdRng::seed_from_u64(808);
        for _ in 0..30 {
            let g = generators::gnp(11, 0.3, &mut rng);
            let m = maximum_weight_maximum_cardinality_matching(&g);
            assert_eq!(m.size(), crate::blossom::maximum_matching_size(&g));
        }
    }
}
