//! Error types for graph construction and matching validation.

use std::error::Error;
use std::fmt;

use crate::graph::{EdgeId, NodeId};

/// Errors produced while building graphs or validating matchings.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint referred to a node id `>= n`.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes in the graph.
        n: usize,
    },
    /// A self-loop `(v, v)` was added; matchings on self-loops are undefined.
    SelfLoop {
        /// The looped node.
        node: NodeId,
    },
    /// A non-positive or non-finite edge weight was supplied.
    ///
    /// The paper assumes `w : E -> R+`.
    InvalidWeight {
        /// The offending edge (by insertion order).
        edge: EdgeId,
        /// The offending weight.
        weight: f64,
    },
    /// Two matching edges share the endpoint `node`.
    MatchingConflict {
        /// The shared endpoint.
        node: NodeId,
        /// First incident matching edge.
        first: EdgeId,
        /// Second incident matching edge.
        second: EdgeId,
    },
    /// Adding an edge would exceed a node's degree capacity
    /// (`b`-matchings).
    CapacityExceeded {
        /// The saturated node.
        node: NodeId,
        /// Its capacity.
        capacity: usize,
    },
    /// A matching referred to an edge id `>= m`.
    EdgeOutOfRange {
        /// The offending edge id.
        edge: EdgeId,
        /// Number of edges in the graph.
        m: usize,
    },
    /// The mate pointers of a matching are inconsistent with its edge set.
    InconsistentMatching {
        /// A node whose mate pointer disagrees with the edge set.
        node: NodeId,
    },
    /// An operation required a bipartition but the graph has none, or the
    /// recorded bipartition is not proper.
    NotBipartite,
    /// A supplied path is not a valid augmenting path for the matching.
    NotAugmenting {
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node id {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::InvalidWeight { edge, weight } => {
                write!(
                    f,
                    "edge {edge} has invalid weight {weight}; weights must be positive and finite"
                )
            }
            GraphError::MatchingConflict { node, first, second } => {
                write!(f, "matching edges {first} and {second} share endpoint {node}")
            }
            GraphError::CapacityExceeded { node, capacity } => {
                write!(f, "node {node} already carries its capacity of {capacity} edges")
            }
            GraphError::EdgeOutOfRange { edge, m } => {
                write!(f, "edge id {edge} out of range for graph with {m} edges")
            }
            GraphError::InconsistentMatching { node } => {
                write!(f, "matching mate pointer at node {node} disagrees with edge set")
            }
            GraphError::NotBipartite => {
                write!(f, "graph is not bipartite or has no recorded bipartition")
            }
            GraphError::NotAugmenting { reason } => write!(f, "path is not augmenting: {reason}"),
        }
    }
}

impl Error for GraphError {}
