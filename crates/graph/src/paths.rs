//! Augmenting-path machinery.
//!
//! An *augmenting path* w.r.t. a matching `M` is a simple path whose
//! endpoints are free and whose edges alternate between `E \ M` and `M`
//! (§2 of the paper). This module provides:
//!
//! * [`AugmentingPath`] — a validated path value;
//! * [`enumerate_augmenting_paths`] — exhaustive enumeration up to a length
//!   bound (exponential; used by the LOCAL-model generic algorithm, the
//!   conflict graph of Definition 3.1, and as a test oracle);
//! * [`shortest_augmenting_path_len`] — exact shortest augmenting path
//!   length in *bipartite* graphs (Hopcroft–Karp layered BFS);
//! * [`maximal_disjoint_paths`] — a sequential greedy maximal set of
//!   vertex-disjoint augmenting paths (the reference implementation of the
//!   paper's `Aug(H, M, ℓ)` and the oracle for Lemma 3.2 tests);
//! * [`augment_all`] — apply a set of disjoint augmentations (`M ⊕ P`).

use crate::error::GraphError;
use crate::graph::{EdgeId, Graph, NodeId, Side};
use crate::matching::Matching;

/// A validated augmenting path.
///
/// Invariants (checked at construction): `nodes.len() == edges.len() + 1`,
/// nodes are distinct, both endpoints are free, edges alternate starting
/// and ending with non-matching edges, so the length is odd.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AugmentingPath {
    nodes: Vec<NodeId>,
    edges: Vec<EdgeId>,
}

impl AugmentingPath {
    /// Builds a path from node and edge sequences, validating it against
    /// `g` and `m`.
    ///
    /// # Errors
    /// Returns [`GraphError::NotAugmenting`] describing the violated
    /// condition.
    pub fn new(
        g: &Graph,
        m: &Matching,
        nodes: Vec<NodeId>,
        edges: Vec<EdgeId>,
    ) -> Result<AugmentingPath, GraphError> {
        if nodes.len() != edges.len() + 1 {
            return Err(GraphError::NotAugmenting { reason: "node/edge length mismatch" });
        }
        if edges.is_empty() {
            return Err(GraphError::NotAugmenting { reason: "empty path" });
        }
        if edges.len().is_multiple_of(2) {
            return Err(GraphError::NotAugmenting { reason: "even length" });
        }
        let mut sorted = nodes.clone();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err(GraphError::NotAugmenting { reason: "repeated node" });
        }
        if !m.is_free(nodes[0]) || !m.is_free(*nodes.last().expect("nonempty")) {
            return Err(GraphError::NotAugmenting { reason: "endpoint not free" });
        }
        for (i, &e) in edges.iter().enumerate() {
            let (a, b) = g.endpoints(e);
            let connects =
                (a == nodes[i] && b == nodes[i + 1]) || (b == nodes[i] && a == nodes[i + 1]);
            if !connects {
                return Err(GraphError::NotAugmenting {
                    reason: "edge does not connect consecutive nodes",
                });
            }
            let should_be_matched = i % 2 == 1;
            if m.contains(e) != should_be_matched {
                return Err(GraphError::NotAugmenting { reason: "alternation violated" });
            }
        }
        Ok(AugmentingPath { nodes, edges })
    }

    /// The node sequence.
    #[must_use]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The edge sequence.
    #[must_use]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of edges (the paper's path *length*; always odd).
    #[must_use]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Augmenting paths are never empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The two free endpoints `(first, last)`.
    #[must_use]
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.nodes[0], *self.nodes.last().expect("nonempty"))
    }

    /// The leader endpoint per the paper's deterministic rule: the endpoint
    /// with the smaller id (Algorithm 2, step 3).
    #[must_use]
    pub fn leader(&self) -> NodeId {
        let (a, b) = self.endpoints();
        a.min(b)
    }

    /// Whether this path shares a node with `other` (the conflict relation
    /// of Definition 3.1).
    #[must_use]
    pub fn intersects(&self, other: &AugmentingPath) -> bool {
        self.nodes.iter().any(|v| other.nodes.contains(v))
    }

    /// A canonical key identifying the path irrespective of direction.
    #[must_use]
    pub fn canonical_key(&self) -> Vec<NodeId> {
        let rev_smaller = self.nodes.last() < self.nodes.first();
        if rev_smaller {
            self.nodes.iter().rev().copied().collect()
        } else {
            self.nodes.clone()
        }
    }
}

/// Enumerates **all** augmenting paths w.r.t. `m` of length at most
/// `max_len`, each reported once (canonical direction: smaller endpoint id
/// first).
///
/// Exponential in `max_len`; intended for small radii (the paper's
/// `ℓ = O(1/ε)`) and as a test oracle.
#[must_use]
pub fn enumerate_augmenting_paths(g: &Graph, m: &Matching, max_len: usize) -> Vec<AugmentingPath> {
    let mut out = Vec::new();
    let mut on_path = vec![false; g.node_count()];
    for start in m.free_nodes() {
        let mut nodes = vec![start];
        let mut edges = Vec::new();
        on_path[start] = true;
        dfs(g, m, max_len, &mut nodes, &mut edges, &mut on_path, &mut out);
        on_path[start] = false;
    }
    out
}

fn dfs(
    g: &Graph,
    m: &Matching,
    max_len: usize,
    nodes: &mut Vec<NodeId>,
    edges: &mut Vec<EdgeId>,
    on_path: &mut [bool],
    out: &mut Vec<AugmentingPath>,
) {
    let v = *nodes.last().expect("nonempty");
    let need_matched = edges.len() % 2 == 1;
    if edges.len() >= max_len {
        return;
    }
    for (_, u, e) in g.incident(v) {
        if on_path[u] || m.contains(e) != need_matched {
            continue;
        }
        nodes.push(u);
        edges.push(e);
        on_path[u] = true;
        // Odd-length prefix ending at a free node is an augmenting path.
        if edges.len() % 2 == 1 && m.is_free(u) && nodes[0] < u {
            // Report once: canonical direction has the smaller endpoint
            // first (matches the paper's leader rule for dedup).
            out.push(
                AugmentingPath::new(g, m, nodes.clone(), edges.clone())
                    .expect("dfs builds valid paths"),
            );
        }
        // Recurse regardless: a free node reached after a non-matching edge
        // is a dead end (it has no matching edge to alternate over), which
        // the recursion discovers by finding no admissible arcs.
        dfs(g, m, max_len, nodes, edges, on_path, out);
        on_path[u] = false;
        nodes.pop();
        edges.pop();
    }
}

/// Exact shortest augmenting path length in a **bipartite** graph, via the
/// Hopcroft–Karp layered BFS. Returns `None` if `m` is maximum.
///
/// # Errors
/// Returns [`GraphError::NotBipartite`] if `g` has no recorded bipartition.
pub fn shortest_augmenting_path_len(g: &Graph, m: &Matching) -> Result<Option<usize>, GraphError> {
    let sides = g.bipartition().ok_or(GraphError::NotBipartite)?;
    // BFS from all free X nodes, alternating: X -> Y over non-matching
    // edges, Y -> X over matching edges.
    let mut dist = vec![usize::MAX; g.node_count()];
    let mut queue = std::collections::VecDeque::new();
    for v in m.free_nodes() {
        if sides[v] == Side::X {
            dist[v] = 0;
            queue.push_back(v);
        }
    }
    while let Some(v) = queue.pop_front() {
        let d = dist[v];
        if sides[v] == Side::X {
            for (_, u, e) in g.incident(v) {
                if !m.contains(e) && dist[u] == usize::MAX {
                    dist[u] = d + 1;
                    if m.is_free(u) {
                        // Shortest augmenting path found; BFS layer d+1.
                        return Ok(Some(d + 1));
                    }
                    queue.push_back(u);
                }
            }
        } else if let Some(e) = m.matched_edge(v) {
            let u = g.other_endpoint(e, v);
            if dist[u] == usize::MAX {
                dist[u] = d + 1;
                queue.push_back(u);
            }
        }
    }
    Ok(None)
}

/// Greedily selects a maximal set of pairwise vertex-disjoint augmenting
/// paths of length at most `max_len` (exactly the contract of the paper's
/// `Aug(H, M, ℓ)` subroutine, sequential reference version).
///
/// If `exact_len` is `Some(ℓ)`, only paths of length exactly `ℓ` are
/// considered (the contract of Algorithm 1's per-phase MIS).
#[must_use]
pub fn maximal_disjoint_paths(
    g: &Graph,
    m: &Matching,
    max_len: usize,
    exact_len: Option<usize>,
) -> Vec<AugmentingPath> {
    let mut all = enumerate_augmenting_paths(g, m, max_len);
    if let Some(l) = exact_len {
        all.retain(|p| p.len() == l);
    }
    let mut used = vec![false; g.node_count()];
    let mut chosen = Vec::new();
    for p in all {
        if p.nodes().iter().any(|&v| used[v]) {
            continue;
        }
        for &v in p.nodes() {
            used[v] = true;
        }
        chosen.push(p);
    }
    chosen
}

/// A component of a symmetric difference `M₁ ⊕ M₂`: an alternating path
/// or cycle (the structure behind Lemma 3.13's `M ⊕ M*` argument).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlternatingComponent {
    /// A simple path.
    Path {
        /// Node sequence.
        nodes: Vec<NodeId>,
        /// Edge sequence (alternating between `M₁` and `M₂`).
        edges: Vec<EdgeId>,
    },
    /// A simple (even) cycle.
    Cycle {
        /// Node sequence (without repeating the start).
        nodes: Vec<NodeId>,
        /// Edge sequence, closing back to the first node.
        edges: Vec<EdgeId>,
    },
}

impl AlternatingComponent {
    /// The component's edges.
    #[must_use]
    pub fn edges(&self) -> &[EdgeId] {
        match self {
            AlternatingComponent::Path { edges, .. }
            | AlternatingComponent::Cycle { edges, .. } => edges,
        }
    }
}

/// Decomposes `M₁ ⊕ M₂` into its alternating paths and cycles.
///
/// Every node touches at most one `M₁`-edge and one `M₂`-edge, so the
/// symmetric difference has maximum degree 2 and splits into disjoint
/// paths and even cycles whose edges alternate between the two
/// matchings — the combinatorial fact behind Hopcroft–Karp and the
/// paper's Lemma 3.13.
#[must_use]
pub fn decompose_symmetric_difference(
    g: &Graph,
    m1: &Matching,
    m2: &Matching,
) -> Vec<AlternatingComponent> {
    let in_diff: Vec<EdgeId> = g.edge_ids().filter(|&e| m1.contains(e) != m2.contains(e)).collect();
    let mut adj: Vec<Vec<EdgeId>> = vec![Vec::new(); g.node_count()];
    for &e in &in_diff {
        let (u, v) = g.endpoints(e);
        adj[u].push(e);
        adj[v].push(e);
    }
    debug_assert!(adj.iter().all(|a| a.len() <= 2), "degree <= 2 in a symmetric difference");
    let mut used = vec![false; g.edge_count()];
    let mut out = Vec::new();
    // Paths first: start from degree-1 nodes.
    for start in g.nodes() {
        if adj[start].len() != 1 || adj[start].iter().all(|&e| used[e]) {
            continue;
        }
        let (nodes, edges) = walk(g, &adj, &mut used, start);
        if !edges.is_empty() {
            out.push(AlternatingComponent::Path { nodes, edges });
        }
    }
    // Remaining edges belong to cycles.
    for start in g.nodes() {
        if adj[start].len() == 2 && adj[start].iter().any(|&e| !used[e]) {
            let (mut nodes, edges) = walk(g, &adj, &mut used, start);
            debug_assert_eq!(nodes.first(), nodes.last());
            nodes.pop();
            out.push(AlternatingComponent::Cycle { nodes, edges });
        }
    }
    out
}

/// Follows unused diff edges from `start` until stuck (path end or back
/// at `start`).
fn walk(
    g: &Graph,
    adj: &[Vec<EdgeId>],
    used: &mut [bool],
    start: NodeId,
) -> (Vec<NodeId>, Vec<EdgeId>) {
    let mut nodes = vec![start];
    let mut edges = Vec::new();
    let mut v = start;
    loop {
        let next = adj[v].iter().copied().find(|&e| !used[e]);
        match next {
            None => break,
            Some(e) => {
                used[e] = true;
                edges.push(e);
                v = g.other_endpoint(e, v);
                nodes.push(v);
                if v == start {
                    break;
                }
            }
        }
    }
    (nodes, edges)
}

/// Applies a set of vertex-disjoint augmenting paths: `M ← M ⊕ ⋃ P`.
///
/// # Errors
/// Returns an error if the paths are not disjoint or not augmenting (the
/// matching is left in an unspecified but internally consistent state).
pub fn augment_all(
    g: &Graph,
    m: &mut Matching,
    paths: &[AugmentingPath],
) -> Result<(), GraphError> {
    for p in paths {
        m.toggle(g, p.edges())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0-1-2-3-4-5 with matching {e1=(1,2), e3=(3,4)}:
    /// the unique shortest augmenting path is the whole path, length 5.
    fn long_path() -> (Graph, Matching) {
        let mut g = Graph::builder(6)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 3)
            .edge(3, 4)
            .edge(4, 5)
            .build()
            .unwrap();
        g.compute_bipartition().unwrap();
        let m = Matching::from_edges(&g, [1, 3]).unwrap();
        (g, m)
    }

    #[test]
    fn enumerates_exact_paths() {
        let (g, m) = long_path();
        assert!(enumerate_augmenting_paths(&g, &m, 3).is_empty());
        let paths = enumerate_augmenting_paths(&g, &m, 5);
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.len(), 5);
        assert_eq!(p.endpoints(), (0, 5));
        assert_eq!(p.leader(), 0);
        assert_eq!(p.edges(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn single_edge_paths() {
        let g = Graph::builder(4).edge(0, 1).edge(2, 3).edge(1, 2).build().unwrap();
        let m = Matching::new(&g);
        let paths = enumerate_augmenting_paths(&g, &m, 1);
        assert_eq!(paths.len(), 3);
        assert!(paths.iter().all(|p| p.len() == 1));
    }

    #[test]
    fn shortest_len_matches_enumeration() {
        let (g, m) = long_path();
        assert_eq!(shortest_augmenting_path_len(&g, &m).unwrap(), Some(5));
        let full = Matching::from_edges(&g, [0, 2, 4]).unwrap();
        assert_eq!(shortest_augmenting_path_len(&g, &full).unwrap(), None);
    }

    #[test]
    fn maximal_set_is_disjoint_and_maximal() {
        // Star of 3 paths sharing centre 0: only one path can be chosen.
        let g = Graph::builder(4).edge(0, 1).edge(0, 2).edge(0, 3).build().unwrap();
        let m = Matching::new(&g);
        let chosen = maximal_disjoint_paths(&g, &m, 1, None);
        assert_eq!(chosen.len(), 1);
        // After augmenting, no augmenting path of length 1 remains.
        let mut m2 = m.clone();
        augment_all(&g, &mut m2, &chosen).unwrap();
        assert!(maximal_disjoint_paths(&g, &m2, 1, None).is_empty());
    }

    #[test]
    fn augmentation_grows_matching() {
        let (g, mut m) = long_path();
        let paths = enumerate_augmenting_paths(&g, &m, 5);
        augment_all(&g, &mut m, &paths).unwrap();
        assert_eq!(m.size(), 3);
        m.validate(&g).unwrap();
    }

    #[test]
    fn rejects_invalid_paths() {
        let (g, m) = long_path();
        // Even length.
        assert!(AugmentingPath::new(&g, &m, vec![0, 1, 2], vec![0, 1]).is_err());
        // Endpoint not free.
        assert!(AugmentingPath::new(&g, &m, vec![2, 1], vec![1]).is_err());
        // Alternation violated: e0 then e2 skips the matched edge.
        assert!(AugmentingPath::new(&g, &m, vec![0, 1], vec![2]).is_err());
    }

    #[test]
    fn intersection_detection() {
        let g = Graph::builder(5).edge(0, 1).edge(1, 2).edge(3, 4).build().unwrap();
        let m = Matching::new(&g);
        let paths = enumerate_augmenting_paths(&g, &m, 1);
        let p01 = paths.iter().find(|p| p.endpoints() == (0, 1)).unwrap();
        let p12 = paths.iter().find(|p| p.endpoints() == (1, 2)).unwrap();
        let p34 = paths.iter().find(|p| p.endpoints() == (3, 4)).unwrap();
        assert!(p01.intersects(p12));
        assert!(!p01.intersects(p34));
    }

    /// Lemma 3.2: after augmenting along a maximal set of shortest paths,
    /// the shortest augmenting path strictly lengthens.
    #[test]
    fn lemma_3_2_holds_on_small_bipartite() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..30 {
            let n = 8;
            let mut b = Graph::builder(2 * n);
            for u in 0..n {
                for v in n..2 * n {
                    if rng.random_bool(0.3) {
                        b.edge(u, v);
                    }
                }
            }
            let mut g = b.build().unwrap();
            g.compute_bipartition().unwrap();
            let mut m = Matching::new(&g);
            while let Some(l) = shortest_augmenting_path_len(&g, &m).unwrap() {
                let paths = maximal_disjoint_paths(&g, &m, l, Some(l));
                assert!(!paths.is_empty(), "a shortest path must exist");
                augment_all(&g, &mut m, &paths).unwrap();
                if let Some(l2) = shortest_augmenting_path_len(&g, &m).unwrap() {
                    assert!(l2 > l, "Lemma 3.2 violated: {l2} <= {l}");
                }
            }
            m.validate(&g).unwrap();
        }
    }

    #[test]
    fn symmetric_difference_decomposition() {
        use crate::{blossom, generators, maximal};
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..15 {
            let g = generators::gnp(14, 0.3, &mut rng);
            let m1 = maximal::random_maximal_matching(&g, &mut rng);
            let m2 = blossom::maximum_matching(&g);
            let comps = decompose_symmetric_difference(&g, &m1, &m2);
            // Edges partition the symmetric difference.
            let total: usize = comps.iter().map(|c| c.edges().len()).sum();
            let diff = g.edge_ids().filter(|&e| m1.contains(e) != m2.contains(e)).count();
            assert_eq!(total, diff);
            // Alternation within every component, and cycles are even.
            let mut m2_surplus = 0isize;
            for c in &comps {
                let edges = c.edges();
                for w in edges.windows(2) {
                    assert_ne!(m1.contains(w[0]), m1.contains(w[1]), "must alternate");
                }
                if let AlternatingComponent::Cycle { edges, .. } = c {
                    assert_eq!(edges.len() % 2, 0, "alternating cycles are even");
                }
                let m2_edges = edges.iter().filter(|&&e| m2.contains(e)).count() as isize;
                m2_surplus += m2_edges - (edges.len() as isize - m2_edges);
            }
            // The surplus of M2-edges across components equals |M2|-|M1|.
            assert_eq!(m2_surplus, m2.size() as isize - m1.size() as isize);
        }
    }
}
