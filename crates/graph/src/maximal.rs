//! Sequential baseline algorithms: maximal matchings and `½`-approximate
//! weighted matchings.
//!
//! These are the classical comparators the paper measures itself against:
//! the global greedy (`½`-MWM, §1: "the greedy algorithm ... finds a
//! ½-MWM"), the path-growing algorithm of Drake & Hougardy (2003), and the
//! locally-heaviest-edge rule of Preis (the sequential counterpart of the
//! `local_max` distributed black box in `dam-core`).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::graph::{EdgeId, Graph};
use crate::matching::Matching;

/// Global greedy: repeatedly add the heaviest remaining edge. Guarantees a
/// `½`-MWM (`½`-MCM when unweighted, where it degenerates to *some*
/// maximal matching). Ties break by edge id for determinism.
#[must_use]
pub fn greedy_mwm(g: &Graph) -> Matching {
    let mut order: Vec<EdgeId> = g.edge_ids().collect();
    order.sort_by(|&a, &b| {
        g.weight(b).partial_cmp(&g.weight(a)).expect("weights are finite").then(a.cmp(&b))
    });
    let mut m = Matching::new(g);
    for e in order {
        let (u, v) = g.endpoints(e);
        if m.is_free(u) && m.is_free(v) {
            m.add(g, e).expect("both endpoints free");
        }
    }
    m
}

/// A maximal matching built by scanning edges in a uniformly random order.
/// Guarantees `½`-MCM (maximality); the randomized sequential counterpart
/// of Israeli–Itai.
#[must_use]
pub fn random_maximal_matching<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> Matching {
    let mut order: Vec<EdgeId> = g.edge_ids().collect();
    order.shuffle(rng);
    let mut m = Matching::new(g);
    for e in order {
        let (u, v) = g.endpoints(e);
        if m.is_free(u) && m.is_free(v) {
            m.add(g, e).expect("both endpoints free");
        }
    }
    m
}

/// Whether `m` is maximal in `g` (no edge with both endpoints free).
#[must_use]
pub fn is_maximal(g: &Graph, m: &Matching) -> bool {
    g.edge_ids().all(|e| {
        let (u, v) = g.endpoints(e);
        !(m.is_free(u) && m.is_free(v))
    })
}

/// The path-growing algorithm of Drake & Hougardy (2003): grows
/// vertex-disjoint paths always extending over the heaviest incident
/// remaining edge, 2-colouring the path edges alternately; returns the
/// heavier colour class. Guarantees a `½`-MWM in linear time.
#[must_use]
pub fn path_growing_mwm(g: &Graph) -> Matching {
    let mut removed = vec![false; g.node_count()];
    let mut m1: Vec<EdgeId> = Vec::new();
    let mut m2: Vec<EdgeId> = Vec::new();
    for start in g.nodes() {
        if removed[start] || g.degree(start) == 0 {
            continue;
        }
        let mut v = start;
        let mut color = 0u8;
        loop {
            // Heaviest incident edge to a non-removed neighbour.
            let mut best: Option<(f64, EdgeId, usize)> = None;
            for (_, u, e) in g.incident(v) {
                if removed[u] || u == v {
                    continue;
                }
                let w = g.weight(e);
                if best.is_none_or(|(bw, be, _)| w > bw || (w == bw && e < be)) {
                    best = Some((w, e, u));
                }
            }
            removed[v] = true;
            match best {
                None => break,
                Some((_, e, u)) => {
                    if color == 0 {
                        m1.push(e);
                    } else {
                        m2.push(e);
                    }
                    color ^= 1;
                    v = u;
                }
            }
        }
    }
    let w1: f64 = m1.iter().map(|&e| g.weight(e)).sum();
    let w2: f64 = m2.iter().map(|&e| g.weight(e)).sum();
    let pick = if w1 >= w2 { m1 } else { m2 };
    Matching::from_edges(g, pick).expect("alternate colour classes of disjoint paths are matchings")
}

/// Sequential locally-heaviest-edge matching (Preis-style): repeatedly
/// add any edge that is at least as heavy as all its adjacent remaining
/// edges (ties by edge id). Guarantees `½`-MWM.
#[must_use]
pub fn local_max_mwm(g: &Graph) -> Matching {
    // "Heavier" total order: (weight, edge id) lexicographic.
    let heavier = |a: EdgeId, b: EdgeId| -> bool {
        let (wa, wb) = (g.weight(a), g.weight(b));
        wa > wb || (wa == wb && a > b)
    };
    let mut alive = vec![true; g.edge_count()];
    let mut node_alive = vec![true; g.node_count()];
    let mut m = Matching::new(g);
    loop {
        let mut picked = Vec::new();
        'edges: for e in g.edge_ids() {
            if !alive[e] {
                continue;
            }
            let (u, v) = g.endpoints(e);
            for x in [u, v] {
                for (_, _, f) in g.incident(x) {
                    if f != e && alive[f] && heavier(f, e) {
                        continue 'edges;
                    }
                }
            }
            picked.push(e);
        }
        if picked.is_empty() {
            break;
        }
        for e in picked {
            let (u, v) = g.endpoints(e);
            if !(node_alive[u] && node_alive[v]) {
                continue;
            }
            m.add(g, e).expect("local maxima are independent");
            node_alive[u] = false;
            node_alive[v] = false;
        }
        for e in g.edge_ids() {
            if alive[e] {
                let (u, v) = g.endpoints(e);
                if !node_alive[u] || !node_alive[v] {
                    alive[e] = false;
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use crate::generators;
    use crate::weights::{randomize_weights, WeightDist};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn greedy_achieves_half_on_trap() {
        let g = generators::greedy_trap(4, 0.25);
        let m = greedy_mwm(&g);
        // Greedy takes all 4 middle edges: weight 4 * 1.25 = 5; OPT = 8.
        assert!((m.weight(&g) - 5.0).abs() < 1e-12);
        assert!((brute::maximum_weight(&g) - 8.0).abs() < 1e-12);
        // But the guarantee holds.
        assert!(m.weight(&g) >= 0.5 * brute::maximum_weight(&g));
    }

    #[test]
    fn all_baselines_hit_half_guarantee() {
        let mut rng = StdRng::seed_from_u64(33);
        for trial in 0..25 {
            let base = generators::gnp(10, 0.3, &mut rng);
            let g = randomize_weights(&base, WeightDist::Uniform { lo: 0.1, hi: 5.0 }, &mut rng);
            let opt = brute::maximum_weight(&g);
            for (name, m) in [
                ("greedy", greedy_mwm(&g)),
                ("path-growing", path_growing_mwm(&g)),
                ("local-max", local_max_mwm(&g)),
            ] {
                m.validate(&g).unwrap();
                assert!(
                    m.weight(&g) >= 0.5 * opt - 1e-9,
                    "{name} below 1/2 on trial {trial}: {} < {}",
                    m.weight(&g),
                    0.5 * opt
                );
            }
        }
    }

    #[test]
    fn greedy_and_local_max_are_maximal() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let g = generators::gnp(14, 0.25, &mut rng);
            assert!(is_maximal(&g, &greedy_mwm(&g)));
            assert!(is_maximal(&g, &local_max_mwm(&g)));
            assert!(is_maximal(&g, &random_maximal_matching(&g, &mut rng)));
        }
    }

    #[test]
    fn maximal_implies_half_cardinality() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..20 {
            let g = generators::gnp(12, 0.25, &mut rng);
            let m = random_maximal_matching(&g, &mut rng);
            let opt = brute::maximum_matching_size(&g);
            assert!(2 * m.size() >= opt);
        }
    }

    #[test]
    fn handles_empty() {
        let g = crate::Graph::builder(4).build().unwrap();
        assert_eq!(greedy_mwm(&g).size(), 0);
        assert_eq!(path_growing_mwm(&g).size(), 0);
        assert_eq!(local_max_mwm(&g).size(), 0);
    }
}
