//! Brute-force exact matching for tiny graphs (test oracles).
//!
//! Exponential-time branch and bound over edges; intended for graphs with
//! at most ~25 edges. Every fast exact algorithm in this crate
//! (Hopcroft–Karp, blossom, exact MWM) is differential-tested against
//! these.

use crate::graph::{EdgeId, Graph};
use crate::matching::Matching;

/// The maximum-cardinality matching size, by exhaustive search.
#[must_use]
pub fn maximum_matching_size(g: &Graph) -> usize {
    let mut best = 0usize;
    let mut used = vec![false; g.node_count()];
    branch_cardinality(g, 0, 0, &mut used, &mut best);
    best
}

fn branch_cardinality(g: &Graph, e: EdgeId, size: usize, used: &mut [bool], best: &mut usize) {
    if size > *best {
        *best = size;
    }
    if e >= g.edge_count() {
        return;
    }
    // Bound: even taking every remaining edge cannot beat best.
    if size + (g.edge_count() - e) <= *best {
        return;
    }
    let (u, v) = g.endpoints(e);
    if !used[u] && !used[v] {
        used[u] = true;
        used[v] = true;
        branch_cardinality(g, e + 1, size + 1, used, best);
        used[u] = false;
        used[v] = false;
    }
    branch_cardinality(g, e + 1, size, used, best);
}

/// The maximum-weight matching, by exhaustive search.
#[must_use]
pub fn maximum_weight_matching(g: &Graph) -> Matching {
    let mut best_w = 0.0f64;
    let mut best: Vec<EdgeId> = Vec::new();
    let mut used = vec![false; g.node_count()];
    let mut current = Vec::new();
    // Suffix weight sums for bounding.
    let mut suffix = vec![0.0f64; g.edge_count() + 1];
    for e in (0..g.edge_count()).rev() {
        suffix[e] = suffix[e + 1] + g.weight(e);
    }
    branch_weight(g, 0, 0.0, &suffix, &mut used, &mut current, &mut best_w, &mut best);
    Matching::from_edges(g, best).expect("brute force output is a matching")
}

/// The maximum matching weight (convenience wrapper).
#[must_use]
pub fn maximum_weight(g: &Graph) -> f64 {
    maximum_weight_matching(g).weight(g)
}

#[allow(clippy::too_many_arguments)]
fn branch_weight(
    g: &Graph,
    e: EdgeId,
    w: f64,
    suffix: &[f64],
    used: &mut [bool],
    current: &mut Vec<EdgeId>,
    best_w: &mut f64,
    best: &mut Vec<EdgeId>,
) {
    if w > *best_w {
        *best_w = w;
        *best = current.clone();
    }
    if e >= g.edge_count() || w + suffix[e] <= *best_w {
        return;
    }
    let (u, v) = g.endpoints(e);
    if !used[u] && !used[v] {
        used[u] = true;
        used[v] = true;
        current.push(e);
        branch_weight(g, e + 1, w + g.weight(e), suffix, used, current, best_w, best);
        current.pop();
        used[u] = false;
        used[v] = false;
    }
    branch_weight(g, e + 1, w, suffix, used, current, best_w, best);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn cardinality_basics() {
        assert_eq!(maximum_matching_size(&generators::path(4)), 2);
        assert_eq!(maximum_matching_size(&generators::cycle(5)), 2);
        assert_eq!(maximum_matching_size(&generators::cycle(6)), 3);
        assert_eq!(maximum_matching_size(&generators::complete(5)), 2);
        assert_eq!(maximum_matching_size(&generators::complete(6)), 3);
        assert_eq!(maximum_matching_size(&generators::star(9)), 1);
        assert_eq!(maximum_matching_size(&generators::flower(2)), 3);
    }

    #[test]
    fn weight_prefers_outer_edges_in_trap() {
        let g = generators::greedy_trap(1, 0.1);
        let m = maximum_weight_matching(&g);
        assert_eq!(m.size(), 2);
        assert!((m.weight(&g) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn weight_on_series() {
        let g = generators::three_edge_series();
        assert!((maximum_weight(&g) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = crate::Graph::builder(3).build().unwrap();
        assert_eq!(maximum_matching_size(&g), 0);
        assert_eq!(maximum_weight(&g), 0.0);
    }
}
