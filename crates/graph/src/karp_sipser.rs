//! The Karp–Sipser heuristic for maximum-cardinality matching.
//!
//! A classical sequential baseline (Karp & Sipser 1981): repeatedly match
//! a degree-1 node to its unique neighbour (provably harmless — some
//! maximum matching contains that edge), and when no degree-1 node
//! exists, match a uniformly random edge. On sparse random graphs it is
//! near-optimal, which makes it a strong sanity baseline for the
//! distributed algorithms' measured ratios (E6).

use rand::{Rng, RngExt};

use crate::graph::{EdgeId, Graph, NodeId};
use crate::matching::Matching;

/// Runs Karp–Sipser on `g`.
#[must_use]
pub fn karp_sipser<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> Matching {
    let n = g.node_count();
    let mut alive_edge: Vec<bool> = vec![true; g.edge_count()];
    let mut alive_node: Vec<bool> = vec![true; n];
    let mut degree: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    let mut m = Matching::new(g);
    let mut deg1: Vec<NodeId> = g.nodes().filter(|&v| degree[v] == 1).collect();
    let mut remaining: Vec<EdgeId> = g.edge_ids().collect();

    let take = |m: &mut Matching,
                e: EdgeId,
                alive_edge: &mut Vec<bool>,
                alive_node: &mut Vec<bool>,
                degree: &mut Vec<usize>,
                deg1: &mut Vec<NodeId>| {
        let (u, v) = g.endpoints(e);
        debug_assert!(alive_node[u] && alive_node[v]);
        m.add(g, e).expect("endpoints alive implies free");
        for x in [u, v] {
            alive_node[x] = false;
            for (_, y, f) in g.incident(x) {
                if alive_edge[f] {
                    alive_edge[f] = false;
                    if y != x && alive_node[y] {
                        degree[y] -= 1;
                        if degree[y] == 1 {
                            deg1.push(y);
                        }
                    }
                }
            }
        }
    };

    loop {
        // Degree-1 rule first.
        if let Some(v) = deg1.pop() {
            if !alive_node[v] || degree[v] != 1 {
                continue;
            }
            let e = g
                .incident(v)
                .find(|&(_, _, f)| alive_edge[f])
                .map(|(_, _, f)| f)
                .expect("degree 1 implies one live edge");
            take(&mut m, e, &mut alive_edge, &mut alive_node, &mut degree, &mut deg1);
            continue;
        }
        // Random edge rule.
        // Compact the remaining-edge pool lazily.
        while let Some(&e) = remaining.last() {
            if !alive_edge[e] {
                remaining.pop();
            } else {
                break;
            }
        }
        remaining.retain(|&e| alive_edge[e]);
        if remaining.is_empty() {
            break;
        }
        let idx = rng.random_range(0..remaining.len());
        let e = remaining.swap_remove(idx);
        if alive_edge[e] {
            take(&mut m, e, &mut alive_edge, &mut alive_node, &mut degree, &mut deg1);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{blossom, generators, maximal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn produces_maximal_matchings() {
        let mut rng = StdRng::seed_from_u64(81);
        for _ in 0..15 {
            let g = generators::gnp(30, 0.12, &mut rng);
            let m = karp_sipser(&g, &mut rng);
            m.validate(&g).unwrap();
            assert!(maximal::is_maximal(&g, &m));
        }
    }

    #[test]
    fn degree_one_rule_is_exact_on_trees_and_paths() {
        let mut rng = StdRng::seed_from_u64(82);
        // On forests Karp-Sipser never needs the random rule and is
        // exactly optimal.
        for _ in 0..10 {
            let g = generators::random_tree(40, &mut rng);
            let m = karp_sipser(&g, &mut rng);
            assert_eq!(m.size(), blossom::maximum_matching_size(&g), "suboptimal on a tree");
        }
        let g = generators::path(17);
        let m = karp_sipser(&g, &mut rng);
        assert_eq!(m.size(), 8);
    }

    #[test]
    fn near_optimal_on_sparse_random() {
        let mut rng = StdRng::seed_from_u64(83);
        let mut got = 0usize;
        let mut opt = 0usize;
        for _ in 0..10 {
            let g = generators::gnp(60, 2.0 / 60.0, &mut rng);
            got += karp_sipser(&g, &mut rng).size();
            opt += blossom::maximum_matching_size(&g);
        }
        assert!(got as f64 >= 0.97 * opt as f64, "KS {got} vs OPT {opt}");
    }

    #[test]
    fn handles_empty_and_complete() {
        let mut rng = StdRng::seed_from_u64(84);
        let g = crate::Graph::builder(5).build().unwrap();
        assert_eq!(karp_sipser(&g, &mut rng).size(), 0);
        let g = generators::complete(8);
        assert_eq!(karp_sipser(&g, &mut rng).size(), 4);
    }
}
