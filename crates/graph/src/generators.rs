//! Graph generators: structured, random, and adversarial families.
//!
//! Every random generator takes an explicit `&mut impl Rng` so experiments
//! are reproducible from a seed. Bipartite generators record their
//! bipartition on the returned [`Graph`].

use rand::seq::SliceRandom;
use rand::{Rng, RngExt};

use crate::graph::{Graph, NodeId, Side};

// ---------------------------------------------------------------------------
// Structured families
// ---------------------------------------------------------------------------

/// The path `P_n` on `n` nodes (`n - 1` edges), bipartition recorded.
#[must_use]
pub fn path(n: usize) -> Graph {
    let mut b = Graph::builder(n);
    for v in 1..n {
        b.edge(v - 1, v);
    }
    b.bipartition((0..n).map(|v| if v % 2 == 0 { Side::X } else { Side::Y }).collect());
    b.build().expect("path is valid")
}

/// The cycle `C_n` on `n ≥ 3` nodes. Even cycles record a bipartition.
///
/// `C_{2n}` is the paper's footnote-1 example: its only two maximum
/// matchings are "all even edges" or "all odd edges", so *exact* maximum
/// matching needs `Ω(n)` distributed time while `(1-ε)`-approximation does
/// not.
///
/// # Panics
/// Panics if `n < 3`.
#[must_use]
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 nodes");
    let mut b = Graph::builder(n);
    for v in 0..n {
        b.edge(v, (v + 1) % n);
    }
    if n.is_multiple_of(2) {
        b.bipartition((0..n).map(|v| if v % 2 == 0 { Side::X } else { Side::Y }).collect());
    }
    b.build().expect("cycle is valid")
}

/// The complete graph `K_n`.
#[must_use]
pub fn complete(n: usize) -> Graph {
    let mut b = Graph::builder(n);
    for u in 0..n {
        for v in u + 1..n {
            b.edge(u, v);
        }
    }
    b.build().expect("complete graph is valid")
}

/// The star `K_{1,n-1}` centred at node 0, bipartition recorded.
#[must_use]
pub fn star(n: usize) -> Graph {
    let mut b = Graph::builder(n);
    for v in 1..n {
        b.edge(0, v);
    }
    let mut sides = vec![Side::Y; n];
    if n > 0 {
        sides[0] = Side::X;
    }
    b.bipartition(sides);
    b.build().expect("star is valid")
}

/// The `rows × cols` grid graph, bipartition recorded.
#[must_use]
pub fn grid(rows: usize, cols: usize) -> Graph {
    let id = |r: usize, c: usize| r * cols + c;
    let mut b = Graph::builder(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.bipartition(
        (0..rows * cols)
            .map(|v| if (v / cols + v % cols).is_multiple_of(2) { Side::X } else { Side::Y })
            .collect(),
    );
    b.build().expect("grid is valid")
}

/// The `d`-dimensional hypercube `Q_d` (`2^d` nodes), bipartition by
/// parity recorded — a classic distributed-computing topology with
/// diameter `d` and degree `d`.
#[must_use]
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut b = Graph::builder(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if v < u {
                b.edge(v, u);
            }
        }
    }
    b.bipartition(
        (0..n)
            .map(|v: usize| if v.count_ones().is_multiple_of(2) { Side::X } else { Side::Y })
            .collect(),
    );
    b.build().expect("hypercube is valid")
}

/// The complete bipartite graph `K_{a,b}` (`X` = `0..a`, `Y` = `a..a+b`),
/// bipartition recorded.
#[must_use]
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut builder = Graph::builder(a + b);
    for u in 0..a {
        for v in a..a + b {
            builder.edge(u, v);
        }
    }
    builder.bipartition(bipartite_sides(a, b));
    builder.build().expect("complete bipartite is valid")
}

fn bipartite_sides(a: usize, b: usize) -> Vec<Side> {
    (0..a + b).map(|v| if v < a { Side::X } else { Side::Y }).collect()
}

// ---------------------------------------------------------------------------
// Random families
// ---------------------------------------------------------------------------

/// Erdős–Rényi `G(n, p)`.
#[must_use]
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut b = Graph::builder(n);
    for u in 0..n {
        for v in u + 1..n {
            if rng.random_bool(p) {
                b.edge(u, v);
            }
        }
    }
    b.build().expect("gnp is valid")
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct edges sampled uniformly.
///
/// # Panics
/// Panics if `m > n·(n−1)/2`.
#[must_use]
pub fn gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    let max = n * n.saturating_sub(1) / 2;
    assert!(m <= max, "G(n,m): m = {m} exceeds {max}");
    let mut chosen = std::collections::HashSet::with_capacity(m);
    let mut b = Graph::builder(n);
    while chosen.len() < m {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if chosen.insert(key) {
            b.edge(key.0, key.1);
        }
    }
    b.build().expect("gnm is valid")
}

/// Random bipartite graph `G(n_x, n_y, p)` with bipartition recorded
/// (`X` = `0..n_x`, `Y` = `n_x..n_x+n_y`).
#[must_use]
pub fn bipartite_gnp<R: Rng + ?Sized>(nx: usize, ny: usize, p: f64, rng: &mut R) -> Graph {
    let mut b = Graph::builder(nx + ny);
    for u in 0..nx {
        for v in nx..nx + ny {
            if rng.random_bool(p) {
                b.edge(u, v);
            }
        }
    }
    b.bipartition(bipartite_sides(nx, ny));
    b.build().expect("bipartite gnp is valid")
}

/// Random bipartite graph where each `X` node picks exactly `d` distinct
/// `Y` neighbours (a switch-like request graph).
///
/// # Panics
/// Panics if `d > n_y`.
#[must_use]
pub fn bipartite_regular_out<R: Rng + ?Sized>(
    nx: usize,
    ny: usize,
    d: usize,
    rng: &mut R,
) -> Graph {
    assert!(d <= ny, "out-degree {d} exceeds |Y| = {ny}");
    let mut b = Graph::builder(nx + ny);
    let mut targets: Vec<NodeId> = (nx..nx + ny).collect();
    for u in 0..nx {
        targets.shuffle(rng);
        for &v in targets.iter().take(d) {
            b.edge(u, v);
        }
    }
    b.bipartition(bipartite_sides(nx, ny));
    b.build().expect("bipartite regular is valid")
}

/// Random `d`-regular simple graph via the configuration model with
/// restarts (rejecting self-loops and parallel edges).
///
/// # Panics
/// Panics if `n·d` is odd or `d ≥ n`.
#[must_use]
pub fn random_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Graph {
    assert!((n * d).is_multiple_of(2), "n*d must be even");
    assert!(d < n, "degree must be below n");
    'restart: loop {
        let mut stubs: Vec<NodeId> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        stubs.shuffle(rng);
        let mut seen = std::collections::HashSet::new();
        let mut edges = Vec::with_capacity(n * d / 2);
        for pair in stubs.chunks(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v || !seen.insert((u.min(v), u.max(v))) {
                continue 'restart;
            }
            edges.push((u, v));
        }
        let mut b = Graph::builder(n);
        b.edges(edges);
        return b.build().expect("regular graph is valid");
    }
}

/// Uniform random labelled tree on `n` nodes (random attachment).
#[must_use]
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    let mut b = Graph::builder(n);
    for v in 1..n {
        let parent = rng.random_range(0..v);
        b.edge(parent, v);
    }
    b.build().expect("tree is valid")
}

/// Chung–Lu power-law graph: node `v` has target weight
/// `(v+1)^{-1/(γ-1)}`-proportional; edge `(u,v)` appears with probability
/// `min(1, w_u w_v / Σw)`.
///
/// # Panics
/// Panics if `gamma <= 2`.
#[must_use]
pub fn power_law<R: Rng + ?Sized>(n: usize, gamma: f64, avg_degree: f64, rng: &mut R) -> Graph {
    assert!(gamma > 2.0, "Chung-Lu requires gamma > 2");
    let exp = 1.0 / (gamma - 1.0);
    let raw: Vec<f64> = (0..n).map(|v| ((v + 1) as f64).powf(-exp)).collect();
    let sum: f64 = raw.iter().sum();
    // Scale so the expected average degree is roughly `avg_degree`.
    let scale = avg_degree * n as f64 / sum;
    let w: Vec<f64> = raw.iter().map(|x| x * scale).collect();
    let total: f64 = w.iter().sum();
    let mut b = Graph::builder(n);
    for u in 0..n {
        for v in u + 1..n {
            let p = (w[u] * w[v] / total).min(1.0);
            if rng.random_bool(p) {
                b.edge(u, v);
            }
        }
    }
    b.build().expect("power law is valid")
}

// ---------------------------------------------------------------------------
// Adversarial families
// ---------------------------------------------------------------------------

/// A weighted "greedy trap": a path `a - b - c` with weights `1, 1+δ, 1`.
/// Greedy (and any locally-heaviest rule) takes the middle edge for weight
/// `1+δ`, while the optimum takes the two outer edges for weight `2` —
/// exhibiting the `½` worst case of greedy, repeated `copies` times.
#[must_use]
pub fn greedy_trap(copies: usize, delta: f64) -> Graph {
    let mut b = Graph::builder(copies * 4);
    for i in 0..copies {
        let base = i * 4;
        b.weighted_edge(base, base + 1, 1.0);
        b.weighted_edge(base + 1, base + 2, 1.0 + delta);
        b.weighted_edge(base + 2, base + 3, 1.0);
    }
    b.build().expect("greedy trap is valid")
}

/// The paper's §4 tight example: three unit-weight edges in series. With
/// `M` = the middle edge, every `wrap` gain is 0, so Algorithm 5 cannot
/// improve past `½` — the approximation barrier is real.
#[must_use]
pub fn three_edge_series() -> Graph {
    let mut b = Graph::builder(4);
    b.weighted_edge(0, 1, 1.0).weighted_edge(1, 2, 1.0).weighted_edge(2, 3, 1.0).force_weighted();
    b.build().expect("series is valid")
}

/// `copies` disjoint paths of odd length `len` (in edges). With the
/// "every second edge" matching these have exactly one augmenting path
/// each, of length `len` — a worst case for augmentation-based algorithms.
///
/// # Panics
/// Panics if `len` is even.
#[must_use]
pub fn disjoint_paths(copies: usize, len: usize) -> Graph {
    assert!(len % 2 == 1, "augmenting chains need odd length");
    let nodes_per = len + 1;
    let mut b = Graph::builder(copies * nodes_per);
    for c in 0..copies {
        let base = c * nodes_per;
        for i in 0..len {
            b.edge(base + i, base + i + 1);
        }
    }
    b.bipartition(
        (0..copies * nodes_per)
            .map(|v| if (v % nodes_per).is_multiple_of(2) { Side::X } else { Side::Y })
            .collect(),
    );
    b.build().expect("disjoint paths are valid")
}

/// A "flower": an odd cycle of length `2k+1` with a pendant stem — the
/// classic blossom test case for general-graph matching.
#[must_use]
pub fn flower(k: usize) -> Graph {
    let cycle_len = 2 * k + 1;
    let mut b = Graph::builder(cycle_len + 1);
    for v in 0..cycle_len {
        b.edge(v, (v + 1) % cycle_len);
    }
    b.edge(0, cycle_len);
    b.build().expect("flower is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn structured_counts() {
        assert_eq!(path(5).edge_count(), 4);
        assert_eq!(cycle(6).edge_count(), 6);
        assert_eq!(complete(5).edge_count(), 10);
        assert_eq!(star(5).edge_count(), 4);
        assert_eq!(grid(3, 4).edge_count(), 3 * 3 + 2 * 4);
        assert_eq!(complete_bipartite(3, 4).edge_count(), 12);
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 32);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        g.validate_bipartition().unwrap();
        assert_eq!(crate::analysis::diameter(&g), 4);
        // Q_d has a perfect matching (fix one dimension).
        assert_eq!(crate::hopcroft_karp::maximum_bipartite_matching_size(&g), 8);
    }

    #[test]
    fn bipartitions_are_valid() {
        path(7).validate_bipartition().unwrap();
        cycle(8).validate_bipartition().unwrap();
        star(5).validate_bipartition().unwrap();
        grid(3, 3).validate_bipartition().unwrap();
        complete_bipartite(2, 5).validate_bipartition().unwrap();
        disjoint_paths(3, 5).validate_bipartition().unwrap();
        assert!(cycle(7).bipartition().is_none());
    }

    #[test]
    fn gnp_determinism_and_range() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let g1 = gnp(30, 0.2, &mut r1);
        let g2 = gnp(30, 0.2, &mut r2);
        assert_eq!(g1.edge_count(), g2.edge_count());
        assert!(gnp(30, 0.0, &mut r1).edge_count() == 0);
        assert_eq!(gnp(10, 1.0, &mut r1).edge_count(), 45);
    }

    #[test]
    fn gnm_exact_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = gnm(20, 50, &mut rng);
        assert_eq!(g.edge_count(), 50);
        // No duplicates: all endpoint pairs distinct.
        let mut pairs: Vec<_> = g
            .edge_ids()
            .map(|e| {
                let (u, v) = g.endpoints(e);
                (u.min(v), u.max(v))
            })
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), 50);
    }

    #[test]
    fn regular_degrees() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = random_regular(20, 4, &mut rng);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
    }

    #[test]
    fn bipartite_out_regular() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = bipartite_regular_out(8, 8, 3, &mut rng);
        g.validate_bipartition().unwrap();
        for u in 0..8 {
            assert_eq!(g.degree(u), 3);
        }
    }

    #[test]
    fn tree_is_connected_acyclic() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = random_tree(40, &mut rng);
        assert_eq!(g.edge_count(), 39);
        // Connectivity by BFS.
        let mut seen = [false; 40];
        let mut stack = vec![0];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for u in g.neighbors(v) {
                if !seen[u] {
                    seen[u] = true;
                    stack.push(u);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn power_law_runs() {
        let mut rng = StdRng::seed_from_u64(17);
        let g = power_law(60, 2.5, 4.0, &mut rng);
        assert!(g.edge_count() > 0);
    }

    #[test]
    fn adversarial_shapes() {
        let g = greedy_trap(3, 0.1);
        assert_eq!(g.edge_count(), 9);
        assert!(g.is_weighted());
        let s = three_edge_series();
        assert_eq!(s.edge_count(), 3);
        let f = flower(2);
        assert_eq!(f.node_count(), 6);
        assert_eq!(f.edge_count(), 6);
    }
}
