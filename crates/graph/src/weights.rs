//! Edge-weight distributions for weighted matching experiments.
//!
//! The paper assumes `w : E → R⁺` and that `log W_max = O(log n)`; the
//! distributions here stay within that regime by construction.

use rand::{Rng, RngExt};

use crate::graph::Graph;

/// A distribution over positive edge weights.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum WeightDist {
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound (exclusive of 0).
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Exponential with rate `lambda`, shifted by `+1e-9` to stay positive.
    Exponential {
        /// Rate parameter.
        lambda: f64,
    },
    /// Uniform over the integers `1..=max` (cast to `f64`).
    ///
    /// This is the regime where weight *classes* (powers of two) matter.
    Integer {
        /// Largest weight.
        max: u64,
    },
    /// `2^c` for `c` uniform over `0..classes` — extreme class separation,
    /// adversarial for unweighted heuristics.
    PowersOfTwo {
        /// Number of weight classes.
        classes: u32,
    },
}

impl WeightDist {
    /// Samples one weight.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            WeightDist::Uniform { lo, hi } => rng.random_range(lo..hi),
            WeightDist::Exponential { lambda } => {
                let u: f64 = rng.random_range(0.0..1.0);
                (-(1.0 - u).ln()) / lambda + 1e-9
            }
            WeightDist::Integer { max } => rng.random_range(1..=max) as f64,
            WeightDist::PowersOfTwo { classes } => {
                let c = rng.random_range(0..classes);
                (2.0f64).powi(c as i32)
            }
        }
    }
}

/// Returns a copy of `g` with weights drawn i.i.d. from `dist`.
#[must_use]
pub fn randomize_weights<R: Rng + ?Sized>(g: &Graph, dist: WeightDist, rng: &mut R) -> Graph {
    let weights = (0..g.edge_count()).map(|_| dist.sample(rng)).collect();
    g.with_weights(weights).expect("distributions produce positive finite weights")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_distributions_positive_finite() {
        let mut rng = StdRng::seed_from_u64(1);
        for dist in [
            WeightDist::Uniform { lo: 0.5, hi: 2.0 },
            WeightDist::Exponential { lambda: 1.0 },
            WeightDist::Integer { max: 100 },
            WeightDist::PowersOfTwo { classes: 10 },
        ] {
            for _ in 0..200 {
                let w = dist.sample(&mut rng);
                assert!(w.is_finite() && w > 0.0, "{dist:?} produced {w}");
            }
        }
    }

    #[test]
    fn randomize_is_reproducible() {
        let g = generators::complete(6);
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let g1 = randomize_weights(&g, WeightDist::Integer { max: 8 }, &mut r1);
        let g2 = randomize_weights(&g, WeightDist::Integer { max: 8 }, &mut r2);
        for e in g1.edge_ids() {
            assert_eq!(g1.weight(e), g2.weight(e));
        }
        assert!(g1.is_weighted());
    }
}
