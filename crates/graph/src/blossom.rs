//! Edmonds' blossom algorithm: exact maximum-cardinality matching in
//! general graphs, `O(n³)`.
//!
//! The oracle for measuring the approximation ratio of the general-graph
//! distributed algorithms (Theorem 3.15). The implementation is the
//! classical BFS-with-contraction formulation: grow alternating trees from
//! free roots, contract odd cycles (blossoms) to their base, and augment
//! when two trees touch.

use crate::graph::{Graph, NodeId};
use crate::matching::Matching;

const NIL: usize = usize::MAX;

/// Computes a maximum-cardinality matching of an arbitrary graph.
///
/// # Example
/// ```
/// use dam_graph::{generators, blossom};
/// // An odd cycle C_5 has a maximum matching of size 2...
/// assert_eq!(blossom::maximum_matching(&generators::cycle(5)).size(), 2);
/// // ...and the "flower" (C_5 + stem) of size 3, which greedy search
/// // without blossom contraction cannot find.
/// assert_eq!(blossom::maximum_matching(&generators::flower(2)).size(), 3);
/// ```
#[must_use]
pub fn maximum_matching(g: &Graph) -> Matching {
    let n = g.node_count();
    let mut mate = vec![NIL; n];

    // Greedy warm start speeds up the search considerably.
    for e in g.edge_ids() {
        let (u, v) = g.endpoints(e);
        if mate[u] == NIL && mate[v] == NIL {
            mate[u] = v;
            mate[v] = u;
        }
    }

    let mut solver = Solver {
        g,
        mate,
        parent: vec![NIL; n],
        base: (0..n).collect(),
        used: vec![false; n],
        blossom: vec![false; n],
    };
    for v in 0..n {
        if solver.mate[v] == NIL {
            solver.find_augmenting_path(v);
        }
    }

    // Convert mate pointers to edge ids (pick any connecting edge).
    let mut m = Matching::new(g);
    for v in 0..n {
        let u = solver.mate[v];
        if u != NIL && v < u {
            let e = g
                .incident(v)
                .find(|&(_, w, _)| w == u)
                .map(|(_, _, e)| e)
                .expect("mate is a neighbour");
            m.add(g, e).expect("mate pointers form a matching");
        }
    }
    m
}

/// The maximum matching size (convenience wrapper).
#[must_use]
pub fn maximum_matching_size(g: &Graph) -> usize {
    maximum_matching(g).size()
}

struct Solver<'a> {
    g: &'a Graph,
    mate: Vec<NodeId>,
    parent: Vec<NodeId>,
    base: Vec<NodeId>,
    used: Vec<bool>,
    blossom: Vec<bool>,
}

impl Solver<'_> {
    /// Grows an alternating tree from `root`; augments and returns on
    /// success.
    fn find_augmenting_path(&mut self, root: NodeId) {
        let n = self.g.node_count();
        self.used.iter_mut().for_each(|u| *u = false);
        self.parent.iter_mut().for_each(|p| *p = NIL);
        for i in 0..n {
            self.base[i] = i;
        }
        self.used[root] = true;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            let neighbours: Vec<NodeId> = self.g.neighbors(v).collect();
            for u in neighbours {
                if self.base[v] == self.base[u] || self.mate[v] == u {
                    continue;
                }
                if u == root || (self.mate[u] != NIL && self.parent[self.mate[u]] != NIL) {
                    // Found a blossom: contract it.
                    let cur_base = self.lca(v, u);
                    self.blossom.iter_mut().for_each(|b| *b = false);
                    self.mark_path(v, cur_base, u);
                    self.mark_path(u, cur_base, v);
                    for i in 0..n {
                        if self.blossom[self.base[i]] {
                            self.base[i] = cur_base;
                            if !self.used[i] {
                                self.used[i] = true;
                                queue.push_back(i);
                            }
                        }
                    }
                } else if self.parent[u] == NIL {
                    self.parent[u] = v;
                    if self.mate[u] == NIL {
                        self.augment(u);
                        return;
                    }
                    self.used[self.mate[u]] = true;
                    queue.push_back(self.mate[u]);
                }
            }
        }
    }

    /// Lowest common ancestor of `a` and `b` in the alternating tree
    /// (walking via bases).
    fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let n = self.g.node_count();
        let mut used_path = vec![false; n];
        let mut v = a;
        loop {
            v = self.base[v];
            used_path[v] = true;
            if self.mate[v] == NIL {
                break;
            }
            v = self.parent[self.mate[v]];
        }
        let mut u = b;
        loop {
            u = self.base[u];
            if used_path[u] {
                return u;
            }
            u = self.parent[self.mate[u]];
        }
    }

    /// Marks blossom membership along the tree path from `v` down to
    /// `base_node`, rethreading parents through `child`.
    fn mark_path(&mut self, mut v: NodeId, base_node: NodeId, mut child: NodeId) {
        while self.base[v] != base_node {
            self.blossom[self.base[v]] = true;
            self.blossom[self.base[self.mate[v]]] = true;
            self.parent[v] = child;
            child = self.mate[v];
            v = self.parent[self.mate[v]];
        }
    }

    /// Flips matched/unmatched along the alternating path ending at free
    /// node `u`.
    fn augment(&mut self, mut u: NodeId) {
        while u != NIL {
            let pv = self.parent[u];
            let ppv = self.mate[pv];
            self.mate[u] = pv;
            self.mate[pv] = u;
            u = ppv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn handles_blossoms() {
        assert_eq!(maximum_matching_size(&generators::cycle(5)), 2);
        assert_eq!(maximum_matching_size(&generators::flower(1)), 2);
        assert_eq!(maximum_matching_size(&generators::flower(3)), 4);
        // Two triangles joined by a bridge: perfect matching of size 3.
        let g = crate::Graph::builder(6)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 0)
            .edge(3, 4)
            .edge(4, 5)
            .edge(5, 3)
            .edge(0, 3)
            .build()
            .unwrap();
        assert_eq!(maximum_matching_size(&g), 3);
    }

    #[test]
    fn agrees_with_brute_force_random() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..60 {
            let g = generators::gnp(10, 0.3, &mut rng);
            let m = maximum_matching(&g);
            m.validate(&g).unwrap();
            assert_eq!(m.size(), brute::maximum_matching_size(&g), "mismatch on {g}");
        }
    }

    #[test]
    fn agrees_with_hopcroft_karp_on_bipartite() {
        let mut rng = StdRng::seed_from_u64(123);
        for _ in 0..20 {
            let g = generators::bipartite_gnp(9, 9, 0.3, &mut rng);
            assert_eq!(
                maximum_matching_size(&g),
                crate::hopcroft_karp::maximum_bipartite_matching_size(&g)
            );
        }
    }

    #[test]
    fn perfect_on_even_structures() {
        assert_eq!(maximum_matching_size(&generators::cycle(10)), 5);
        assert_eq!(maximum_matching_size(&generators::complete(8)), 4);
        assert_eq!(maximum_matching_size(&generators::grid(4, 4)), 8);
    }

    #[test]
    fn empty_graphs() {
        let g = crate::Graph::builder(4).build().unwrap();
        assert_eq!(maximum_matching_size(&g), 0);
    }
}
