//! Property tests for the graph substrate: serialization round-trips,
//! decompositions, covers and line graphs over arbitrary inputs.

use dam_graph::conflict::ConflictGraph;
use dam_graph::cover::{is_vertex_cover, koenig_vertex_cover};
use dam_graph::line_graph::{is_independent_in_line_graph, line_graph};
use dam_graph::paths::decompose_symmetric_difference;
use dam_graph::{blossom, brute, hopcroft_karp, io, maximal, Graph, GraphBuilder, Matching, Side};
use proptest::prelude::*;

fn arb_graph(max_n: usize, max_edges: usize) -> impl Strategy<Value = Graph> {
    (2usize..=max_n).prop_flat_map(move |n| {
        let all: Vec<(usize, usize)> =
            (0..n).flat_map(|u| (u + 1..n).map(move |v| (u, v))).collect();
        let m = all.len();
        (
            proptest::collection::vec(0..m, 0..max_edges.min(m)),
            proptest::collection::vec(1u32..64, max_edges.min(m).max(1)),
            any::<bool>(),
        )
            .prop_map(move |(picks, ws, weighted)| {
                let mut b = GraphBuilder::new(n);
                let mut seen = std::collections::HashSet::new();
                for (i, pick) in picks.into_iter().enumerate() {
                    if seen.insert(pick) {
                        if weighted {
                            b.weighted_edge(all[pick].0, all[pick].1, f64::from(ws[i % ws.len()]));
                        } else {
                            b.edge(all[pick].0, all[pick].1);
                        }
                    }
                }
                if weighted {
                    b.force_weighted();
                }
                b.build().expect("valid graph")
            })
    })
}

fn arb_bipartite(max_half: usize) -> impl Strategy<Value = Graph> {
    (1usize..=max_half, 1usize..=max_half).prop_flat_map(|(a, b)| {
        let pairs: Vec<(usize, usize)> =
            (0..a).flat_map(|u| (a..a + b).map(move |v| (u, v))).collect();
        let m = pairs.len();
        proptest::collection::vec(0..m, 0..(3 * (a + b)).min(m)).prop_map(move |picks| {
            let mut builder = GraphBuilder::new(a + b);
            let mut seen = std::collections::HashSet::new();
            for i in picks {
                if seen.insert(i) {
                    builder.edge(pairs[i].0, pairs[i].1);
                }
            }
            builder
                .bipartition((0..a + b).map(|v| if v < a { Side::X } else { Side::Y }).collect())
                .build()
                .expect("bipartite graph")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Text serialization round-trips topology, weights and bipartition.
    #[test]
    fn io_roundtrip(g in arb_graph(12, 24)) {
        let g2 = io::from_text(&io::to_text(&g)).unwrap();
        prop_assert_eq!(g.node_count(), g2.node_count());
        prop_assert_eq!(g.edge_count(), g2.edge_count());
        if g.edge_count() > 0 {
            // Weightedness is carried by edge lines; an edgeless graph
            // has no representation difference.
            prop_assert_eq!(g.is_weighted(), g2.is_weighted());
        }
        for e in g.edge_ids() {
            prop_assert_eq!(g.endpoints(e), g2.endpoints(e));
            prop_assert!((g.weight(e) - g2.weight(e)).abs() < 1e-12);
        }
    }

    /// König: cover size equals maximum matching size on bipartite
    /// graphs, and the extracted cover covers.
    #[test]
    fn koenig_duality(g in arb_bipartite(8)) {
        let m = hopcroft_karp::maximum_bipartite_matching(&g);
        let cover = koenig_vertex_cover(&g, &m);
        prop_assert!(is_vertex_cover(&g, &cover));
        prop_assert_eq!(cover.len(), m.size());
    }

    /// Symmetric-difference decomposition partitions the difference and
    /// conserves the size gap.
    #[test]
    fn symmetric_difference_invariants(g in arb_graph(12, 22), seed in 0u64..500) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let m1 = maximal::random_maximal_matching(&g, &mut rng);
        let m2 = blossom::maximum_matching(&g);
        let comps = decompose_symmetric_difference(&g, &m1, &m2);
        let total: usize = comps.iter().map(|c| c.edges().len()).sum();
        let diff = g.edge_ids().filter(|&e| m1.contains(e) != m2.contains(e)).count();
        prop_assert_eq!(total, diff);
        let mut surplus = 0isize;
        for c in &comps {
            let m2_edges = c.edges().iter().filter(|&&e| m2.contains(e)).count() as isize;
            surplus += m2_edges - (c.edges().len() as isize - m2_edges);
        }
        prop_assert_eq!(surplus, m2.size() as isize - m1.size() as isize);
    }

    /// Any matching is an independent set of the line graph; maximum
    /// matchings of G are maximum independent sets of L(G) (sizes agree
    /// via brute force on L(G)'s complement — checked by MIS bound).
    #[test]
    fn line_graph_bridge(g in arb_graph(9, 14)) {
        let m = blossom::maximum_matching(&g);
        let mut sel = vec![false; g.edge_count()];
        for e in m.edges() { sel[e] = true; }
        prop_assert!(is_independent_in_line_graph(&g, &sel));
        let lg = line_graph(&g);
        prop_assert_eq!(lg.node_count(), g.edge_count());
    }

    /// The conflict graph over any matching state has no self-conflicts
    /// and symmetric adjacency, and its greedy MIS is maximal.
    #[test]
    fn conflict_graph_sanity(g in arb_graph(9, 14), seed in 0u64..100) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let m = maximal::random_maximal_matching(&g, &mut rng);
        let mut m = m;
        if let Some(e) = m.to_edge_vec().first().copied() {
            m.remove(&g, e); // reopen some augmenting paths
        }
        let c = ConflictGraph::build(&g, &m, 3);
        for i in 0..c.len() {
            prop_assert!(!c.neighbors(i).contains(&i), "self-conflict at {i}");
            for &j in c.neighbors(i) {
                prop_assert!(c.neighbors(j).contains(&i), "asymmetric conflict {i},{j}");
            }
        }
        let mis = c.greedy_mis();
        prop_assert!(c.is_maximal_independent(&mis));
    }

    /// Greedy b-matching respects capacities for arbitrary capacity
    /// vectors and dominates half the brute-force optimum.
    #[test]
    fn b_matching_caps(g in arb_graph(8, 12), caps in proptest::collection::vec(0usize..4, 8)) {
        use dam_graph::bmatching::{brute_force_b_matching, greedy_b_matching};
        let caps: Vec<usize> = (0..g.node_count()).map(|v| caps[v % caps.len()]).collect();
        let greedy = greedy_b_matching(&g, &caps);
        prop_assert!(greedy.validate(&g).is_ok());
        let opt = brute_force_b_matching(&g, &caps);
        prop_assert!(greedy.weight(&g) >= 0.5 * opt.weight(&g) - 1e-9);
    }

    /// Blossom never disagrees with brute force (the substrate's anchor
    /// invariant, re-checked at the integration level).
    #[test]
    fn blossom_anchor(g in arb_graph(9, 15)) {
        prop_assert_eq!(blossom::maximum_matching_size(&g), brute::maximum_matching_size(&g));
    }

    /// `Matching::toggle` with an arbitrary valid augmenting path
    /// preserves validity and flips size parity up.
    #[test]
    fn toggle_safety(g in arb_graph(10, 18), seed in 0u64..100) {
        use dam_graph::paths::enumerate_augmenting_paths;
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = maximal::random_maximal_matching(&g, &mut rng);
        if let Some(e) = m.to_edge_vec().first().copied() {
            m.remove(&g, e);
        }
        for p in enumerate_augmenting_paths(&g, &m, 5).into_iter().take(2) {
            let mut m2 = m.clone();
            m2.toggle(&g, p.edges()).unwrap();
            prop_assert!(m2.validate(&g).is_ok());
            prop_assert_eq!(m2.size(), m.size() + 1);
        }
        let _ = Matching::new(&g);
    }
}
