//! Round, message and bit accounting.
//!
//! The paper's two complexity measures are **rounds** and **message
//! width**; these are what the statistics track. `charged_rounds`
//! additionally applies the configured [`crate::CostModel`] (Lemma 3.9's
//! pipelining) so wide-message protocols are billed honestly.

use std::fmt;

/// Statistics of a single protocol run.
///
/// All counters are 64-bit and accumulate with *saturating* arithmetic:
/// a chaos run that executes for days must degrade to a pinned counter,
/// never wrap around (a wrapped `total_bits` silently corrupts every
/// downstream ratio). Saturation is also what makes [`RunStats::absorb`]
/// safe to fold over unboundedly many phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Synchronous rounds executed (including round 0).
    pub rounds: u64,
    /// Rounds charged under the configured cost model.
    pub charged_rounds: u64,
    /// Protocol messages sent (excludes retransmissions and heartbeats,
    /// which fault-tolerant transports account separately below).
    pub messages: u64,
    /// Retransmitted frames sent by a resilient transport (see
    /// [`crate::MsgClass::Retransmission`]). Zero for plain protocols.
    pub retransmissions: u64,
    /// Failure-detector heartbeats sent by a resilient transport (see
    /// [`crate::MsgClass::Heartbeat`]). Zero for plain protocols.
    pub heartbeats: u64,
    /// Maintenance frames sent by matching-repair traffic after churn
    /// (see [`crate::MsgClass::Maintenance`]). Zero outside maintenance
    /// runs.
    pub maintenance: u64,
    /// Empty-round markers sent by the α-synchronizer of the
    /// asynchronous backend ([`crate::Backend::Async`]): one per
    /// (active node, port, round) with no payload. Zero under the
    /// synchronous engines. Markers are control plane, not protocol
    /// traffic — they are excluded from [`RunStats::frames`] so
    /// quiescence detection and differential suites see identical
    /// frame counts across backends.
    pub markers: u64,
    /// Topology events applied by a [`crate::ChurnPlan`] during the run.
    pub churn_events: u64,
    /// Messages dropped because their edge (or an endpoint) was absent
    /// when they were sent.
    pub churn_drops: u64,
    /// Total bits sent (all classes combined).
    pub total_bits: u64,
    /// Widest single message observed.
    pub max_message_bits: usize,
    /// Messages exceeding the CONGEST budget (0 under LOCAL).
    pub violations: u64,
    /// Messages corrupted in transit by the fault plan's `corrupt`
    /// channel (delivered damaged, or dropped when undecodable).
    pub corruptions: u64,
    /// Outgoing messages tampered with by Byzantine equivocators
    /// ([`crate::FaultPlan::equivocators`]).
    pub equivocations: u64,
    /// Frames rejected by receiver-side integrity validation (failed
    /// checksum, wrong incarnation nonce) — reported via
    /// [`crate::Context::note_rejected`].
    pub rejected: u64,
    /// Neighbour links quarantined after repeated integrity failures —
    /// reported via [`crate::Context::note_quarantined`].
    pub quarantined: u64,
    /// Live peers declared dead by a transport's *silence-based* failure
    /// detector (no progress for [`crate::TransportCfg::suspicion`]
    /// rounds) — reported via [`crate::Context::note_suspected`]. Under
    /// an adversarial timing model every suspicion of a slow-but-correct
    /// node is a *false* suspicion; experiment E18 drives this to zero
    /// by deriving the timers from the declared delay bound.
    pub suspected: u64,
    /// Process restarts this run resumed from a durable checkpoint
    /// (`dam_core::checkpoint`). Zero for a fresh run; set by the
    /// restore path, never by the engines. Like the integrity
    /// counters, restores annotate the run rather than its traffic, so
    /// they stay out of [`RunStats::frames`].
    pub restores: u64,
    /// Restores that could **not** use the newest snapshot verbatim:
    /// damage was detected (checksum, truncation, generation rollback)
    /// and the run degraded to a previous generation or to cold-start
    /// repair. Always `<= restores`.
    pub restores_degraded: u64,
}

impl RunStats {
    /// Merges `other` into `self` (used by the parallel engine's
    /// per-shard partials and by multi-phase drivers). Saturating, so
    /// folding arbitrarily many runs can pin counters but never wrap.
    pub fn absorb(&mut self, other: &RunStats) {
        self.rounds = self.rounds.saturating_add(other.rounds);
        self.charged_rounds = self.charged_rounds.saturating_add(other.charged_rounds);
        self.messages = self.messages.saturating_add(other.messages);
        self.retransmissions = self.retransmissions.saturating_add(other.retransmissions);
        self.heartbeats = self.heartbeats.saturating_add(other.heartbeats);
        self.maintenance = self.maintenance.saturating_add(other.maintenance);
        self.markers = self.markers.saturating_add(other.markers);
        self.churn_events = self.churn_events.saturating_add(other.churn_events);
        self.churn_drops = self.churn_drops.saturating_add(other.churn_drops);
        self.total_bits = self.total_bits.saturating_add(other.total_bits);
        self.max_message_bits = self.max_message_bits.max(other.max_message_bits);
        self.violations = self.violations.saturating_add(other.violations);
        self.corruptions = self.corruptions.saturating_add(other.corruptions);
        self.equivocations = self.equivocations.saturating_add(other.equivocations);
        self.rejected = self.rejected.saturating_add(other.rejected);
        self.quarantined = self.quarantined.saturating_add(other.quarantined);
        self.suspected = self.suspected.saturating_add(other.suspected);
        self.restores = self.restores.saturating_add(other.restores);
        self.restores_degraded = self.restores_degraded.saturating_add(other.restores_degraded);
    }

    /// Frames of every class: protocol + retransmitted + heartbeat +
    /// maintenance. Integrity counters (`corruptions`, `rejected`, …)
    /// are *not* frames: they annotate frames already counted in one of
    /// the four classes, and quiescence detection relies on `frames()`
    /// counting exactly the messages in flight.
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.messages
            .saturating_add(self.retransmissions)
            .saturating_add(self.heartbeats)
            .saturating_add(self.maintenance)
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rounds = {} (charged {}), messages = {} (+{} retx, +{} hb, +{} maint, +{} markers), bits = {}, widest = {} bits, violations = {}, churn = {} events ({} drops), integrity = {} corrupt / {} equiv / {} rejected / {} quarantined / {} suspected, restores = {} ({} degraded)",
            self.rounds,
            self.charged_rounds,
            self.messages,
            self.retransmissions,
            self.heartbeats,
            self.maintenance,
            self.markers,
            self.total_bits,
            self.max_message_bits,
            self.violations,
            self.churn_events,
            self.churn_drops,
            self.corruptions,
            self.equivocations,
            self.rejected,
            self.quarantined,
            self.suspected,
            self.restores,
            self.restores_degraded
        )
    }
}

/// Receiver-side integrity accounting, filled in by protocols through
/// [`crate::Context::note_rejected`] / [`crate::Context::note_quarantined`]
/// and folded into [`RunStats`] by the engines. Plain sums, so the
/// sequential engine's single accumulator and the parallel engine's
/// per-worker partials merge to identical totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct Integrity {
    /// Frames rejected by validation.
    pub rejected: u64,
    /// Neighbour links quarantined.
    pub quarantined: u64,
    /// Live peers declared dead by silence-based suspicion.
    pub suspected: u64,
    /// Occupied transport window slots, summed over nodes and rounds —
    /// reported via [`crate::Context::note_outstanding`]. A telemetry
    /// gauge for the per-round sample stream
    /// ([`crate::telemetry::RoundSample::outstanding`]); deliberately
    /// **not** folded into [`RunStats`], which counts events, not
    /// round-integrated occupancy.
    pub outstanding: u64,
}

impl Integrity {
    /// Folds the accumulated counters into `stats` (the `outstanding`
    /// gauge stays telemetry-only).
    pub fn fold_into(self, stats: &mut RunStats) {
        stats.rejected = stats.rejected.saturating_add(self.rejected);
        stats.quarantined = stats.quarantined.saturating_add(self.quarantined);
        stats.suspected = stats.suspected.saturating_add(self.suspected);
    }
}

/// Cumulative statistics across every run executed by one
/// [`crate::Network`] — the cost of a complete multi-phase algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TotalStats {
    /// Number of protocol runs (phases) executed.
    pub runs: usize,
    /// Aggregated per-run statistics.
    pub stats: RunStats,
}

impl TotalStats {
    /// Records one finished run.
    pub fn record(&mut self, run: &RunStats) {
        self.runs += 1;
        self.stats.absorb(run);
    }
}

impl fmt::Display for TotalStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} runs: {}", self.runs, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = RunStats {
            rounds: 3,
            charged_rounds: 5,
            messages: 10,
            retransmissions: 2,
            heartbeats: 7,
            maintenance: 5,
            markers: 8,
            churn_events: 2,
            churn_drops: 1,
            total_bits: 100,
            max_message_bits: 12,
            violations: 1,
            corruptions: 4,
            equivocations: 1,
            rejected: 3,
            quarantined: 1,
            suspected: 2,
            restores: 1,
            restores_degraded: 1,
        };
        let b = RunStats {
            rounds: 2,
            charged_rounds: 2,
            messages: 4,
            retransmissions: 1,
            heartbeats: 3,
            maintenance: 6,
            markers: 4,
            churn_events: 3,
            churn_drops: 2,
            total_bits: 40,
            max_message_bits: 30,
            violations: 0,
            corruptions: 2,
            equivocations: 2,
            rejected: 1,
            quarantined: 0,
            suspected: 3,
            restores: 1,
            restores_degraded: 0,
        };
        a.absorb(&b);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.charged_rounds, 7);
        assert_eq!(a.messages, 14);
        assert_eq!(a.retransmissions, 3);
        assert_eq!(a.heartbeats, 10);
        assert_eq!(a.maintenance, 11);
        assert_eq!(a.markers, 12);
        assert_eq!(a.churn_events, 5);
        assert_eq!(a.churn_drops, 3);
        assert_eq!(a.frames(), 38);
        assert_eq!(a.total_bits, 140);
        assert_eq!(a.max_message_bits, 30);
        assert_eq!(a.violations, 1);
        assert_eq!(a.corruptions, 6);
        assert_eq!(a.equivocations, 3);
        assert_eq!(a.rejected, 4);
        assert_eq!(a.quarantined, 1);
        assert_eq!(a.suspected, 5);
        assert_eq!(a.restores, 2);
        assert_eq!(a.restores_degraded, 1);
    }

    #[test]
    fn restore_counters_are_not_frames() {
        // Restores annotate the run, not its traffic: a resumed run's
        // quiescence detection must see exactly the frames in flight.
        let s = RunStats { restores: 3, restores_degraded: 2, ..RunStats::default() };
        assert_eq!(s.frames(), 0);
    }

    #[test]
    fn integrity_counters_are_not_frames() {
        // Quiescence detection counts frames in flight; integrity
        // counters annotate frames already classed, so they must never
        // contribute to `frames()`.
        let s = RunStats {
            corruptions: 5,
            rejected: 7,
            quarantined: 2,
            suspected: 3,
            ..RunStats::default()
        };
        assert_eq!(s.frames(), 0);
    }

    #[test]
    fn markers_are_control_plane_not_frames() {
        // Synchronizer markers announce "no payload this round"; counting
        // them as frames would defeat quiescence detection and make the
        // async backend's frame totals diverge from sequential.
        let s = RunStats { markers: 1_000, ..RunStats::default() };
        assert_eq!(s.frames(), 0);
        let mut a = RunStats { markers: u64::MAX, ..RunStats::default() };
        a.absorb(&RunStats { markers: 10, ..RunStats::default() });
        assert_eq!(a.markers, u64::MAX, "markers saturate like every counter");
    }

    #[test]
    fn integrity_accumulator_folds() {
        let mut s = RunStats { rejected: 1, ..RunStats::default() };
        Integrity { rejected: 4, quarantined: 2, suspected: 1, outstanding: 99 }.fold_into(&mut s);
        assert_eq!(s.rejected, 5);
        assert_eq!(s.quarantined, 2);
        assert_eq!(s.suspected, 1);
    }

    #[test]
    fn absorb_saturates_instead_of_wrapping() {
        let mut a = RunStats {
            rounds: u64::MAX - 1,
            messages: u64::MAX,
            total_bits: u64::MAX - 5,
            ..RunStats::default()
        };
        let b = RunStats { rounds: 7, messages: 9, total_bits: 100, ..RunStats::default() };
        a.absorb(&b);
        assert_eq!(a.rounds, u64::MAX);
        assert_eq!(a.messages, u64::MAX);
        assert_eq!(a.total_bits, u64::MAX);
        // frames() over pinned counters must not wrap either.
        let pinned = RunStats { messages: u64::MAX, heartbeats: 3, ..RunStats::default() };
        assert_eq!(pinned.frames(), u64::MAX);
    }

    #[test]
    fn totals_count_runs() {
        let mut t = TotalStats::default();
        t.record(&RunStats { rounds: 1, ..RunStats::default() });
        t.record(&RunStats { rounds: 2, ..RunStats::default() });
        assert_eq!(t.runs, 2);
        assert_eq!(t.stats.rounds, 3);
        assert!(!format!("{t}").is_empty());
    }
}
