//! Model configuration: LOCAL vs CONGEST, round-cost accounting, limits.

use crate::message::id_bits;

/// The communication model (§2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// Unbounded message size (the paper's LOCAL model; Lemma 3.4).
    Local,
    /// At most `bits` bits per message per edge per round
    /// (the paper's CONGEST(log n) with `bits = O(log n)`).
    Congest {
        /// Per-message bit budget `B`.
        bits: usize,
    },
}

impl Model {
    /// CONGEST with a budget of `words · ⌈log₂ n⌉` bits — the standard
    /// "`O(log n)`-bit messages" instantiation for an `n`-node network.
    #[must_use]
    pub fn congest_for(n: usize, words: usize) -> Model {
        Model::Congest { bits: words * id_bits(n.max(2)) }
    }

    /// The per-message budget, if bounded.
    #[must_use]
    pub fn budget(&self) -> Option<usize> {
        match *self {
            Model::Local => None,
            Model::Congest { bits } => Some(bits),
        }
    }
}

/// What to do when a message exceeds the CONGEST budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ViolationPolicy {
    /// Panic immediately (for tests of algorithms that *claim* small
    /// messages).
    Panic,
    /// Record the violation in the statistics and deliver anyway.
    #[default]
    Record,
}

/// How executed rounds convert into *charged* rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostModel {
    /// Each executed round costs 1 (plain synchronous accounting).
    #[default]
    Unit,
    /// Pipelined accounting (Lemma 3.9): a round whose widest message is
    /// `b` bits costs `⌈b / B⌉` rounds under CONGEST(`B`). Under LOCAL this
    /// degenerates to 1 per round.
    ///
    /// This models sending wide values (path counts, winner tokens) as
    /// chunk sequences without simulating the chunking itself.
    Pipelined,
}

/// Configuration of a [`crate::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// The communication model.
    pub model: Model,
    /// Round-cost accounting.
    pub cost: CostModel,
    /// Oversize-message policy.
    pub violation: ViolationPolicy,
    /// Master seed; all per-node randomness derives from it.
    pub seed: u64,
    /// Abort a run after this many rounds (guards non-terminating
    /// protocols).
    pub max_rounds: usize,
    /// If set, end the run successfully once this many consecutive
    /// rounds deliver no messages. Only sound for protocols whose state
    /// changes are message-driven (their `on_round` is a no-op on an
    /// empty inbox) — e.g. the auction of `dam-core`.
    pub quiescence: Option<usize>,
    /// Worker threads for [`crate::Network::execute`]: `0` or `1` runs
    /// sequentially, `t > 1` shards the nodes over `t` workers. Results
    /// are bit-identical either way (the differential suite checks).
    pub threads: usize,
}

impl SimConfig {
    /// LOCAL-model configuration with defaults (seed 0, 1M round guard).
    #[must_use]
    pub fn local() -> SimConfig {
        SimConfig {
            model: Model::Local,
            cost: CostModel::Unit,
            violation: ViolationPolicy::Record,
            seed: 0,
            max_rounds: 1_000_000,
            quiescence: None,
            threads: 1,
        }
    }

    /// CONGEST configuration with an explicit bit budget.
    #[must_use]
    pub fn congest(bits: usize) -> SimConfig {
        SimConfig { model: Model::Congest { bits }, ..SimConfig::local() }
    }

    /// CONGEST(`words · log n`) for an `n`-node network.
    #[must_use]
    pub fn congest_for(n: usize, words: usize) -> SimConfig {
        SimConfig { model: Model::congest_for(n, words), ..SimConfig::local() }
    }

    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> SimConfig {
        self.seed = seed;
        self
    }

    /// Sets the round guard.
    #[must_use]
    pub fn max_rounds(mut self, rounds: usize) -> SimConfig {
        self.max_rounds = rounds;
        self
    }

    /// Sets the round-cost model.
    #[must_use]
    pub fn cost(mut self, cost: CostModel) -> SimConfig {
        self.cost = cost;
        self
    }

    /// Sets the oversize-message policy.
    #[must_use]
    pub fn violation(mut self, violation: ViolationPolicy) -> SimConfig {
        self.violation = violation;
        self
    }

    /// Ends runs after `rounds` consecutive message-free rounds (see
    /// [`SimConfig::quiescence`]).
    #[must_use]
    pub fn quiesce_after(mut self, rounds: usize) -> SimConfig {
        self.quiescence = Some(rounds);
        self
    }

    /// Sets the worker-thread count used by [`crate::Network::execute`]
    /// (see [`SimConfig::threads`]).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> SimConfig {
        self.threads = threads;
        self
    }
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig::local()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn congest_budget_scales_logarithmically() {
        assert_eq!(Model::congest_for(1024, 1).budget(), Some(10));
        assert_eq!(Model::congest_for(1024, 4).budget(), Some(40));
        assert_eq!(Model::Local.budget(), None);
    }

    #[test]
    fn builder_chains() {
        let c = SimConfig::congest(32).seed(9).max_rounds(50).cost(CostModel::Pipelined);
        assert_eq!(c.model, Model::Congest { bits: 32 });
        assert_eq!(c.seed, 9);
        assert_eq!(c.max_rounds, 50);
        assert_eq!(c.cost, CostModel::Pipelined);
    }
}
