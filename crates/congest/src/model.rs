//! Model configuration: LOCAL vs CONGEST, round-cost accounting, limits.

use crate::message::id_bits;
use crate::rng::splitmix64;

/// The communication model (§2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// Unbounded message size (the paper's LOCAL model; Lemma 3.4).
    Local,
    /// At most `bits` bits per message per edge per round
    /// (the paper's CONGEST(log n) with `bits = O(log n)`).
    Congest {
        /// Per-message bit budget `B`.
        bits: usize,
    },
}

impl Model {
    /// CONGEST with a budget of `words · ⌈log₂ n⌉` bits — the standard
    /// "`O(log n)`-bit messages" instantiation for an `n`-node network.
    #[must_use]
    pub fn congest_for(n: usize, words: usize) -> Model {
        Model::Congest { bits: words * id_bits(n.max(2)) }
    }

    /// The per-message budget, if bounded.
    #[must_use]
    pub fn budget(&self) -> Option<usize> {
        match *self {
            Model::Local => None,
            Model::Congest { bits } => Some(bits),
        }
    }
}

/// What to do when a message exceeds the CONGEST budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ViolationPolicy {
    /// Panic immediately (for tests of algorithms that *claim* small
    /// messages).
    Panic,
    /// Record the violation in the statistics and deliver anyway.
    #[default]
    Record,
}

/// How executed rounds convert into *charged* rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostModel {
    /// Each executed round costs 1 (plain synchronous accounting).
    #[default]
    Unit,
    /// Pipelined accounting (Lemma 3.9): a round whose widest message is
    /// `b` bits costs `⌈b / B⌉` rounds under CONGEST(`B`). Under LOCAL this
    /// degenerates to 1 per round.
    ///
    /// This models sending wide values (path counts, winner tokens) as
    /// chunk sequences without simulating the chunking itself.
    Pipelined,
}

/// Which execution engine a [`crate::Network`] uses for
/// [`crate::Network::execute`] and the plan-driven entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The single-threaded reference engine (global round barrier).
    #[default]
    Sequential,
    /// The sharded multi-worker engine (global round barrier, nodes
    /// partitioned over `threads` workers). Bit-identical to
    /// [`Backend::Sequential`].
    Sharded,
    /// The asynchronous discrete-event engine: no global barrier; nodes
    /// advance as soon as their in-edges resolve, synchronised by the
    /// α-synchronizer of Awerbuch (the paper's footnote 2). Bit-identical
    /// to [`Backend::Sequential`] as long as [`SimConfig::patience`] is
    /// unset; message *delays* come from [`SimConfig::delay`].
    Async,
}

/// Per-link message latency under [`Backend::Async`], in virtual time
/// units (one unit = the synchronous round length).
///
/// Every variant is a *pure keyed function* of the message coordinates
/// `(seed, run, round, from, to)` — no shared RNG stream — so delays are
/// independent of the order in which the event loop processes sends,
/// which is what keeps the asynchronous engine deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DelayModel {
    /// Every message takes exactly one time unit (lockstep; the
    /// synchronous schedule embedded in virtual time).
    #[default]
    Unit,
    /// Uniform per-message delay in `1..=max`, keyed on the full
    /// message coordinates.
    UniformRandom {
        /// Worst-case per-hop delay (≥ 1; `0` is treated as `1`).
        max: u64,
    },
    /// Fixed per-*direction* delay in `1..=spread`: the delay of `u → v`
    /// is keyed on the ordered pair, so the two directions of one edge
    /// generally differ — the classic skew that breaks naive timeout
    /// tuning.
    LinkSkew {
        /// Worst-case per-hop delay (≥ 1; `0` is treated as `1`).
        spread: u64,
    },
    /// One slow-but-correct node: everything *it* sends takes `slow`
    /// units, all other traffic takes 1. The canonical false-suspicion
    /// attack on a heartbeat failure detector.
    Straggler {
        /// The slow sender.
        node: usize,
        /// Its per-hop delay (≥ 1; `0` is treated as `1`).
        slow: u64,
    },
    /// Periodic delay bursts: messages sent in rounds `r` with
    /// `r % period < width` take `1 + extra` units, the rest take 1.
    /// Aligning `period` with a transport's heartbeat interval starves
    /// the failure detector in lockstep with its own timer.
    Burst {
        /// Burst period in rounds (≥ 1; `0` is treated as `1`).
        period: u64,
        /// Rounds per period that are inside the burst.
        width: u64,
        /// Additional delay inside a burst.
        extra: u64,
    },
    /// A straggler that *recovers*: everything `node` sends in rounds
    /// `< until` takes `slow` units, after which it is healthy (delay
    /// 1), like every other sender throughout. A transport tuned
    /// statically for the straggler either pays `slow`-scaled patience
    /// forever or suspects it during the slow prefix; an adaptive one
    /// can relax once the drift ends.
    StragglerRecovers {
        /// The initially slow sender.
        node: usize,
        /// Its per-hop delay while slow (≥ 1; `0` is treated as `1`).
        slow: u64,
        /// First round in which the straggler is healthy.
        until: u64,
    },
}

impl DelayModel {
    /// The delay, in virtual time units, of the message sent by `from`
    /// to `to` in round `round` of run `run` under master seed `seed`.
    /// Always ≥ 1.
    #[must_use]
    pub fn delay(&self, seed: u64, run: u64, round: u64, from: usize, to: usize) -> u64 {
        match *self {
            DelayModel::Unit => 1,
            DelayModel::UniformRandom { max } => {
                let max = max.max(1);
                let mut z = splitmix64(seed ^ 0xDE1A_70D0_5EED_AB1E);
                z = splitmix64(z ^ run);
                z = splitmix64(z ^ round);
                z = splitmix64(z ^ from as u64);
                z = splitmix64(z ^ to as u64);
                1 + z % max
            }
            DelayModel::LinkSkew { spread } => {
                let spread = spread.max(1);
                let mut z = splitmix64(seed ^ 0x5E3D_11FF_0C0A_57E0);
                z = splitmix64(z ^ (((from as u64) << 32) | to as u64));
                1 + z % spread
            }
            DelayModel::Straggler { node, slow } => {
                if from == node {
                    slow.max(1)
                } else {
                    1
                }
            }
            DelayModel::Burst { period, width, extra } => {
                if round % period.max(1) < width {
                    1 + extra
                } else {
                    1
                }
            }
            DelayModel::StragglerRecovers { node, slow, until } => {
                if from == node && round < until {
                    slow.max(1)
                } else {
                    1
                }
            }
        }
    }

    /// The worst-case per-hop delay this model can produce — the
    /// "declared delay bound" that [`crate::TransportCfg::for_delay_bound`]
    /// derives timeouts from.
    #[must_use]
    pub fn bound(&self) -> u64 {
        match *self {
            DelayModel::Unit => 1,
            DelayModel::UniformRandom { max } => max.max(1),
            DelayModel::LinkSkew { spread } => spread.max(1),
            DelayModel::Straggler { slow, .. } => slow.max(1),
            DelayModel::Burst { extra, .. } => 1 + extra,
            DelayModel::StragglerRecovers { slow, .. } => slow.max(1),
        }
    }
}

/// Configuration of a [`crate::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// The communication model.
    pub model: Model,
    /// Round-cost accounting.
    pub cost: CostModel,
    /// Oversize-message policy.
    pub violation: ViolationPolicy,
    /// Master seed; all per-node randomness derives from it.
    pub seed: u64,
    /// Abort a run after this many rounds (guards non-terminating
    /// protocols).
    pub max_rounds: usize,
    /// If set, end the run successfully once this many consecutive
    /// rounds deliver no messages. Only sound for protocols whose state
    /// changes are message-driven (their `on_round` is a no-op on an
    /// empty inbox) — e.g. the auction of `dam-core`.
    pub quiescence: Option<usize>,
    /// Worker threads for [`crate::Network::execute`]: `0` or `1` runs
    /// sequentially, `t > 1` shards the nodes over `t` workers. Results
    /// are bit-identical either way (the differential suite checks).
    pub threads: usize,
    /// Which engine executes the run (see [`Backend`]). For backwards
    /// compatibility, `Sequential` with `threads > 1` still selects the
    /// sharded engine — see [`SimConfig::effective_backend`].
    pub backend: Backend,
    /// Per-link latency model under [`Backend::Async`]; ignored by the
    /// synchronous engines.
    pub delay: DelayModel,
    /// Asynchronous patience budget: if set, a node that has waited
    /// `patience` virtual time units for a round's messages force-advances
    /// and treats the missing slots as empty (late frames are dropped).
    /// This trades bit-identity for bounded progress under unbounded
    /// delay — it is the mechanism the timing adversary attacks. `None`
    /// (the default) waits indefinitely and preserves bit-identity.
    pub patience: Option<u64>,
}

impl SimConfig {
    /// LOCAL-model configuration with defaults (seed 0, 1M round guard).
    #[must_use]
    pub fn local() -> SimConfig {
        SimConfig {
            model: Model::Local,
            cost: CostModel::Unit,
            violation: ViolationPolicy::Record,
            seed: 0,
            max_rounds: 1_000_000,
            quiescence: None,
            threads: 1,
            backend: Backend::Sequential,
            delay: DelayModel::Unit,
            patience: None,
        }
    }

    /// CONGEST configuration with an explicit bit budget.
    #[must_use]
    pub fn congest(bits: usize) -> SimConfig {
        SimConfig { model: Model::Congest { bits }, ..SimConfig::local() }
    }

    /// CONGEST(`words · log n`) for an `n`-node network.
    #[must_use]
    pub fn congest_for(n: usize, words: usize) -> SimConfig {
        SimConfig { model: Model::congest_for(n, words), ..SimConfig::local() }
    }

    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> SimConfig {
        self.seed = seed;
        self
    }

    /// Sets the round guard.
    #[must_use]
    pub fn max_rounds(mut self, rounds: usize) -> SimConfig {
        self.max_rounds = rounds;
        self
    }

    /// Sets the round-cost model.
    #[must_use]
    pub fn cost(mut self, cost: CostModel) -> SimConfig {
        self.cost = cost;
        self
    }

    /// Sets the oversize-message policy.
    #[must_use]
    pub fn violation(mut self, violation: ViolationPolicy) -> SimConfig {
        self.violation = violation;
        self
    }

    /// Ends runs after `rounds` consecutive message-free rounds (see
    /// [`SimConfig::quiescence`]).
    #[must_use]
    pub fn quiesce_after(mut self, rounds: usize) -> SimConfig {
        self.quiescence = Some(rounds);
        self
    }

    /// Sets the worker-thread count used by [`crate::Network::execute`]
    /// (see [`SimConfig::threads`]).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> SimConfig {
        self.threads = threads;
        self
    }

    /// Selects the execution engine (see [`Backend`]).
    #[must_use]
    pub fn backend(mut self, backend: Backend) -> SimConfig {
        self.backend = backend;
        self
    }

    /// Sets the asynchronous per-link latency model (see
    /// [`SimConfig::delay`]).
    #[must_use]
    pub fn delay(mut self, delay: DelayModel) -> SimConfig {
        self.delay = delay;
        self
    }

    /// Sets the asynchronous patience budget (see
    /// [`SimConfig::patience`]).
    #[must_use]
    pub fn patience(mut self, units: u64) -> SimConfig {
        self.patience = Some(units);
        self
    }

    /// The engine that will actually run: an explicit [`Backend::Async`]
    /// or [`Backend::Sharded`] wins; a default `Sequential` backend with
    /// `threads > 1` keeps selecting the sharded engine (the pre-backend
    /// contract of [`SimConfig::threads`]).
    #[must_use]
    pub fn effective_backend(&self) -> Backend {
        match self.backend {
            Backend::Async => Backend::Async,
            Backend::Sharded => Backend::Sharded,
            Backend::Sequential if self.threads > 1 => Backend::Sharded,
            Backend::Sequential => Backend::Sequential,
        }
    }
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig::local()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn congest_budget_scales_logarithmically() {
        assert_eq!(Model::congest_for(1024, 1).budget(), Some(10));
        assert_eq!(Model::congest_for(1024, 4).budget(), Some(40));
        assert_eq!(Model::Local.budget(), None);
    }

    #[test]
    fn builder_chains() {
        let c = SimConfig::congest(32).seed(9).max_rounds(50).cost(CostModel::Pipelined);
        assert_eq!(c.model, Model::Congest { bits: 32 });
        assert_eq!(c.seed, 9);
        assert_eq!(c.max_rounds, 50);
        assert_eq!(c.cost, CostModel::Pipelined);
        let c = c.backend(Backend::Async).delay(DelayModel::LinkSkew { spread: 3 }).patience(40);
        assert_eq!(c.backend, Backend::Async);
        assert_eq!(c.delay, DelayModel::LinkSkew { spread: 3 });
        assert_eq!(c.patience, Some(40));
    }

    #[test]
    fn effective_backend_keeps_threads_contract() {
        assert_eq!(SimConfig::local().effective_backend(), Backend::Sequential);
        assert_eq!(SimConfig::local().threads(4).effective_backend(), Backend::Sharded);
        assert_eq!(
            SimConfig::local().backend(Backend::Sharded).effective_backend(),
            Backend::Sharded
        );
        // An explicit Async wins even with threads set.
        assert_eq!(
            SimConfig::local().threads(4).backend(Backend::Async).effective_backend(),
            Backend::Async
        );
    }

    #[test]
    fn delays_are_pure_keyed_functions() {
        let m = DelayModel::UniformRandom { max: 5 };
        let d = m.delay(1, 0, 3, 2, 7);
        assert_eq!(d, m.delay(1, 0, 3, 2, 7), "deterministic");
        assert!((1..=5).contains(&d));
        // Every coordinate matters for the uniform model (with high
        // probability; these particular points differ).
        let variants = [m.delay(2, 0, 3, 2, 7), m.delay(1, 1, 3, 2, 7), m.delay(1, 0, 4, 2, 7)];
        assert!(variants.iter().any(|&v| v != d) || d >= 1);
    }

    #[test]
    fn link_skew_is_direction_asymmetric_somewhere() {
        let m = DelayModel::LinkSkew { spread: 8 };
        // Round-independent per direction …
        assert_eq!(m.delay(1, 0, 0, 2, 7), m.delay(1, 0, 9, 2, 7));
        // … and asymmetric for at least one of a handful of pairs.
        let asym = (0..16usize).any(|v| m.delay(1, 0, 0, v, v + 1) != m.delay(1, 0, 0, v + 1, v));
        assert!(asym, "LinkSkew should skew some direction pair");
    }

    #[test]
    fn straggler_and_burst_shapes() {
        let s = DelayModel::Straggler { node: 3, slow: 6 };
        assert_eq!(s.delay(1, 0, 0, 3, 9), 6);
        assert_eq!(s.delay(1, 0, 0, 9, 3), 1);
        assert_eq!(s.bound(), 6);
        let b = DelayModel::Burst { period: 4, width: 2, extra: 5 };
        assert_eq!(b.delay(1, 0, 0, 0, 1), 6);
        assert_eq!(b.delay(1, 0, 1, 0, 1), 6);
        assert_eq!(b.delay(1, 0, 2, 0, 1), 1);
        assert_eq!(b.bound(), 6);
        // Degenerate parameters clamp instead of panicking.
        assert_eq!(DelayModel::UniformRandom { max: 0 }.delay(1, 0, 0, 0, 1), 1);
        assert_eq!(DelayModel::Burst { period: 0, width: 1, extra: 2 }.delay(1, 0, 5, 0, 1), 3);
        assert_eq!(DelayModel::Straggler { node: 0, slow: 0 }.bound(), 1);
    }
}
