//! Self-tuning transport: a closed-loop controller over [`TransportCfg`].
//!
//! The static transport pays for its worst case twice over: timers
//! derived for a loss burst or a delay spike keep running long after
//! conditions recover, and timers tuned for the good case convict live
//! nodes the moment conditions drift. [`AdaptivePolicy`] closes the
//! loop: each node observes its **own** per-epoch transport counters
//! (retransmissions sent, peers suspected, frames rejected — the same
//! counters the telemetry stream exports) and recomputes its
//! [`TransportCfg`] at deterministic epoch boundaries.
//!
//! The control law is AIMD over a discrete escalation ladder:
//!
//! * **Multiplicative raise.** A spike (epoch retransmissions at or
//!   above [`AdaptivePolicy::spike_retx`], or any suspicion) doubles
//!   the escalation level, up to [`AdaptivePolicy::ceiling`]. Level
//!   `k` stretches the floor's *patience* timers — `backoff_base`,
//!   `backoff_max`, `suspicion` — by `k`, the same shape
//!   [`TransportCfg::for_delay_bound`] gives those timers for a bound
//!   `k` times larger. The heartbeat cadence stays at the floor:
//!   escalation is local, and a node that raised its own level must
//!   not fall quiet toward peers whose suspicion windows are still
//!   tight. Patience scales; talkativeness does not.
//! * **Additive decay.** A quiet epoch steps the level down by one,
//!   back toward the floor — after a transient the transport converges
//!   to tight timeouts again (the Even–Medina–Ron self-stabilization
//!   framing).
//! * **Strike ratchet.** Corruption evidence (any rejected frame in the
//!   epoch) doubles `max_strikes` up to [`AdaptivePolicy::strikes_cap`]
//!   and never decays: under a corruption storm the quarantine budget
//!   widens so honest peers behind a dirty channel are not convicted,
//!   and a widened budget stays safe when the storm passes.
//!
//! Determinism: the observations are node-local counters of a
//! deterministic run and the law is a pure function of them, so a run
//! is bit-reproducible for (seed, plan, policy) on every backend —
//! the same contract the static transport has.

use crate::transport::TransportCfg;

/// What one node observed over one control epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EpochObservation {
    /// Retransmissions this node sent during the epoch.
    pub retransmissions: u64,
    /// Peers this node newly suspected during the epoch.
    pub suspected: u64,
    /// Frames this node rejected (integrity strikes) during the epoch.
    pub rejected: u64,
}

impl EpochObservation {
    /// Whether the epoch shows congestion/failure pressure (the
    /// multiplicative-raise trigger).
    #[must_use]
    pub fn spiking(&self, spike_retx: u64) -> bool {
        self.retransmissions >= spike_retx || self.suspected > 0
    }
}

/// The self-tuning policy: floor configuration plus the AIMD constants.
///
/// Pure data, `Copy`, and seed-free — two nodes with identical floors
/// and identical observations always compute identical configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptivePolicy {
    /// The tightest configuration the controller will run: the decay
    /// target, and the level-1 rung of the escalation ladder.
    pub floor: TransportCfg,
    /// Rounds per control epoch. Reconfiguration happens only at
    /// multiples of this, so adaptation is deterministic in the round
    /// number. Must be at least 1.
    pub epoch: u64,
    /// Highest escalation level (the ladder is `1..=ceiling`).
    pub ceiling: u64,
    /// Epoch retransmission count that counts as a spike.
    pub spike_retx: u64,
    /// Upper bound of the `max_strikes` ratchet.
    pub strikes_cap: usize,
}

impl AdaptivePolicy {
    /// The default controller over a given floor configuration: epoch 4
    /// (two doublings fit inside a default suspicion window of 15
    /// rounds, so patience outruns conviction, and decay releases a
    /// passed storm within a few epochs), ceiling 8 (the raised timers
    /// never exceed a static `for_delay_bound(8)` derivation), spike
    /// threshold 1 (any retransmission in an epoch is storm evidence —
    /// the fault-free steady state sends none, so the trigger is still
    /// silent in quiet runs), strike ratchet capped at 64.
    #[must_use]
    pub fn for_floor(floor: TransportCfg) -> AdaptivePolicy {
        AdaptivePolicy { floor, epoch: 4, ceiling: 8, spike_retx: 1, strikes_cap: 64 }
    }

    /// Controller whose floor is the static derivation for a declared
    /// delay bound: adaptation then explores only configurations at or
    /// above what the bound already justifies.
    #[must_use]
    pub fn for_delay_bound(bound: u64) -> AdaptivePolicy {
        AdaptivePolicy::for_floor(TransportCfg::for_delay_bound(bound))
    }

    /// The next escalation level after observing one epoch: double on a
    /// spike (clamped to the ceiling), otherwise decay by one (clamped
    /// to the floor level 1).
    #[must_use]
    pub fn next_level(&self, level: u64, obs: &EpochObservation) -> u64 {
        let level = level.clamp(1, self.ceiling);
        if obs.spiking(self.spike_retx) {
            (level.saturating_mul(2)).min(self.ceiling)
        } else {
            (level - 1).max(1)
        }
    }

    /// The next `max_strikes` budget: doubled (up to the cap) on any
    /// rejected frame, otherwise unchanged — the ratchet never decays.
    #[must_use]
    pub fn next_max_strikes(&self, max_strikes: usize, obs: &EpochObservation) -> usize {
        if obs.rejected > 0 {
            max_strikes.saturating_mul(2).min(self.strikes_cap.max(self.floor.max_strikes))
        } else {
            max_strikes
        }
    }

    /// The configuration at a given escalation level and strike budget:
    /// the floor's patience timers (`backoff_base`, `backoff_max`,
    /// `suspicion`) stretched by `level`, everything else — window,
    /// heartbeat cadence, linger — kept at the floor, `max_strikes` as
    /// given. Heartbeats deliberately do not stretch: escalation is a
    /// node-local decision, and slowing its own heartbeats would make
    /// an escalated node look dead to peers still running tight
    /// suspicion windows. Any configuration this returns passes
    /// [`TransportCfg::validate`] whenever the floor does (the backoff
    /// pair scales uniformly and `suspicion` only grows).
    #[must_use]
    pub fn cfg_at(&self, level: u64, max_strikes: usize) -> TransportCfg {
        let level = level.clamp(1, self.ceiling).max(1) as usize;
        TransportCfg {
            window: self.floor.window,
            backoff_base: self.floor.backoff_base.saturating_mul(level),
            backoff_max: self.floor.backoff_max.saturating_mul(level),
            hb_interval: self.floor.hb_interval,
            suspicion: self.floor.suspicion.saturating_mul(level),
            linger: self.floor.linger,
            idle_after: self.floor.idle_after,
            max_strikes,
        }
    }
}

impl Default for AdaptivePolicy {
    fn default() -> AdaptivePolicy {
        AdaptivePolicy::for_floor(TransportCfg::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_one_reproduces_the_floor() {
        let policy = AdaptivePolicy::for_floor(TransportCfg::default());
        assert_eq!(policy.cfg_at(1, policy.floor.max_strikes), TransportCfg::default());
    }

    #[test]
    fn raise_is_multiplicative_and_capped() {
        let policy = AdaptivePolicy::for_floor(TransportCfg::default());
        let spike = EpochObservation { retransmissions: 10, ..EpochObservation::default() };
        assert_eq!(policy.next_level(1, &spike), 2);
        assert_eq!(policy.next_level(2, &spike), 4);
        assert_eq!(policy.next_level(4, &spike), 8);
        assert_eq!(policy.next_level(8, &spike), 8, "ceiling caps the raise");
        let suspicion = EpochObservation { suspected: 1, ..EpochObservation::default() };
        assert_eq!(policy.next_level(1, &suspicion), 2, "suspicion alone is a spike");
    }

    #[test]
    fn decay_is_additive_and_floored() {
        let policy = AdaptivePolicy::for_floor(TransportCfg::default());
        let quiet = EpochObservation::default();
        assert_eq!(policy.next_level(8, &quiet), 7);
        assert_eq!(policy.next_level(2, &quiet), 1);
        assert_eq!(policy.next_level(1, &quiet), 1, "the floor is absorbing when quiet");
    }

    #[test]
    fn quiet_epoch_below_spike_threshold_decays() {
        let policy =
            AdaptivePolicy { spike_retx: 2, ..AdaptivePolicy::for_floor(TransportCfg::default()) };
        let mild = EpochObservation { retransmissions: 1, ..EpochObservation::default() };
        assert!(!mild.spiking(policy.spike_retx));
        assert_eq!(policy.next_level(4, &mild), 3);
    }

    #[test]
    fn strike_ratchet_doubles_and_never_decays() {
        let policy = AdaptivePolicy::for_floor(TransportCfg::default());
        let dirty = EpochObservation { rejected: 3, ..EpochObservation::default() };
        let quiet = EpochObservation::default();
        let base = policy.floor.max_strikes;
        let up = policy.next_max_strikes(base, &dirty);
        assert_eq!(up, base * 2);
        assert_eq!(policy.next_max_strikes(up, &quiet), up, "ratchet holds when quiet");
        let mut s = base;
        for _ in 0..10 {
            s = policy.next_max_strikes(s, &dirty);
        }
        assert_eq!(s, policy.strikes_cap, "ratchet saturates at the cap");
    }

    #[test]
    fn scaled_configs_stretch_patience_but_not_cadence() {
        // Level k stretches the patience timers by k (the shape the
        // static delay-bound derivation gives them), while the
        // heartbeat cadence stays pinned to the floor so an escalated
        // node never falls quiet toward tight-windowed peers.
        let policy = AdaptivePolicy::for_floor(TransportCfg::default());
        for level in 1..=8u64 {
            let cfg = policy.cfg_at(level, policy.floor.max_strikes);
            assert_eq!(cfg.backoff_base, TransportCfg::default().backoff_base * level as usize);
            assert_eq!(cfg.suspicion, TransportCfg::default().suspicion * level as usize);
            assert_eq!(cfg.hb_interval, TransportCfg::default().hb_interval, "cadence is pinned");
            assert_eq!(cfg.window, TransportCfg::default().window, "window never scales");
            cfg.validate().expect("every ladder rung is a valid configuration");
        }
    }

    #[test]
    fn policy_is_a_pure_function_of_observations() {
        let policy = AdaptivePolicy::default();
        let obs = EpochObservation { retransmissions: 5, suspected: 1, rejected: 2 };
        assert_eq!(policy.next_level(3, &obs), policy.next_level(3, &obs));
        assert_eq!(policy.cfg_at(4, 16), policy.cfg_at(4, 16));
    }
}
