//! Execution tracing: a per-event record of a protocol run.
//!
//! Traces are for debugging protocols and for teaching: they show who
//! sent what, how wide it was, and when each node left the computation.
//! Collected by [`crate::Network::run_traced`]; rendering is plain text.

use std::fmt;

use dam_graph::NodeId;

use crate::message::CorruptKind;
use crate::model::Model;
use crate::node::Port;

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message crossed an edge.
    Send {
        /// The round in which it was sent.
        round: usize,
        /// Sender.
        from: NodeId,
        /// Sender's port.
        port: Port,
        /// Receiver.
        to: NodeId,
        /// Width in bits.
        bits: usize,
        /// Whether it exceeded the CONGEST budget.
        oversize: bool,
    },
    /// A node halted.
    Halt {
        /// The round of the halt.
        round: usize,
        /// The node.
        node: NodeId,
    },
    /// The engine injected a fault (only under
    /// [`crate::Network::run_faulty`] with a non-empty plan).
    Fault {
        /// The round of the injection.
        round: usize,
        /// What was injected.
        kind: FaultKind,
        /// The affected node (the sender, for message-level faults).
        node: NodeId,
        /// The intended receiver, for message-level faults.
        peer: Option<NodeId>,
    },
    /// The engine applied a topology event (only under
    /// [`crate::Network::run_churned`] with a non-empty plan).
    Churn {
        /// The round at whose start the event was applied.
        round: usize,
        /// What changed.
        kind: ChurnKind,
    },
}

/// The kind of an applied topology event (see [`TraceEvent::Churn`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnKind {
    /// An edge of the universe graph came up (insert / link restore).
    EdgeUp {
        /// The edge id in the universe graph.
        edge: usize,
    },
    /// An edge went down (delete / link cut).
    EdgeDown {
        /// The edge id in the universe graph.
        edge: usize,
    },
    /// An absent node joined with fresh ports and empty registers.
    Join {
        /// The joining node.
        node: NodeId,
    },
    /// A node left permanently (never returns this run).
    Leave {
        /// The leaving node.
        node: NodeId,
    },
}

/// The kind of an injected fault (see [`TraceEvent::Fault`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A message was dropped by the lossy channel.
    Loss,
    /// A message was delivered twice (the extra copy one round late).
    Duplicate,
    /// A message was delayed by `delay` extra rounds.
    Reorder {
        /// Extra rounds of delay beyond normal delivery.
        delay: usize,
    },
    /// A message was dropped because it crossed an active partition.
    Partition,
    /// A node crash-stopped.
    Crash,
    /// A crashed node rebooted with wiped state.
    Recover,
    /// A message was corrupted in transit by the lossy channel; the
    /// receiver sees the damaged value (or nothing, if the damage made
    /// the frame undecodable).
    Corrupt {
        /// The shape of the damage.
        kind: CorruptKind,
    },
    /// A Byzantine sender tampered with its own outgoing message —
    /// equivocation: different ports see mutually inconsistent traffic.
    Equivocate {
        /// The shape of the tampering.
        kind: CorruptKind,
    },
}

impl TraceEvent {
    /// The round the event belongs to.
    #[must_use]
    pub fn round(&self) -> usize {
        match *self {
            TraceEvent::Send { round, .. }
            | TraceEvent::Halt { round, .. }
            | TraceEvent::Fault { round, .. }
            | TraceEvent::Churn { round, .. } => round,
        }
    }
}

/// One message that exceeded the CONGEST bit budget, as located by
/// [`Trace::check_bandwidth`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandwidthViolation {
    /// The round of the offending send.
    pub round: usize,
    /// The sender.
    pub from: NodeId,
    /// The sender's port.
    pub port: Port,
    /// The receiver.
    pub to: NodeId,
    /// The offending width in bits.
    pub bits: usize,
}

/// The verdict of [`Trace::check_bandwidth`]: did every traced message
/// fit the model's per-edge bit budget (Lemma 3.9's `O(log n)` width for
/// CONGEST runs)?
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bandwidth {
    /// The run used the LOCAL model — message width is unbounded by
    /// definition, so there is nothing to check. The run is *exempt*,
    /// not conformant; CI reporting keeps the two apart.
    Exempt {
        /// Sends observed (none of them checked).
        sends: usize,
    },
    /// The run used CONGEST(`budget`); every traced send was checked.
    Checked {
        /// The per-message bit budget.
        budget: usize,
        /// Sends checked.
        sends: usize,
        /// Widest message observed (0 if none).
        widest: usize,
        /// Every send wider than the budget, in trace order.
        violations: Vec<BandwidthViolation>,
    },
}

impl Bandwidth {
    /// `true` iff the trace was checked and every message fit the
    /// budget. Exempt (LOCAL) runs return `false` — use
    /// [`Bandwidth::is_exempt`] to tell them apart from failures.
    #[must_use]
    pub fn conforms(&self) -> bool {
        match self {
            Bandwidth::Exempt { .. } => false,
            Bandwidth::Checked { violations, .. } => violations.is_empty(),
        }
    }

    /// `true` iff the run was LOCAL and therefore exempt from the check.
    #[must_use]
    pub fn is_exempt(&self) -> bool {
        matches!(self, Bandwidth::Exempt { .. })
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bandwidth::Exempt { sends } => {
                write!(f, "exempt (LOCAL model, {sends} sends unchecked)")
            }
            Bandwidth::Checked { budget, sends, widest, violations } => write!(
                f,
                "{} ({sends} sends vs budget {budget}, widest {widest}, {} violations)",
                if violations.is_empty() { "conformant" } else { "VIOLATED" },
                violations.len()
            ),
        }
    }
}

/// A full execution trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Trace {
        Trace::default()
    }

    pub(crate) fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// All events in order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of traced events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was traced.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one round.
    pub fn round(&self, round: usize) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter().filter(move |e| e.round() == round)
    }

    /// All sends originating at `node`.
    pub fn sends_of(&self, node: NodeId) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events
            .iter()
            .filter(move |e| matches!(e, TraceEvent::Send { from, .. } if *from == node))
    }

    /// All injected-fault events, in order.
    pub fn faults(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter().filter(|e| matches!(e, TraceEvent::Fault { .. }))
    }

    /// All applied topology events, in order.
    pub fn churns(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter().filter(|e| matches!(e, TraceEvent::Churn { .. }))
    }

    /// The round in which `node` halted, if traced.
    #[must_use]
    pub fn halt_round(&self, node: NodeId) -> Option<usize> {
        self.events.iter().find_map(|e| match e {
            TraceEvent::Halt { round, node: n } if *n == node => Some(*round),
            _ => None,
        })
    }

    /// Audits every traced send against `model`'s per-message bit
    /// budget — the conformance check behind the paper's CONGEST claims
    /// (Lemma 3.9 charges `⌈b/B⌉` rounds precisely because each frame is
    /// at most `B` bits wide). LOCAL runs are flagged
    /// [`Bandwidth::Exempt`] rather than silently passed.
    ///
    /// The engine already stamps each send's `oversize` bit against the
    /// *configured* model; this validator re-derives the verdict from
    /// widths alone, so it can also audit a trace against a model other
    /// than the one it ran under (e.g. "would this LOCAL run have fit
    /// CONGEST(4 log n)?").
    #[must_use]
    pub fn check_bandwidth(&self, model: Model) -> Bandwidth {
        let mut sends = 0usize;
        let mut widest = 0usize;
        let mut violations = Vec::new();
        for e in &self.events {
            if let TraceEvent::Send { round, from, port, to, bits, .. } = *e {
                sends += 1;
                widest = widest.max(bits);
                if let Model::Congest { bits: budget } = model {
                    if bits > budget {
                        violations.push(BandwidthViolation { round, from, port, to, bits });
                    }
                }
            }
        }
        match model {
            Model::Local => Bandwidth::Exempt { sends },
            Model::Congest { bits: budget } => {
                Bandwidth::Checked { budget, sends, widest, violations }
            }
        }
    }

    /// A compact per-round summary.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let last_round = self.events.iter().map(TraceEvent::round).max().unwrap_or(0);
        for r in 0..=last_round {
            let sends: Vec<&TraceEvent> =
                self.round(r).filter(|e| matches!(e, TraceEvent::Send { .. })).collect();
            let halts = self.round(r).filter(|e| matches!(e, TraceEvent::Halt { .. })).count();
            let faults = self.round(r).filter(|e| matches!(e, TraceEvent::Fault { .. })).count();
            let churns = self.round(r).filter(|e| matches!(e, TraceEvent::Churn { .. })).count();
            let bits: usize = sends
                .iter()
                .map(|e| if let TraceEvent::Send { bits, .. } = e { *bits } else { 0 })
                .sum();
            let _ = writeln!(
                out,
                "round {r:>4}: {:>5} msgs, {:>8} bits, {halts:>4} halts, {faults:>4} faults, {churns:>4} churns",
                sends.len(),
                bits
            );
        }
        out
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_and_summary() {
        let mut t = Trace::new();
        t.record(TraceEvent::Send { round: 0, from: 0, port: 0, to: 1, bits: 8, oversize: false });
        t.record(TraceEvent::Send { round: 1, from: 1, port: 1, to: 2, bits: 16, oversize: true });
        t.record(TraceEvent::Halt { round: 1, node: 0 });
        assert_eq!(t.len(), 3);
        assert_eq!(t.round(1).count(), 2);
        assert_eq!(t.sends_of(1).count(), 1);
        assert_eq!(t.halt_round(0), Some(1));
        assert_eq!(t.halt_round(2), None);
        let s = t.summary();
        assert!(s.contains("round    0:     1 msgs"));
        assert!(!format!("{t}").is_empty());
    }

    #[test]
    fn bandwidth_check_flags_each_oversize_send() {
        let mut t = Trace::new();
        t.record(TraceEvent::Send { round: 0, from: 0, port: 0, to: 1, bits: 8, oversize: false });
        t.record(TraceEvent::Send { round: 1, from: 1, port: 1, to: 2, bits: 40, oversize: false });
        t.record(TraceEvent::Halt { round: 1, node: 0 });
        let ok = t.check_bandwidth(Model::Congest { bits: 64 });
        assert!(ok.conforms() && !ok.is_exempt());
        assert_eq!(ok, Bandwidth::Checked { budget: 64, sends: 2, widest: 40, violations: vec![] });
        let bad = t.check_bandwidth(Model::Congest { bits: 16 });
        assert!(!bad.conforms());
        assert_eq!(
            bad,
            Bandwidth::Checked {
                budget: 16,
                sends: 2,
                widest: 40,
                violations: vec![BandwidthViolation {
                    round: 1,
                    from: 1,
                    port: 1,
                    to: 2,
                    bits: 40
                }],
            }
        );
        assert!(format!("{bad}").contains("VIOLATED"));
    }

    #[test]
    fn local_runs_are_exempt_not_conformant() {
        let mut t = Trace::new();
        t.record(TraceEvent::Send {
            round: 0,
            from: 0,
            port: 0,
            to: 1,
            bits: 9999,
            oversize: false,
        });
        let v = t.check_bandwidth(Model::Local);
        assert!(v.is_exempt() && !v.conforms());
        assert_eq!(v, Bandwidth::Exempt { sends: 1 });
        assert!(format!("{v}").contains("exempt"));
    }
}
