#![warn(missing_docs)]

//! Synchronous message-passing network simulator for the LOCAL and
//! CONGEST models.
//!
//! This crate implements the computational model of §2 of *“Improved
//! Distributed Approximate Matching”*: a synchronous network whose
//! topology **is** the input graph. In each round every processor sends
//! (possibly different) messages to its neighbours, receives the messages
//! sent to it in the same round, and performs local computation.
//!
//! * A distributed algorithm is a [`Protocol`]: a per-node state machine
//!   driven by [`Protocol::on_round`].
//! * A [`Network`] executes protocols over a [`dam_graph::Graph`]
//!   topology, either sequentially ([`Network::run`]) or on multiple
//!   threads ([`Network::run_parallel`]); both are deterministic given the
//!   configured seed and produce identical results.
//! * Messages implement [`BitSize`]; the engine accounts **bits per
//!   message**, distinguishing the LOCAL model (unbounded messages,
//!   Lemma 3.4's `O((|V|+|E|) log n)` floods) from CONGEST(`B`)
//!   (`O(log n)`-bit messages, Theorem 3.10). Oversize messages under
//!   CONGEST are recorded as violations or cause a panic, per
//!   [`ViolationPolicy`].
//! * The [`CostModel`] charges rounds either 1:1 or with the paper's
//!   pipelining accounting (Lemma 3.9): a round in which some link carried
//!   a `b`-bit message costs `⌈b / B⌉` charged rounds.
//!
//! # Example: distributed flood-max
//!
//! ```
//! use dam_congest::{BitSize, Context, Network, Protocol, SimConfig};
//! use dam_graph::generators;
//!
//! /// Every node learns the maximum id in its connected component.
//! struct FloodMax { best: usize }
//!
//! impl Protocol for FloodMax {
//!     type Msg = usize;
//!     type Output = usize;
//!     fn on_start(&mut self, ctx: &mut Context<usize>) {
//!         self.best = ctx.id();
//!         ctx.broadcast(self.best);
//!     }
//!     fn on_round(&mut self, ctx: &mut Context<usize>, inbox: &[(usize, usize)]) {
//!         let incoming = inbox.iter().map(|&(_, v)| v).max();
//!         match incoming {
//!             Some(v) if v > self.best => {
//!                 self.best = v;
//!                 ctx.broadcast(self.best);
//!             }
//!             _ => ctx.halt(),
//!         }
//!     }
//!     fn into_output(self) -> usize { self.best }
//! }
//!
//! let g = generators::cycle(8);
//! let mut net = Network::new(&g, SimConfig::local().seed(1));
//! let out = net.run(|_, _| FloodMax { best: 0 }).unwrap();
//! assert!(out.outputs.iter().all(|&b| b == 7));
//! ```

pub mod adaptive;
pub mod asynchrony;
pub mod engine;
pub mod error;
pub mod maintenance;
pub mod message;
pub mod model;
pub mod node;
pub mod parallel;
pub mod rng;
pub mod stats;
pub mod telemetry;
pub mod trace;
pub mod transport;

pub use adaptive::{AdaptivePolicy, EpochObservation};
pub use asynchrony::{AsyncInfo, AsyncNetwork, AsyncStats};
pub use engine::{
    ChurnEvent, ChurnPlan, FaultPlan, LinkFault, Network, Partition, RunOutcome, Squall,
};
pub use error::SimError;
pub use maintenance::{AsMaintenance, Maint};
pub use message::{BitSize, CorruptKind, MsgClass};
pub use model::{Backend, CostModel, DelayModel, Model, SimConfig, ViolationPolicy};
pub use node::{Context, Port, PortSession, Protocol, SessionState};
pub use stats::{RunStats, TotalStats};
pub use telemetry::{RecordingSink, RoundSample, SinkHandle, StatsSink};
pub use trace::{Bandwidth, BandwidthViolation, ChurnKind, FaultKind, Trace, TraceEvent};
pub use transport::{Frame, FrameKind, Resilient, TransportCfg};
