//! A resilient transport: reliable lock-step execution over faulty links.
//!
//! [`Resilient`] wraps any [`Protocol`] and re-creates the synchronous
//! abstraction the wrapped protocol was written for — every logical round's
//! messages are delivered exactly once, in order — on top of a network that
//! loses, duplicates and reorders frames and whose nodes crash (and even
//! reboot). It is the fault-tolerant sibling of the α-synchronizer in
//! [`crate::asynchrony`], built from classic mechanisms:
//!
//! - **Ack/retransmit with exponential backoff**: each inner round is one
//!   *slot*; an unacknowledged slot is retransmitted (backoff doubling
//!   from [`TransportCfg::backoff_base`] up to
//!   [`TransportCfg::backoff_max`]) until the peer's cumulative ack covers
//!   it. Fault-free, a slot is acknowledged before its first retransmit
//!   timer fires, so no duplicate traffic is generated.
//! - **Sequence numbers**: frames carry their slot index; receivers buffer
//!   out-of-order slots and drop duplicates, so duplication and reordering
//!   are absorbed exactly.
//! - **Heartbeat failure detection**: a node expecting progress on a port
//!   that sees none for [`TransportCfg::suspicion`] consecutive engine
//!   rounds declares the peer dead and tells the wrapped protocol via
//!   [`Protocol::on_peer_down`]. Ack-only control frames double as
//!   heartbeats, sent at least every [`TransportCfg::hb_interval`] rounds
//!   while there is outstanding work, so silence means death rather than
//!   congestion. (Liveness suffices as the suspicion signal because
//!   reboots are unmasked separately, by the nonce below.)
//! - **Incarnation detection and revival**: every boot draws a random
//!   nonce carried in every frame, and every frame also echoes the boot
//!   nonce of the incarnation it is addressed to (when known). A
//!   crash-*recovered* node reboots with a fresh nonce, so surviving
//!   peers recognise the new incarnation, report the port down
//!   ([`Protocol::on_peer_down`]) — and then *revive* it: the port's
//!   session state is reset, slot numbering restarts from zero, and the
//!   wrapped protocol is told the (new) peer is reachable via
//!   [`Protocol::on_peer_up`]. A port already declared dead by suspicion
//!   is likewise revived when a *fresh-session* frame (slot 0, ack 0)
//!   from a new incarnation arrives; suspicion of a peer that never
//!   reboots is permanent within its incarnation. A revived session
//!   opens with an immediate *empty catch-up slot*: the fresh
//!   incarnation's first consume is served without waiting on our own
//!   inner advancement, which can transitively depend (through other
//!   blocked neighbours) on the fresh node itself — a cyclic pipeline
//!   deadlock otherwise. Revival only happens
//!   while our own inner protocol is still running: a node that has
//!   finished quarantines fresh incarnations (drops their frames
//!   unacknowledged), so the newcomer suspects it and stops waiting —
//!   the termination guarantee below depends on this. The echoed
//!   destination nonce shuts out the classic half-open hazard: frames
//!   addressed to a previous incarnation of us are dropped before they
//!   can pollute the fresh session's sequence space.
//! - **Integrity validation and quarantine**: every frame carries a
//!   [checksum](Frame::sealed) over its header, verified *before* the
//!   frame can count as peer progress or touch session state. A frame
//!   that fails validation is rejected (counted in
//!   [`crate::RunStats::rejected`]) and strikes the link; after
//!   [`TransportCfg::max_strikes`] consecutive failures the port is
//!   *quarantined* — declared dead exactly like a suspected crash
//!   ([`crate::RunStats::quarantined`], [`Protocol::on_peer_down`]),
//!   because a link that keeps delivering garbage is indistinguishable
//!   from a Byzantine sender. Frames that pass the checksum but carry
//!   an impossible session claim (a reboot nonce without a fresh
//!   session opener, a destination nonce addressed to a previous
//!   incarnation of us) are likewise rejected, without striking: a
//!   single forged frame must not assassinate a live link. The checksum
//!   is a CRC stand-in — messages here are in-memory values, not byte
//!   strings, so it folds the header fields and the payload *width*
//!   rather than real wire bytes; semantic payload damage that keeps
//!   the envelope intact is deliberately out of transport scope and is
//!   caught end-to-end by certification (`dam_core::certify`) instead.
//!
//! Overhead accounting is explicit: first transmissions of payload-bearing
//! slots count as ordinary protocol messages, retransmissions count into
//! [`crate::RunStats::retransmissions`], and empty slot markers plus
//! control frames count into [`crate::RunStats::heartbeats`]
//! (via [`crate::MsgClass`]).
//!
//! Termination: a wrapped protocol that halts, halts here too — once its
//! final slot is acknowledged and each peer's final slot has been
//! consumed, plus a short [`TransportCfg::linger`] so trailing acks
//! drain. Message-driven protocols that never halt and rely on engine
//! quiescence instead are covered by [`TransportCfg::idle_after`]: a node
//! whose inner protocol neither sent nor received anything for that many
//! inner rounds declares itself finished. Idle detection is local, so
//! pick a margin comfortably above the protocol's quiet period (as with
//! engine quiescence itself). Either way every node eventually halts — a
//! stalled or already-halted peer is eventually declared dead by
//! suspicion, which unblocks anyone still waiting on it.

use std::collections::{BTreeMap, VecDeque};

use rand::rngs::StdRng;

use crate::adaptive::{AdaptivePolicy, EpochObservation};
use crate::error::SimError;
use crate::message::{BitSize, CorruptKind, MsgClass};
use crate::node::{Context, Port, PortSession, Protocol, SessionState};
use crate::rng;

/// Tuning knobs for [`Resilient`]. The defaults suit the fault rates used
/// in the experiments (per-message loss up to ~30%, a few percent of
/// nodes crashing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportCfg {
    /// How many inner slots may be in flight (unacknowledged) per port.
    /// 1 is strict stop-and-wait; the default 2 lets a node pipeline the
    /// next slot behind the (in-flight) ack of the previous one, which
    /// restores one engine round per inner round when fault-free.
    pub window: usize,
    /// Engine rounds before the first retransmission of a slot. Must
    /// exceed the ack round-trip (2 rounds: deliver, ack back) or
    /// fault-free runs retransmit spuriously.
    pub backoff_base: usize,
    /// Retransmission interval cap (the backoff doubles until here).
    /// Keep below `suspicion / 2` so a live-but-unlucky peer is not
    /// declared dead between retries.
    pub backoff_max: usize,
    /// Send a control frame on a port at least this often while there is
    /// outstanding work, so silence means death rather than idleness.
    pub hb_interval: usize,
    /// Engine rounds of silence on a port (no frame at all, while the
    /// peer still owes us traffic) before its peer is declared dead.
    /// Raise it to trade detection latency for false-positive margin:
    /// a false positive needs `suspicion / hb_interval` consecutive
    /// losses.
    pub suspicion: usize,
    /// Engine rounds to stay responsive (acking peer retransmissions)
    /// after finishing, before halting.
    pub linger: usize,
    /// If set, an inner protocol that neither sends nor receives for
    /// this many consecutive inner rounds is declared finished — the
    /// transport equivalent of quiescence detection
    /// ([`crate::SimConfig`]) for message-driven protocols that never
    /// call halt.
    pub idle_after: Option<usize>,
    /// Consecutive checksum failures on a port before its peer is
    /// quarantined (declared dead, [`Protocol::on_peer_down`]). Any
    /// valid frame resets the count, so honest links under random
    /// channel corruption survive: quarantine needs `max_strikes`
    /// failures *in a row*, evidence of a Byzantine sender or a
    /// hopeless link rather than bad luck.
    pub max_strikes: usize,
}

impl Default for TransportCfg {
    fn default() -> TransportCfg {
        TransportCfg {
            window: 2,
            backoff_base: 3,
            backoff_max: 6,
            hb_interval: 2,
            suspicion: 15,
            linger: 4,
            idle_after: None,
            max_strikes: 8,
        }
    }
}

impl TransportCfg {
    /// A configuration derived from a declared per-hop delay bound (in
    /// engine rounds / virtual time units) — the graceful-degradation
    /// rule for running the transport over the asynchronous backend
    /// ([`crate::Backend::Async`]).
    ///
    /// The default timers assume lockstep rounds: a frame is either
    /// delivered next round or lost. Under an adversarial timing model
    /// ([`crate::DelayModel`]) a slow-but-correct peer can stay silent
    /// for up to `bound` rounds of the receiver's clock, so every timer
    /// that converts silence into action scales with the bound:
    ///
    /// * `backoff_base` ≥ one ack round-trip at worst-case delay
    ///   (`2·bound + 1`), or fault-free runs retransmit spuriously;
    /// * `backoff_max` doubles that headroom;
    /// * `suspicion` and `hb_interval` both scale by `bound`, keeping
    ///   the false-positive margin `suspicion / hb_interval ≈ 7.5`
    ///   missed heartbeats constant at the stretched period;
    /// * `linger` covers one full retransmission interval so a finished
    ///   node still acks a straggling peer's last retries.
    ///
    /// `bound = 1` reproduces the defaults exactly. Pair it with
    /// [`crate::SimConfig::patience`] ≥ `2·bound` so the synchronizer
    /// itself never drops frames; then a slow-but-correct node is never
    /// suspected, let alone quarantined (experiment E18 measures this).
    #[must_use]
    pub fn for_delay_bound(bound: u64) -> TransportCfg {
        let b = usize::try_from(bound.max(1)).unwrap_or(usize::MAX / 64);
        let d = TransportCfg::default();
        TransportCfg {
            window: d.window,
            backoff_base: 2 * b + 1,
            backoff_max: 2 * (2 * b + 1),
            hb_interval: d.hb_interval * b,
            suspicion: d.suspicion * b,
            linger: d.linger * b,
            idle_after: None,
            max_strikes: d.max_strikes,
        }
    }

    /// Sets the suspicion threshold (builder style).
    #[must_use]
    pub fn suspicion(mut self, rounds: usize) -> TransportCfg {
        self.suspicion = rounds;
        self
    }

    /// Enables idle-based termination (builder style).
    #[must_use]
    pub fn idle_after(mut self, rounds: usize) -> TransportCfg {
        self.idle_after = Some(rounds);
        self
    }

    /// Sets the quarantine threshold (builder style).
    #[must_use]
    pub fn max_strikes(mut self, strikes: usize) -> TransportCfg {
        self.max_strikes = strikes;
        self
    }

    /// Rejects configurations whose timers cannot work, with a typed
    /// error naming the violation instead of the silent misbehavior they
    /// would cause at runtime:
    ///
    /// * `window == 0` — no slot may ever be in flight, so the very
    ///   first inner round deadlocks;
    /// * `backoff_base == 0` — a retransmission timer that is always
    ///   due floods every unacked slot every round;
    /// * `backoff_max < backoff_base` — the doubling schedule caps
    ///   *below* its own first interval, silently shortening retries;
    /// * `suspicion <= 2 * hb_interval` — fewer than two heartbeat
    ///   periods of margin, so one unlucky loss (or an ack consumed by
    ///   a single reorder) convicts a live peer.
    ///
    /// The default configuration and every [`for_delay_bound`]
    /// derivation pass. Drivers validate at the configuration boundary
    /// (`dam_core::runtime`, `dam-cli`); the transport itself keeps its
    /// construction-time assertions for direct embedders.
    ///
    /// [`for_delay_bound`]: TransportCfg::for_delay_bound
    ///
    /// # Errors
    /// Returns [`SimError::InvalidTransportCfg`] naming the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), SimError> {
        let fail = |reason: String| Err(SimError::InvalidTransportCfg { reason });
        if self.window == 0 {
            return fail("window must be at least 1 slot".to_string());
        }
        if self.backoff_base == 0 {
            return fail("backoff_base must be at least 1 round".to_string());
        }
        if self.backoff_max < self.backoff_base {
            return fail(format!(
                "backoff_max ({}) must be at least backoff_base ({})",
                self.backoff_max, self.backoff_base
            ));
        }
        if self.suspicion <= 2 * self.hb_interval {
            return fail(format!(
                "suspicion ({}) must exceed two heartbeat intervals (2 * {})",
                self.suspicion, self.hb_interval
            ));
        }
        Ok(())
    }
}

/// What a [`Frame`] carries besides its header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameKind<M> {
    /// Slot `seq` of the sender's inner protocol: the message its inner
    /// protocol addressed to this port in inner round `seq` (or `None`
    /// if it sent nothing), plus whether this is the sender's final slot.
    Data {
        /// Slot index (the sender's inner round).
        seq: u32,
        /// The inner message, if one was sent this slot.
        payload: Option<M>,
        /// No slots beyond this one exist.
        last: bool,
        /// This is a retransmission (accounting only).
        retx: bool,
    },
    /// Ack/heartbeat only.
    Control,
}

/// The wire format of [`Resilient`]: a small header (boot nonce +
/// destination nonce echo + cumulative ack) plus at most one
/// inner-protocol slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame<M> {
    /// Sender's per-boot random nonce; a change signals a reboot.
    pub boot: u16,
    /// The boot nonce of the peer incarnation this frame is addressed
    /// to, once learned (`None` while opening a session). Receivers drop
    /// frames addressed to a previous incarnation of themselves.
    pub dst: Option<u16>,
    /// Cumulative ack: the sender has received every session slot
    /// `< ack` from this port's peer.
    pub ack: u32,
    /// Header checksum sealed by the sender ([`Frame::sealed`]) and
    /// verified by the receiver ([`Frame::valid`]) before the frame may
    /// touch any session state. A CRC-16 stand-in: frames are in-memory
    /// values, so it folds the header fields and the payload *width*
    /// through [`crate::rng::splitmix64`] instead of hashing wire bytes.
    pub sum: u16,
    /// Payload part.
    pub kind: FrameKind<M>,
}

impl<M: BitSize> Frame<M> {
    /// The checksum a well-formed frame with these fields must carry.
    fn checksum(boot: u16, dst: Option<u16>, ack: u32, kind: &FrameKind<M>) -> u16 {
        let mut h = u64::from(boot) ^ 0xF4A3_C0DE_0000;
        h = rng::splitmix64(h ^ dst.map_or(0x1_0000, u64::from));
        h = rng::splitmix64(h ^ u64::from(ack));
        h = match kind {
            FrameKind::Control => rng::splitmix64(h ^ 0x3),
            FrameKind::Data { seq, payload, last, retx } => rng::splitmix64(
                h ^ (u64::from(*seq) << 8)
                    ^ (u64::from(*last) << 1)
                    ^ u64::from(*retx)
                    ^ ((payload.as_ref().map_or(0, BitSize::bit_size) as u64) << 40),
            ),
        };
        (h & 0xFFFF) as u16
    }

    /// Builds a frame with its checksum sealed over the given fields.
    #[must_use]
    pub fn sealed(boot: u16, dst: Option<u16>, ack: u32, kind: FrameKind<M>) -> Frame<M> {
        let sum = Frame::checksum(boot, dst, ack, &kind);
        Frame { boot, dst, ack, sum, kind }
    }

    /// Whether the carried checksum matches the frame's contents.
    #[must_use]
    pub fn valid(&self) -> bool {
        self.sum == Frame::checksum(self.boot, self.dst, self.ack, &self.kind)
    }
}

impl<M: BitSize + Clone> BitSize for Frame<M> {
    /// Header: 16-bit boot nonce + option-tagged 16-bit destination
    /// nonce + 16-bit cumulative ack (slot counts are bounded by the
    /// engine's round guard, so 16 bits are honest) + 16-bit checksum.
    /// A data frame adds a 16-bit slot number, `last`/`retx` flag bits,
    /// and the option-tagged payload.
    fn bit_size(&self) -> usize {
        let header = 16 + 17 + 16 + 16;
        match &self.kind {
            FrameKind::Data { payload, .. } => {
                header + 16 + 2 + 1 + payload.as_ref().map_or(0, BitSize::bit_size)
            }
            FrameKind::Control => header,
        }
    }

    fn class(&self) -> MsgClass {
        match &self.kind {
            FrameKind::Data { retx: true, .. } => MsgClass::Retransmission,
            FrameKind::Data { payload: Some(_), retx: false, .. } => MsgClass::Protocol,
            // Empty slot markers carry no protocol payload: accounted as
            // transport overhead together with control frames.
            FrameKind::Data { payload: None, retx: false, .. } | FrameKind::Control => {
                MsgClass::Heartbeat
            }
        }
    }

    /// Transit damage on a frame. Header damage leaves the checksum
    /// stale so receiver validation catches it; replayed and forged
    /// frames are internally consistent (valid checksum) and must be
    /// shut out by the sequence-number and incarnation checks instead.
    fn corrupted(&self, kind: CorruptKind, rng: &mut StdRng) -> Option<Self> {
        use rand::RngExt;
        match kind {
            CorruptKind::BitFlip => {
                // One header bit flips; the carried checksum goes stale.
                let mut f = self.clone();
                match rng.random_range(0..3u32) {
                    0 => f.boot ^= 1 << rng.random_range(0..16u32),
                    1 => f.ack ^= 1 << rng.random_range(0..16u32),
                    _ => f.sum ^= 1 << rng.random_range(0..16u32),
                }
                Some(f)
            }
            CorruptKind::Truncate => match &self.kind {
                // A truncated data frame loses its payload but keeps the
                // (now stale) checksum; a control frame is all header,
                // so truncation destroys it outright.
                FrameKind::Data { seq, last, retx, .. } => {
                    let mut f = self.clone();
                    f.kind = FrameKind::Data { seq: *seq, payload: None, last: *last, retx: *retx };
                    Some(f)
                }
                FrameKind::Control => None,
            },
            CorruptKind::Garbage => Some(Frame {
                boot: rng.random(),
                dst: if rng.random_bool(0.5) { Some(rng.random()) } else { None },
                ack: u32::from(rng.random::<u16>()),
                sum: rng.random(),
                kind: FrameKind::Control,
            }),
            // An old frame injected again: internally consistent, marked
            // as a retransmission where the wire format allows it. The
            // receiver's cumulative ack and slot dedup absorb it.
            CorruptKind::Replay => {
                let mut f = self.clone();
                if let FrameKind::Data { retx, .. } = &mut f.kind {
                    *retx = true;
                }
                Some(Frame::sealed(f.boot, f.dst, f.ack, f.kind))
            }
            // A plausible frame from a fabricated identity: the checksum
            // seals honestly, so only the incarnation checks stand
            // between the forgery and the session state.
            CorruptKind::Forge => {
                Some(Frame::sealed(rng.random(), None, self.ack, FrameKind::Control))
            }
        }
    }
}

/// One inner-protocol slot queued on a port until acknowledged.
#[derive(Debug, Clone)]
struct OutSlot<M> {
    seq: u32,
    payload: Option<M>,
    last: bool,
    /// Transmissions so far (0 = not yet sent).
    attempts: u32,
    /// Engine round at which this slot may be retransmitted.
    next_retx: usize,
}

/// Per-port transport state. Sequence numbers on the wire are
/// *session-relative*: wire slot `s` is inner slot `seq_base + s`, so a
/// revived session restarts numbering from zero on both sides.
#[derive(Debug)]
struct PortState<M> {
    /// Unacknowledged outgoing slots (wire-numbered), oldest first
    /// (≤ `cfg.window`).
    queue: VecDeque<OutSlot<M>>,
    /// The peer has acknowledged every session slot `< acked_out`.
    acked_out: u32,
    /// Received, not-yet-consumed slots keyed by session slot index.
    recv_buf: BTreeMap<u32, (Option<M>, bool)>,
    /// Every slot `< recv_ack` has been received (the ack we advertise).
    recv_ack: u32,
    /// Next incoming slot the inner protocol will consume.
    consume_next: u32,
    /// The `ack` value of the last frame we sent on this port.
    ack_sent: u32,
    /// Inner slot index at which this session's wire numbering starts.
    seq_base: u32,
    /// The peer's boot nonce, learned from its first frame.
    peer_boot: Option<u16>,
    /// The previous incarnation's nonce after a session reset; its stale
    /// frames are silently dropped.
    prev_boot: Option<u16>,
    /// The peer's final slot has been consumed (it sent `last`).
    done: bool,
    /// The peer is considered crashed or rebooted.
    dead: bool,
    /// Consecutive checksum failures; any valid frame resets it. At
    /// [`TransportCfg::max_strikes`] the port is quarantined.
    strikes: usize,
    /// Engine round of the last observed progress on this port.
    last_progress: usize,
    /// Engine round we last transmitted on this port, if ever.
    last_sent: Option<usize>,
}

impl<M> PortState<M> {
    fn new(now: usize) -> PortState<M> {
        PortState {
            queue: VecDeque::new(),
            acked_out: 0,
            recv_buf: BTreeMap::new(),
            recv_ack: 0,
            consume_next: 0,
            ack_sent: 0,
            seq_base: 0,
            peer_boot: None,
            prev_boot: None,
            done: false,
            dead: false,
            strikes: 0,
            last_progress: now,
            last_sent: None,
        }
    }

    /// Restarts the session for a new peer incarnation: wire numbering
    /// rebases at `seq_base` (the next inner slot), all buffers clear,
    /// and the port comes back to life. Only called while our own inner
    /// protocol is still running — a finished node quarantines fresh
    /// incarnations instead (see [`Resilient::receive`]).
    fn reset_session(&mut self, now: usize, new_boot: u16, seq_base: u32) {
        self.prev_boot = self.peer_boot;
        self.peer_boot = Some(new_boot);
        // Wire slot 0 of the new session is an immediate empty catch-up
        // slot, so `seq_base - 1`: our next *produced* inner slot maps
        // to wire slot 1. Without the catch-up, the fresh incarnation
        // would wait for a slot we can only produce by advancing — and
        // our advancement can transitively wait on the fresh node
        // itself (its other neighbours block on *its* next slot), a
        // cyclic pipeline deadlock. The empty slot is truthful: while
        // the port was down (or the peer absent) the inner protocol
        // sent nothing on it.
        self.seq_base = seq_base.wrapping_sub(1);
        self.queue.clear();
        self.queue.push_back(OutSlot {
            seq: 0,
            payload: None,
            last: false,
            attempts: 0,
            next_retx: 0,
        });
        self.acked_out = 0;
        self.recv_buf.clear();
        self.recv_ack = 0;
        self.consume_next = 0;
        self.ack_sent = 0;
        self.done = false;
        self.dead = false;
        self.strikes = 0;
        self.last_progress = now;
        self.last_sent = None;
    }
}

/// What [`Resilient::receive`] observed about the port's peer.
enum Rx {
    /// Nothing new (or the frame was stale and dropped).
    Ok,
    /// The peer was just declared dead (reboot evidence arrived out of
    /// order; the session opener will revive it).
    Down,
    /// A dead port came back: a new incarnation opened a fresh session.
    Up,
    /// A live port's peer rebooted: down and immediately up again as the
    /// new incarnation.
    DownUp,
}

/// A protocol wrapper adding reliable delivery, failure detection and
/// reboot isolation — see the [module docs](self) for the full design.
///
/// Use it as the protocol handed to the engine:
///
/// ```
/// use dam_congest::transport::{Resilient, TransportCfg};
/// use dam_congest::{Context, FaultPlan, Network, Port, Protocol, SimConfig};
///
/// struct Once;
/// impl Protocol for Once {
///     type Msg = u64;
///     type Output = usize;
///     fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
///         ctx.broadcast(7);
///     }
///     fn on_round(&mut self, ctx: &mut Context<'_, u64>, inbox: &[(Port, u64)]) {
///         assert_eq!(inbox.len(), ctx.degree()); // loss was repaired
///         ctx.halt();
///     }
///     fn into_output(self) -> usize {
///         0
///     }
/// }
///
/// let g = dam_graph::generators::cycle(4);
/// let mut net = Network::new(&g, SimConfig::local().seed(1));
/// let out = net
///     .run_faulty(
///         |_, _| Resilient::new(Once, TransportCfg::default()),
///         &FaultPlan::lossy(0.2),
///     )
///     .unwrap();
/// assert!(out.stats.rounds >= 2);
/// ```
pub struct Resilient<P: Protocol> {
    inner: P,
    cfg: TransportCfg,
    /// This boot's random nonce (drawn in `on_start`).
    boot: u16,
    /// Inner slots produced so far; also the inner round counter.
    slots_out: u32,
    /// The inner protocol called halt.
    inner_halted: bool,
    /// A final (`last`) slot has been produced: the inner protocol
    /// halted, idled out, or lost every neighbour.
    inner_done: bool,
    /// Consecutive inner rounds with no traffic in or out.
    idle_rounds: usize,
    /// Messages the inner protocol sent outside a round (from
    /// `on_peer_down`), folded into the next slot.
    extra_out: Vec<(Port, P::Msg)>,
    /// Scratch send-guard for the inner context.
    inner_sent: Vec<bool>,
    /// Countdown of responsive rounds after finishing.
    linger_left: Option<usize>,
    ports: Vec<PortState<P::Msg>>,
    /// Closed-loop controller, if this transport is adaptive
    /// ([`Resilient::with_policy`]). `None` runs the fixed `cfg` forever.
    policy: Option<AdaptivePolicy>,
    /// Current aggression level of the adaptive ladder (1 = floor).
    level: u64,
    /// Counters accumulated since the last epoch boundary, consumed by
    /// the policy to pick the next epoch's configuration.
    epoch_obs: EpochObservation,
}

impl<P: Protocol> Resilient<P> {
    /// Wraps `inner` with the resilient transport.
    ///
    /// # Panics
    /// Panics if `cfg.window` or `cfg.backoff_base` is zero.
    pub fn new(inner: P, cfg: TransportCfg) -> Resilient<P> {
        assert!(cfg.window >= 1, "transport window must be at least 1");
        assert!(cfg.backoff_base >= 1, "backoff base must be at least 1");
        Resilient {
            inner,
            cfg,
            boot: 0,
            slots_out: 0,
            inner_halted: false,
            inner_done: false,
            idle_rounds: 0,
            extra_out: Vec::new(),
            inner_sent: Vec::new(),
            linger_left: None,
            ports: Vec::new(),
            policy: None,
            level: 1,
            epoch_obs: EpochObservation::default(),
        }
    }

    /// Wraps `inner` with an **adaptive** resilient transport: the
    /// timer/quarantine configuration starts at the policy's floor
    /// (level 1) and is re-derived from observed retransmissions,
    /// suspicions and integrity rejections at every epoch boundary
    /// (engine rounds divisible by [`AdaptivePolicy::epoch`]).
    ///
    /// The controller is pure and seed-free ([`AdaptivePolicy`]), and
    /// reconfiguration happens at the *start* of the boundary round,
    /// before any receive/suspect/transmit decision — so a run is a
    /// deterministic function of `(seed, plan, policy)` on every
    /// backend, exactly as a static configuration is of `(seed, plan,
    /// cfg)`.
    ///
    /// # Panics
    /// Panics if the policy's floor has a zero window or backoff base
    /// (same contract as [`Resilient::new`]).
    pub fn with_policy(inner: P, policy: AdaptivePolicy) -> Resilient<P> {
        let mut wrapped = Resilient::new(inner, policy.cfg_at(1, policy.floor.max_strikes));
        wrapped.policy = Some(policy);
        wrapped
    }

    /// The adaptive ladder's current aggression level (1 = floor).
    /// Always 1 for a transport built with [`Resilient::new`].
    #[must_use]
    pub fn level(&self) -> u64 {
        self.level
    }

    /// The configuration currently in force (the constructor's `cfg`
    /// for a static transport; the latest epoch's derivation for an
    /// adaptive one).
    #[must_use]
    pub fn current_cfg(&self) -> TransportCfg {
        self.cfg
    }

    /// Ports whose peers were declared dead (by suspicion or reboot).
    #[must_use]
    pub fn dead_ports(&self) -> Vec<Port> {
        (0..self.ports.len()).filter(|&p| self.ports[p].dead).collect()
    }

    /// Queues slot `slots_out` (built from `payloads`) on every live
    /// port — wire-numbered relative to the port's session — and
    /// advances the slot counter.
    fn produce_slot(&mut self, mut payloads: Vec<Option<P::Msg>>, last: bool) {
        let seq = self.slots_out;
        self.slots_out += 1;
        for (p, port) in self.ports.iter_mut().enumerate() {
            if port.dead {
                continue;
            }
            port.queue.push_back(OutSlot {
                seq: seq - port.seq_base,
                payload: payloads[p].take(),
                last,
                attempts: 0,
                next_retx: 0,
            });
        }
        if last {
            self.inner_done = true;
        }
    }

    /// Drains the inner outbox (and any `on_peer_down` extras) into
    /// per-port payloads, resetting the inner send guard.
    fn collect_payloads(&mut self, inner_outbox: &mut Vec<(Port, P::Msg)>) -> Vec<Option<P::Msg>> {
        let mut payloads: Vec<Option<P::Msg>> = (0..self.ports.len()).map(|_| None).collect();
        for (p, m) in self.extra_out.drain(..).chain(inner_outbox.drain(..)) {
            payloads[p] = Some(m);
        }
        self.inner_sent.iter_mut().for_each(|s| *s = false);
        payloads
    }

    /// Processes one received frame on `port`, reporting any peer
    /// down/up transition it reveals.
    fn receive(
        &mut self,
        now: usize,
        port: Port,
        frame: Frame<P::Msg>,
        ctx: &mut Context<'_, Frame<P::Msg>>,
    ) -> Rx {
        // Integrity validation comes before everything else: a frame
        // that fails its checksum is tampered wire noise and must not
        // count as peer progress, advance acks, or touch the session.
        // Consecutive failures quarantine the link — a channel that
        // only ever delivers garbage is indistinguishable from a
        // Byzantine sender, and waiting it out would stall everyone
        // behind the suspicion timer instead.
        if !frame.valid() {
            ctx.note_rejected();
            self.epoch_obs.rejected += 1;
            let ps = &mut self.ports[port];
            if !ps.dead {
                ps.strikes += 1;
                if ps.strikes >= self.cfg.max_strikes {
                    ps.dead = true;
                    ctx.note_quarantined();
                    return Rx::Down;
                }
            }
            return Rx::Ok;
        }
        self.ports[port].strikes = 0;
        // Frames addressed to a previous incarnation of *us* are relics
        // of a session that died with that incarnation: drop them before
        // they can pollute the fresh session's sequence space (the
        // half-open-connection hazard).
        if let Some(dst) = frame.dst {
            if dst != self.boot {
                ctx.note_rejected();
                self.epoch_obs.rejected += 1;
                return Rx::Ok;
            }
        }
        let window = self.cfg.window as u32;
        let seq_base = self.slots_out;
        let inner_done = self.inner_done;
        let ps = &mut self.ports[port];
        // Only a brand-new session opens with slot 0 / ack 0 — the
        // unambiguous signature of a fresh incarnation (a live mid-run
        // peer is always past it).
        let fresh_session = frame.ack == 0 && matches!(frame.kind, FrameKind::Data { seq: 0, .. });
        let mut event = Rx::Ok;
        if ps.dead {
            // Within one incarnation, suspicion is permanent: only a new
            // incarnation opening a fresh session revives the port — and
            // only while our own inner protocol is still running. A
            // finished node has nothing to say and nothing to learn, so
            // it quarantines fresh incarnations; starved of acks, they
            // suspect us and stop waiting, which is what guarantees
            // termination. (A 1-in-2^16 nonce collision would keep the
            // port dead — accepted.)
            let new_nonce = ps.peer_boot != Some(frame.boot) && ps.prev_boot != Some(frame.boot);
            if !(new_nonce && fresh_session && !inner_done) {
                return Rx::Ok;
            }
            ps.reset_session(now, frame.boot, seq_base);
            event = Rx::Up;
        } else {
            match ps.peer_boot {
                None => {
                    // Only sequence-carrying frames may *bind* the
                    // session nonce. A control frame still services the
                    // link (liveness, acks) but cannot open a session:
                    // a forged control frame arriving first would
                    // otherwise lock the port onto a bogus nonce and
                    // wedge it against the genuine peer forever.
                    if matches!(frame.kind, FrameKind::Data { .. }) {
                        ps.peer_boot = Some(frame.boot);
                    }
                }
                Some(b) if b != frame.boot => {
                    if ps.prev_boot == Some(frame.boot) {
                        // A reordered leftover of the previous
                        // incarnation: ignore.
                        return Rx::Ok;
                    }
                    if fresh_session && !inner_done {
                        // The peer rebooted: its old transport state and
                        // registers are gone. Restart the session for
                        // the new incarnation.
                        ps.reset_session(now, frame.boot, seq_base);
                        event = Rx::DownUp;
                    } else {
                        // An unknown nonce without a fresh session
                        // opener. It may be reboot evidence reordered
                        // past its opener — but it is equally the shape
                        // of a forged frame, and acting on a bare nonce
                        // would let one forgery assassinate a live
                        // link. Reject it instead: a genuine new
                        // incarnation retransmits its opener (slot 0,
                        // ack 0) until it lands and revives the session
                        // above, while a node that has already finished
                        // starves the newcomer of acks until its own
                        // suspicion timer fires — which is what
                        // guarantees termination.
                        ctx.note_rejected();
                        self.epoch_obs.rejected += 1;
                        return Rx::Ok;
                    }
                }
                Some(_) => {}
            }
        }
        // Any authentic frame is a liveness signal. (Reboots are caught
        // above by the nonce, so liveness suffices: an alive-but-stalled
        // peer must be *waited for*, not suspected — its own suspicion
        // timers guarantee it eventually unblocks or halts, and a halted
        // peer goes silent.)
        ps.last_progress = now;
        // A legitimate ack never exceeds what we actually sent this
        // session; anything larger is stale pre-reset traffic.
        let ack_bound = ps.queue.back().map_or(ps.acked_out, |s| s.seq + 1);
        if frame.ack > ps.acked_out && frame.ack <= ack_bound {
            ps.acked_out = frame.ack;
            while ps.queue.front().is_some_and(|s| s.seq < ps.acked_out) {
                ps.queue.pop_front();
            }
        }
        if let FrameKind::Data { seq, payload, last, .. } = frame.kind {
            // A legitimate sender is at most `window` slots past our
            // cumulative ack; reject anything further so stale frames
            // cannot squat on slot numbers the new session will reuse.
            if seq >= ps.consume_next && seq < ps.recv_ack + window {
                ps.recv_buf.entry(seq).or_insert((payload, last));
            }
            while ps.recv_buf.contains_key(&ps.recv_ack) {
                ps.recv_ack += 1;
            }
        }
        event
    }

    /// Whether the inner protocol can execute its next round now: every
    /// live, unfinished port has its next slot buffered, and no port's
    /// send window is exhausted.
    fn can_advance(&self) -> bool {
        if self.inner_done {
            return false;
        }
        self.ports.iter().all(|ps| {
            if ps.dead {
                return true;
            }
            if ps.queue.len() >= self.cfg.window {
                return false;
            }
            ps.done || ps.recv_buf.contains_key(&ps.consume_next)
        })
    }

    /// Consumes one slot per live port into an inner inbox.
    fn consume_inbox(&mut self) -> Vec<(Port, P::Msg)> {
        let mut inbox = Vec::new();
        for (p, ps) in self.ports.iter_mut().enumerate() {
            if ps.dead || ps.done {
                continue;
            }
            if let Some((payload, last)) = ps.recv_buf.remove(&ps.consume_next) {
                ps.consume_next += 1;
                if let Some(m) = payload {
                    inbox.push((p, m));
                }
                if last {
                    ps.done = true;
                }
            }
        }
        inbox
    }

    /// After the inner protocol has finished, keep draining incoming
    /// slots (discarding payloads, as the engine does for halted nodes)
    /// so a peer that halts *later* than us still gets its final slot
    /// consumed and acknowledged — otherwise two nodes halting at
    /// different inner rounds would deadlock waiting on each other.
    fn drain_after_done(&mut self) {
        for ps in &mut self.ports {
            if ps.dead {
                continue;
            }
            while let Some((_, last)) = ps.recv_buf.remove(&ps.consume_next) {
                ps.consume_next += 1;
                if last {
                    ps.done = true;
                }
            }
        }
    }

    /// Whether every port is settled enough to stop running.
    fn finished(&self) -> bool {
        self.inner_done && self.ports.iter().all(|ps| ps.dead || (ps.done && ps.queue.is_empty()))
    }

    /// Emits at most one frame per port for this engine round: a
    /// never-sent slot if one exists, else the oldest unacked slot when
    /// its retransmit timer fires, else a control frame when an ack is
    /// owed or a heartbeat is due.
    fn transmit(&mut self, now: usize, ctx: &mut Context<'_, Frame<P::Msg>>) {
        let cfg = self.cfg;
        let boot = self.boot;
        let inner_done = self.inner_done;
        let mut retx_sent: u64 = 0;
        for (p, ps) in self.ports.iter_mut().enumerate() {
            if ps.dead {
                continue;
            }
            let due =
                ps.queue.front().is_some_and(|head| head.attempts > 0 && now >= head.next_retx);
            let slot = match ps.queue.iter_mut().find(|s| s.attempts == 0) {
                Some(fresh) => Some(fresh),
                None if due => ps.queue.front_mut(),
                None => None,
            };
            if let Some(slot) = slot {
                let retx = slot.attempts > 0;
                retx_sent += u64::from(retx);
                let frame = Frame::sealed(
                    boot,
                    ps.peer_boot,
                    ps.recv_ack,
                    FrameKind::Data {
                        seq: slot.seq,
                        payload: slot.payload.clone(),
                        last: slot.last,
                        retx,
                    },
                );
                let backoff = (cfg.backoff_base << slot.attempts.min(16)).min(cfg.backoff_max);
                slot.attempts += 1;
                slot.next_retx = now + backoff.max(cfg.backoff_base);
                ps.ack_sent = ps.recv_ack;
                ps.last_sent = Some(now);
                ctx.send(p, frame);
                continue;
            }
            let owe_ack = ps.recv_ack > ps.ack_sent;
            let active = !(inner_done && ps.done);
            let hb_due =
                active && ps.last_sent.is_none_or(|ls| now.saturating_sub(ls) >= cfg.hb_interval);
            if owe_ack || hb_due {
                ps.ack_sent = ps.recv_ack;
                ps.last_sent = Some(now);
                ctx.send(p, Frame::sealed(boot, ps.peer_boot, ps.recv_ack, FrameKind::Control));
            }
        }
        self.epoch_obs.retransmissions += retx_sent;
    }

    /// Reports the outstanding-slot gauge (queued, unacked slots across
    /// live ports) to the telemetry stream. Observation only: the value
    /// feeds [`Context::note_outstanding`], which never alters
    /// [`crate::RunStats`] or any protocol decision.
    fn report_outstanding(&self, ctx: &mut Context<'_, Frame<P::Msg>>) {
        let slots: u64 =
            self.ports.iter().filter(|ps| !ps.dead).map(|ps| ps.queue.len() as u64).sum();
        ctx.note_outstanding(slots);
    }

    /// Runs one inner callback with a context that borrows this node's
    /// engine-level identity but transport-level round/outbox state.
    fn with_inner_ctx(
        &mut self,
        ctx: &mut Context<'_, Frame<P::Msg>>,
        inner_outbox: &mut Vec<(Port, P::Msg)>,
        f: impl FnOnce(&mut P, &mut Context<'_, P::Msg>),
    ) {
        let mut ictx = Context {
            node: ctx.node,
            round: self.slots_out as usize,
            graph: ctx.graph,
            rng: &mut *ctx.rng,
            outbox: inner_outbox,
            sent: &mut self.inner_sent,
            halted: &mut self.inner_halted,
            fault: &mut *ctx.fault,
            integrity: &mut *ctx.integrity,
        };
        f(&mut self.inner, &mut ictx);
    }
}

impl<P: Protocol> Protocol for Resilient<P> {
    type Msg = Frame<P::Msg>;
    type Output = P::Output;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        use rand::RngExt;
        // `round` is 0 on a normal boot but the recovery round when the
        // engine reboots a crashed node.
        let now = ctx.round;
        let degree = ctx.degree();
        self.boot = ctx.rng().random();
        self.inner_sent = vec![false; degree];
        self.ports = (0..degree).map(|_| PortState::new(now)).collect();

        let mut inner_outbox: Vec<(Port, P::Msg)> = Vec::new();
        self.with_inner_ctx(ctx, &mut inner_outbox, |inner, ictx| inner.on_start(ictx));
        let payloads = self.collect_payloads(&mut inner_outbox);
        let last = self.inner_halted;
        self.produce_slot(payloads, last);
        self.transmit(now, ctx);
        self.report_outstanding(ctx);
        if self.finished() {
            ctx.halt();
        }
    }

    fn on_round(&mut self, ctx: &mut Context<'_, Self::Msg>, inbox: &[(Port, Self::Msg)]) {
        let now = ctx.round;

        // 0. Epoch boundary (adaptive transports only): re-derive the
        //    configuration from last epoch's observations *before* any
        //    receive/suspect/transmit decision this round, so the same
        //    deterministic inputs always see the same timers.
        if let Some(policy) = self.policy {
            if now > 0 && (now as u64).is_multiple_of(policy.epoch) {
                let obs = std::mem::take(&mut self.epoch_obs);
                self.level = policy.next_level(self.level, &obs);
                let strikes = policy.next_max_strikes(self.cfg.max_strikes, &obs);
                self.cfg = policy.cfg_at(self.level, strikes);
            }
        }

        // 1. Receive: acks, slots, incarnation changes and revivals.
        //    `(port, came_up)` transitions, in observation order.
        let mut peer_events: Vec<(Port, bool)> = Vec::new();
        for (p, frame) in inbox.iter().cloned() {
            match self.receive(now, p, frame, ctx) {
                Rx::Ok => {}
                Rx::Down => peer_events.push((p, false)),
                Rx::Up => peer_events.push((p, true)),
                Rx::DownUp => {
                    peer_events.push((p, false));
                    peer_events.push((p, true));
                }
            }
        }

        // 2. Failure detection: no progress while expecting some.
        for p in 0..self.ports.len() {
            let ps = &self.ports[p];
            let expecting = !ps.dead && (!ps.done || !ps.queue.is_empty());
            if expecting && now.saturating_sub(ps.last_progress) > self.cfg.suspicion {
                self.ports[p].dead = true;
                ctx.note_suspected();
                self.epoch_obs.suspected += 1;
                peer_events.push((p, false));
            }
        }

        // 3. Tell the inner protocol about peer transitions, in order
        //    (it may send or halt in response; sends fold into the next
        //    slot).
        if !self.inner_done && !peer_events.is_empty() {
            for &(p, up) in &peer_events {
                let mut inner_outbox: Vec<(Port, P::Msg)> = Vec::new();
                self.with_inner_ctx(ctx, &mut inner_outbox, |inner, ictx| {
                    if up {
                        inner.on_peer_up(ictx, p);
                    } else {
                        inner.on_peer_down(ictx, p);
                    }
                });
                self.extra_out.append(&mut inner_outbox);
            }
            if self.inner_halted {
                // Halted outside a round: flush the extras as the final
                // slot immediately.
                let payloads = self.collect_payloads(&mut Vec::new());
                self.produce_slot(payloads, true);
            }
        }

        // 4. Advance the inner protocol if every port's next slot is in;
        //    once it has finished, keep draining (and acking) peers that
        //    finish later.
        if self.inner_done {
            self.drain_after_done();
        } else if self.can_advance() {
            let inner_inbox = self.consume_inbox();
            let mut inner_outbox: Vec<(Port, P::Msg)> = Vec::new();
            self.with_inner_ctx(ctx, &mut inner_outbox, |inner, ictx| {
                inner.on_round(ictx, &inner_inbox);
            });
            let quiet =
                inner_inbox.is_empty() && inner_outbox.is_empty() && self.extra_out.is_empty();
            let payloads = self.collect_payloads(&mut inner_outbox);
            let mut last = self.inner_halted;
            if let Some(k) = self.cfg.idle_after {
                self.idle_rounds = if quiet { self.idle_rounds + 1 } else { 0 };
                if self.idle_rounds >= k {
                    last = true; // idled out: declare this slot final
                }
            }
            self.produce_slot(payloads, last);
        }

        // 5. Finished? Linger a little so trailing acks still flow.
        if self.finished() {
            let left = self.linger_left.get_or_insert(self.cfg.linger);
            if *left == 0 {
                ctx.halt();
            } else {
                *left -= 1;
            }
        } else {
            self.linger_left = None;
        }

        // 6. Transmit at most one frame per port.
        if !*ctx.halted {
            self.transmit(now, ctx);
        }
        self.report_outstanding(ctx);
    }

    fn into_output(self) -> P::Output {
        self.inner.into_output()
    }

    fn session(&self) -> Option<SessionState> {
        Some(SessionState {
            boot: self.boot,
            level: self.level,
            ports: self
                .ports
                .iter()
                .map(|p| PortSession {
                    peer_boot: p.peer_boot,
                    outstanding: p.queue.len() as u32,
                    acked_out: p.acked_out,
                    recv_ack: p.recv_ack,
                    done: p.done,
                    dead: p.dead,
                })
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{FaultPlan, Network};
    use crate::model::SimConfig;
    use dam_graph::{generators, Graph, NodeId, Topology};

    #[test]
    fn delay_bound_derivation_scales_every_silence_timer() {
        // bound = 1 is the lockstep regime: exactly the defaults.
        assert_eq!(TransportCfg::for_delay_bound(1), TransportCfg::default());
        assert_eq!(TransportCfg::for_delay_bound(0), TransportCfg::default());
        let d = TransportCfg::default();
        for bound in [2u64, 5, 13] {
            let c = TransportCfg::for_delay_bound(bound);
            let b = bound as usize;
            assert_eq!(c.backoff_base, 2 * b + 1, "retry only after a worst-case RTT");
            assert_eq!(c.backoff_max, 2 * c.backoff_base);
            assert!(c.backoff_max < c.suspicion / 2, "retries must precede suspicion");
            assert_eq!(
                c.suspicion * d.hb_interval,
                d.suspicion * c.hb_interval,
                "missed-heartbeat margin is invariant in the bound"
            );
            assert_eq!(c.linger, d.linger * b);
            assert_eq!(c.max_strikes, d.max_strikes, "integrity thresholds are not timers");
        }
    }

    fn reason_of(err: SimError) -> String {
        match err {
            SimError::InvalidTransportCfg { reason } => reason,
            other => panic!("expected InvalidTransportCfg, got {other:?}"),
        }
    }

    #[test]
    fn validate_accepts_defaults_and_every_delay_bound_derivation() {
        TransportCfg::default().validate().unwrap();
        for bound in [0u64, 1, 2, 5, 13, 64] {
            TransportCfg::for_delay_bound(bound).validate().unwrap();
        }
    }

    #[test]
    fn validate_rejects_zero_window() {
        let cfg = TransportCfg { window: 0, ..TransportCfg::default() };
        let reason = reason_of(cfg.validate().unwrap_err());
        assert!(reason.contains("window"), "reason names the field: {reason}");
    }

    #[test]
    fn validate_rejects_zero_backoff_base() {
        let cfg = TransportCfg { backoff_base: 0, ..TransportCfg::default() };
        let reason = reason_of(cfg.validate().unwrap_err());
        assert!(reason.contains("backoff_base"), "reason names the field: {reason}");
    }

    #[test]
    fn validate_rejects_backoff_cap_below_base() {
        let cfg = TransportCfg { backoff_base: 5, backoff_max: 4, ..TransportCfg::default() };
        let reason = reason_of(cfg.validate().unwrap_err());
        assert!(reason.contains("backoff_max"), "reason names the cap: {reason}");
        // Equality is fine: a constant retransmission interval.
        TransportCfg { backoff_base: 5, backoff_max: 5, ..TransportCfg::default() }
            .validate()
            .unwrap();
    }

    #[test]
    fn validate_rejects_suspicion_inside_heartbeat_margin() {
        let d = TransportCfg::default();
        let cfg = TransportCfg { suspicion: 2 * d.hb_interval, ..d };
        let reason = reason_of(cfg.validate().unwrap_err());
        assert!(reason.contains("suspicion"), "reason names the timer: {reason}");
        // One round past the margin is the minimum legal window.
        TransportCfg { suspicion: 2 * d.hb_interval + 1, ..d }.validate().unwrap();
    }

    #[test]
    fn validation_error_display_names_the_violation() {
        let cfg = TransportCfg { window: 0, ..TransportCfg::default() };
        let msg = cfg.validate().unwrap_err().to_string();
        assert!(msg.starts_with("invalid transport config:"), "{msg}");
    }

    /// Fixed-schedule protocol: broadcast a value for `rounds` rounds,
    /// accumulate everything heard (order-sensitively, per port).
    struct Gossip {
        rounds: usize,
        acc: u64,
    }

    impl Protocol for Gossip {
        type Msg = u64;
        type Output = u64;

        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            ctx.broadcast(ctx.id() as u64 + 1);
        }

        fn on_round(&mut self, ctx: &mut Context<'_, u64>, inbox: &[(Port, u64)]) {
            for &(p, m) in inbox {
                self.acc = self.acc.wrapping_mul(31).wrapping_add(p as u64 ^ m);
            }
            if ctx.round() >= self.rounds {
                ctx.halt();
            } else {
                ctx.broadcast(ctx.id() as u64 + self.acc % 97);
            }
        }

        fn into_output(self) -> u64 {
            self.acc
        }
    }

    fn gossip_make(_: NodeId, _: &dyn Topology) -> Resilient<Gossip> {
        Resilient::new(Gossip { rounds: 6, acc: 0 }, TransportCfg::default())
    }

    fn gossip_baseline(g: &Graph, seed: u64) -> Vec<u64> {
        let mut net = Network::new(g, SimConfig::local().seed(seed));
        net.run(|_, _| Gossip { rounds: 6, acc: 0 }).unwrap().outputs
    }

    #[test]
    fn fault_free_transport_preserves_outputs() {
        let g = generators::cycle(6);
        let base = gossip_baseline(&g, 3);
        let mut wrapped = Network::new(&g, SimConfig::local().seed(3));
        let out = wrapped.run(gossip_make).unwrap();
        assert_eq!(out.outputs, base);
        // No faults: nothing to retransmit; the final empty slot and the
        // trailing acks are bookkeeping frames.
        assert_eq!(out.stats.retransmissions, 0);
        assert!(out.stats.heartbeats > 0);
    }

    #[test]
    fn reliable_under_heavy_loss() {
        let g = generators::cycle(6);
        let base = gossip_baseline(&g, 3);
        let mut net = Network::new(&g, SimConfig::local().seed(3).max_rounds(5_000));
        let out = net.run_faulty(gossip_make, &FaultPlan::lossy(0.3)).unwrap();
        // Reliable delivery: byte-for-byte the fault-free outputs.
        assert_eq!(out.outputs, base);
        assert!(out.stats.retransmissions > 0, "loss must force retransmissions");
    }

    #[test]
    fn survives_duplication_and_reordering() {
        let g = generators::cycle(6);
        let base = gossip_baseline(&g, 4);
        let plan = FaultPlan::lossy(0.1).with_dup(0.2).with_reorder(0.2);
        let mut net = Network::new(&g, SimConfig::local().seed(4).max_rounds(5_000));
        let out = net.run_faulty(gossip_make, &plan).unwrap();
        assert_eq!(out.outputs, base);
    }

    #[test]
    fn adaptive_transport_fault_free_is_bit_identical_to_its_floor() {
        // Quiet epochs never leave level 1, and level 1 *is* the floor
        // configuration — so without faults the controller is
        // observationally absent: same outputs, same stats, frame for
        // frame.
        let g = generators::cycle(6);
        let mut fixed = Network::new(&g, SimConfig::local().seed(3));
        let static_out = fixed.run(gossip_make).unwrap();
        let mut net = Network::new(&g, SimConfig::local().seed(3));
        let adaptive_out = net
            .run(|_, _| {
                Resilient::with_policy(Gossip { rounds: 6, acc: 0 }, AdaptivePolicy::default())
            })
            .unwrap();
        assert_eq!(adaptive_out.outputs, static_out.outputs);
        assert_eq!(adaptive_out.stats, static_out.stats);
    }

    #[test]
    fn adaptive_transport_is_reliable_and_deterministic_under_loss() {
        let g = generators::cycle(6);
        let base = gossip_baseline(&g, 3);
        let run = || {
            let mut net = Network::new(&g, SimConfig::local().seed(3).max_rounds(5_000));
            net.run_faulty(
                |_, _| {
                    Resilient::with_policy(Gossip { rounds: 6, acc: 0 }, AdaptivePolicy::default())
                },
                &FaultPlan::lossy(0.3),
            )
            .unwrap()
        };
        let first = run();
        let second = run();
        // Reliable delivery survives the moving timer configuration…
        assert_eq!(first.outputs, base);
        // …and the closed loop is a pure function of (seed, plan,
        // policy): replaying the run reproduces it bit for bit.
        assert_eq!(first.outputs, second.outputs);
        assert_eq!(first.stats, second.stats);
    }

    /// Counts inner rounds survived and records which peers died.
    struct DeathWatch {
        downs: Vec<Port>,
        rounds: usize,
    }

    impl Protocol for DeathWatch {
        type Msg = u8;
        type Output = Vec<Port>;

        fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
            ctx.broadcast(0);
        }

        fn on_round(&mut self, ctx: &mut Context<'_, u8>, _: &[(Port, u8)]) {
            self.rounds += 1;
            if self.rounds >= 40 {
                ctx.halt();
            } else {
                ctx.broadcast(0);
            }
        }

        fn on_peer_down(&mut self, _: &mut Context<'_, u8>, port: Port) {
            self.downs.push(port);
        }

        fn into_output(self) -> Vec<Port> {
            self.downs
        }
    }

    fn watch_make(_: NodeId, _: &dyn Topology) -> Resilient<DeathWatch> {
        Resilient::new(DeathWatch { downs: Vec::new(), rounds: 0 }, TransportCfg::default())
    }

    #[test]
    fn crashes_are_detected_and_reported() {
        // Star centred at node 0: the centre crashes early; every leaf
        // must eventually learn that its only peer is gone (and still
        // terminate rather than wait forever).
        let g = generators::star(5);
        let plan = FaultPlan::crashes(vec![(0, 4)]);
        let mut net = Network::new(&g, SimConfig::local().seed(7).max_rounds(10_000));
        let out = net.run_faulty(watch_make, &plan).unwrap();
        for v in 1..5 {
            assert_eq!(out.outputs[v], vec![0], "leaf {v} did not detect the crash");
        }
    }

    #[test]
    fn rebooted_peer_is_a_new_incarnation() {
        let g = generators::cycle(4);
        let plan = FaultPlan::crashes(vec![(1, 3)]).with_recoveries(vec![(1, 10)]);
        let mut net = Network::new(&g, SimConfig::local().seed(5).max_rounds(10_000));
        let out = net.run_faulty(watch_make, &plan).unwrap();
        // Node 1's neighbours (0 and 2) each see exactly one peer die —
        // by its reboot nonce or, failing that, by suspicion.
        assert_eq!(out.outputs[0].len(), 1, "node 0 missed the crash/reboot");
        assert_eq!(out.outputs[2].len(), 1, "node 2 missed the crash/reboot");
        // Node 3 is not adjacent to node 1: it must see no deaths.
        assert!(out.outputs[3].is_empty());
    }

    /// Records the full `(port, came_up)` transition history.
    struct UpDownWatch {
        events: Vec<(Port, bool)>,
        rounds: usize,
    }

    impl Protocol for UpDownWatch {
        type Msg = u8;
        type Output = Vec<(Port, bool)>;

        fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
            ctx.broadcast(0);
        }

        fn on_round(&mut self, ctx: &mut Context<'_, u8>, _: &[(Port, u8)]) {
            self.rounds += 1;
            if self.rounds >= 60 {
                ctx.halt();
            } else {
                ctx.broadcast(0);
            }
        }

        fn on_peer_down(&mut self, _: &mut Context<'_, u8>, port: Port) {
            self.events.push((port, false));
        }

        fn on_peer_up(&mut self, _: &mut Context<'_, u8>, port: Port) {
            self.events.push((port, true));
        }

        fn into_output(self) -> Vec<(Port, bool)> {
            self.events
        }
    }

    fn updown_make(_: NodeId, _: &dyn Topology) -> Resilient<UpDownWatch> {
        Resilient::new(UpDownWatch { events: Vec::new(), rounds: 0 }, TransportCfg::default())
    }

    #[test]
    fn recovered_peer_is_unsuspected_before_suspicion_fires() {
        // Node 1 crashes and reboots while its neighbours are still
        // within the suspicion window: the new boot nonce is detected as
        // a fresh incarnation and the port comes straight back up
        // (down immediately followed by up), without ever being written
        // off for the rest of the run.
        let g = generators::cycle(4);
        let plan = FaultPlan::crashes(vec![(1, 3)]).with_recoveries(vec![(1, 6)]);
        let mut net = Network::new(&g, SimConfig::local().seed(11).max_rounds(10_000));
        let out = net.run_faulty(updown_make, &plan).unwrap();
        for v in [0usize, 2] {
            let port = (0..g.degree(v)).find(|&p| g.port(v, p).0 == 1).unwrap();
            assert_eq!(
                out.outputs[v],
                vec![(port, false), (port, true)],
                "node {v} kept stale suspicion of the rebooted peer"
            );
        }
        assert!(out.outputs[3].is_empty(), "node 3 is not adjacent to the churned node");
    }

    #[test]
    fn recovered_peer_is_unsuspected_after_suspicion_fires() {
        // Here the reboot happens long after the neighbours' failure
        // detectors declared node 1 dead: the fresh incarnation's
        // session opener must revive the suspected port (down by
        // timeout, later up by new nonce).
        let g = generators::cycle(4);
        let plan = FaultPlan::crashes(vec![(1, 3)]).with_recoveries(vec![(1, 30)]);
        let mut net = Network::new(&g, SimConfig::local().seed(11).max_rounds(10_000));
        let out = net.run_faulty(updown_make, &plan).unwrap();
        for v in [0usize, 2] {
            let port = (0..g.degree(v)).find(|&p| g.port(v, p).0 == 1).unwrap();
            assert_eq!(
                out.outputs[v],
                vec![(port, false), (port, true)],
                "node {v} did not un-suspect the recovered peer"
            );
        }
        assert!(out.outputs[3].is_empty());
    }

    /// Message-driven flooder that never halts: relies on quiescence.
    struct Flood {
        seen: bool,
    }

    impl Protocol for Flood {
        type Msg = u8;
        type Output = bool;

        fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
            if ctx.id() == 0 {
                self.seen = true;
                ctx.broadcast(1);
            }
        }

        fn on_round(&mut self, ctx: &mut Context<'_, u8>, inbox: &[(Port, u8)]) {
            if !inbox.is_empty() && !self.seen {
                self.seen = true;
                ctx.broadcast(1);
            }
        }

        fn into_output(self) -> bool {
            self.seen
        }
    }

    #[test]
    fn quiescent_protocols_terminate_via_idle_detection() {
        let g = generators::path(5);
        let cfg = TransportCfg::default().idle_after(8);
        let mut net = Network::new(&g, SimConfig::local().seed(2).max_rounds(5_000));
        let out = net
            .run_faulty(|_, _| Resilient::new(Flood { seen: false }, cfg), &FaultPlan::lossy(0.2))
            .unwrap();
        assert!(out.outputs.iter().all(|&s| s), "flood did not reach everyone");
    }

    #[test]
    fn stats_classes_are_separated() {
        let g = generators::cycle(6);
        let mut net = Network::new(&g, SimConfig::local().seed(3).max_rounds(5_000));
        let out = net.run_faulty(gossip_make, &FaultPlan::lossy(0.25)).unwrap();
        // First transmissions of real payloads, retransmissions forced
        // by loss, and bookkeeping frames are all tallied separately.
        assert!(out.stats.messages > 0);
        assert!(out.stats.retransmissions > 0);
        assert!(out.stats.heartbeats > 0);
        assert_eq!(
            out.stats.frames(),
            out.stats.messages + out.stats.retransmissions + out.stats.heartbeats
        );
    }

    #[test]
    fn transport_runs_are_deterministic() {
        let g = generators::cycle(6);
        let plan = FaultPlan::lossy(0.2).with_dup(0.1).with_reorder(0.1);
        let run = |seed: u64| {
            let mut net = Network::new(&g, SimConfig::local().seed(seed).max_rounds(5_000));
            net.run_faulty(gossip_make, &plan).unwrap()
        };
        let (a, b) = (run(11), run(11));
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn checksums_expose_header_and_payload_damage() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0);

        let data = Frame::sealed(
            9,
            Some(4),
            17,
            FrameKind::Data { seq: 3, payload: Some(0xABCDu64), last: false, retx: false },
        );
        let control = Frame::<u64>::sealed(9, Some(4), 17, FrameKind::Control);
        assert!(data.valid() && control.valid(), "sealed frames carry a matching checksum");

        // Header damage: a flipped bit in boot/ack/sum never validates.
        for _ in 0..64 {
            let flipped = data.corrupted(CorruptKind::BitFlip, &mut rng).unwrap();
            assert!(!flipped.valid(), "a single flipped header bit must fail the checksum");
        }
        // Payload damage: truncation leaves the original checksum stale.
        let truncated = data.corrupted(CorruptKind::Truncate, &mut rng).unwrap();
        assert!(
            matches!(truncated.kind, FrameKind::Data { payload: None, .. }) && !truncated.valid(),
            "a truncated payload must fail the original checksum"
        );
        // A truncated bare control frame is destroyed outright.
        assert!(control.corrupted(CorruptKind::Truncate, &mut rng).is_none());

        // Replays and forgeries are *resealed* adversarially: they pass
        // the checksum by design, so the sequence/incarnation layer —
        // not the checksum — must shut them out.
        let replayed = data.corrupted(CorruptKind::Replay, &mut rng).unwrap();
        assert!(replayed.valid());
        assert!(matches!(replayed.kind, FrameKind::Data { retx: true, .. }));
        let forged = data.corrupted(CorruptKind::Forge, &mut rng).unwrap();
        assert!(forged.valid());
        assert!(matches!(forged.kind, FrameKind::Control));
    }

    #[test]
    fn transport_survives_channel_corruption() {
        // End-to-end: with per-message corruption active the transport
        // must still deliver byte-for-byte the fault-free outputs —
        // damaged frames fail validation, are counted as rejected, and
        // retransmission recovers the payloads.
        let g = generators::cycle(6);
        let base = gossip_baseline(&g, 3);
        let plan = FaultPlan::lossy(0.1).with_corrupt(0.15);
        let mut net = Network::new(&g, SimConfig::local().seed(3).max_rounds(10_000));
        let out = net.run_faulty(gossip_make, &plan).unwrap();
        assert_eq!(out.outputs, base, "corruption must not change delivered payloads");
        assert!(out.stats.corruptions > 0, "the plan must actually corrupt frames");
        assert!(out.stats.rejected > 0, "damaged frames must be rejected by validation");
        // Integrity counters annotate frames already billed in their
        // class; quiescence accounting is untouched.
        assert_eq!(
            out.stats.frames(),
            out.stats.messages + out.stats.retransmissions + out.stats.heartbeats
        );
    }

    #[test]
    fn random_corruption_never_quarantines_honest_links() {
        // Strikes reset on every valid frame, so independent channel
        // noise (even heavy) must not amputate a live link — quarantine
        // is reserved for persistently damaged traffic.
        let g = generators::cycle(6);
        let plan = FaultPlan::default().with_corrupt(0.25);
        let mut net = Network::new(&g, SimConfig::local().seed(9).max_rounds(10_000));
        let out = net.run_faulty(gossip_make, &plan).unwrap();
        assert_eq!(out.outputs, gossip_baseline(&g, 9));
        assert_eq!(out.stats.quarantined, 0, "honest links must survive random noise");
    }

    #[test]
    fn equivocator_traffic_is_rejected_and_the_run_terminates() {
        // A Byzantine equivocator tampers every outgoing frame. Its
        // neighbours must reject the damage (or shrug off resealed
        // replays) and the network must still terminate.
        let g = generators::cycle(6);
        let plan = FaultPlan::default().with_equivocators(vec![2]);
        let mut net = Network::new(&g, SimConfig::local().seed(5).max_rounds(20_000));
        let out = net.run_faulty(gossip_make, &plan).unwrap();
        assert!(out.stats.equivocations > 0, "the equivocator must actually tamper");
        assert!(out.stats.rejected > 0, "tampered frames must be rejected");
        // Honest nodes not adjacent to the equivocator interact only
        // with honest peers; their transport sessions stay clean.
        assert_eq!(out.outputs.len(), 6);
    }

    #[test]
    fn forged_session_claims_do_not_assassinate_live_links() {
        // Forged control frames carry a *valid* checksum but a random
        // boot nonce. A single such frame must be rejected without
        // killing the session (the old behaviour declared the port dead
        // on any conflicting non-fresh nonce, handing an attacker a
        // one-frame link-assassination primitive).
        let g = generators::cycle(6);
        let base = gossip_baseline(&g, 13);
        let plan = FaultPlan::default().with_corrupt(0.2);
        let mut net = Network::new(&g, SimConfig::local().seed(13).max_rounds(10_000));
        let out = net.run_faulty(gossip_make, &plan).unwrap();
        // Forgeries were injected (corrupt draws cover all kinds) yet
        // every payload still arrives and no honest link goes down.
        assert_eq!(out.outputs, base);
        assert_eq!(out.stats.quarantined, 0);
    }
}
