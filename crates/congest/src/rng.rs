//! Deterministic per-node randomness.
//!
//! Every node owns an independent RNG derived from the master seed and its
//! node id through a splitmix64 scramble. The engine's results therefore
//! depend only on `(graph, config, protocol)` — never on thread scheduling
//! — which is what makes the sequential and parallel engines
//! bit-identical.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// splitmix64 finalizer — a high-quality 64-bit mix.
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The RNG for node `node` in run `run` under master seed `seed`.
#[must_use]
pub fn node_rng(seed: u64, run: u64, node: usize) -> StdRng {
    let mixed = splitmix64(seed ^ splitmix64(run ^ splitmix64(node as u64)));
    StdRng::seed_from_u64(mixed)
}

/// The RNG deciding the fate (loss/duplication/reordering) of the one
/// message leaving `(node, port)` in `round` of `run`.
///
/// Keying the fault draws on the *message coordinates* instead of a
/// shared sequential stream makes fault injection independent of the
/// order in which the engine flushes outboxes — the property that lets
/// the sharded parallel executor reproduce a faulty run bit-for-bit
/// (any execution order sees the same draws for the same message).
#[must_use]
pub fn fault_rng(seed: u64, run: u64, round: usize, node: usize, port: usize) -> StdRng {
    let mut z = splitmix64(seed ^ 0xFA17_5EED_0F42_11CE);
    z = splitmix64(z ^ run);
    z = splitmix64(z ^ round as u64);
    z = splitmix64(z ^ node as u64);
    z = splitmix64(z ^ port as u64);
    StdRng::seed_from_u64(z)
}

/// The RNG supplying *mutation* randomness for a corruption fault on
/// the message leaving `(node, port)` in `round` of `run`.
///
/// Separate from [`fault_rng`] (which decides *whether* a message is
/// corrupted) so that the tamper draws of
/// [`crate::message::BitSize::corrupted`] never perturb the shared
/// loss/dup/reorder stream — a plan with `corrupt > 0` reproduces the
/// exact loss pattern of the same plan with `corrupt = 0`. Keyed on the
/// message coordinates like [`fault_rng`], for the same flush-order
/// independence.
#[must_use]
pub fn corrupt_rng(seed: u64, run: u64, round: usize, node: usize, port: usize) -> StdRng {
    let mut z = splitmix64(seed ^ 0xC042_0F7E_DB17_F117u64);
    z = splitmix64(z ^ run);
    z = splitmix64(z ^ round as u64);
    z = splitmix64(z ^ node as u64);
    z = splitmix64(z ^ port as u64);
    StdRng::seed_from_u64(z)
}

/// The RNG driving a Byzantine equivocator's tampering of the message
/// it sends on `(node, port)` in `round` of `run`.
///
/// Distinct domain from [`corrupt_rng`] so an equivocating node inside
/// a corrupting network draws independent damage on both layers.
#[must_use]
pub fn byz_rng(seed: u64, run: u64, round: usize, node: usize, port: usize) -> StdRng {
    let mut z = splitmix64(seed ^ 0xB12A_417E_E4D0_C47Eu64);
    z = splitmix64(z ^ run);
    z = splitmix64(z ^ round as u64);
    z = splitmix64(z ^ node as u64);
    z = splitmix64(z ^ port as u64);
    StdRng::seed_from_u64(z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn deterministic_and_distinct() {
        let a: u64 = node_rng(1, 0, 5).random();
        let b: u64 = node_rng(1, 0, 5).random();
        assert_eq!(a, b);
        let c: u64 = node_rng(1, 0, 6).random();
        let d: u64 = node_rng(1, 1, 5).random();
        let e: u64 = node_rng(2, 0, 5).random();
        assert!(a != c && a != d && a != e);
    }

    #[test]
    fn fault_rng_keys_on_all_coordinates() {
        let base: u64 = fault_rng(1, 0, 3, 5, 1).random();
        assert_eq!(base, fault_rng(1, 0, 3, 5, 1).random(), "deterministic");
        let variants: Vec<u64> = [
            fault_rng(2, 0, 3, 5, 1).random(),
            fault_rng(1, 1, 3, 5, 1).random(),
            fault_rng(1, 0, 4, 5, 1).random(),
            fault_rng(1, 0, 3, 6, 1).random(),
            fault_rng(1, 0, 3, 5, 0).random(),
        ]
        .to_vec();
        assert!(variants.iter().all(|&v| v != base), "every coordinate must matter");
    }

    #[test]
    fn corruption_streams_are_domain_separated() {
        // Same coordinates, three different streams: the fate draw, the
        // tamper draw and the equivocation draw never collide.
        let f: u64 = fault_rng(1, 0, 3, 5, 1).random();
        let c: u64 = corrupt_rng(1, 0, 3, 5, 1).random();
        let b: u64 = byz_rng(1, 0, 3, 5, 1).random();
        assert!(f != c && f != b && c != b);
        assert_eq!(c, corrupt_rng(1, 0, 3, 5, 1).random(), "deterministic");
        assert_eq!(b, byz_rng(1, 0, 3, 5, 1).random(), "deterministic");
        assert_ne!(c, corrupt_rng(1, 0, 3, 5, 2).random(), "port matters");
        assert_ne!(b, byz_rng(1, 0, 4, 5, 1).random(), "round matters");
    }

    #[test]
    fn splitmix_avalanche() {
        // Flipping one input bit flips roughly half the output bits.
        let x = splitmix64(42);
        let y = splitmix64(43);
        let diff = (x ^ y).count_ones();
        assert!(diff > 16 && diff < 48, "poor avalanche: {diff}");
    }
}
