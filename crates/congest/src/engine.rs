//! The sequential deterministic engine.

use dam_graph::{Graph, NodeId};

use crate::error::SimError;
use crate::message::BitSize;
use crate::model::{CostModel, Model, SimConfig, ViolationPolicy};
use crate::node::{Context, Port, Protocol};
use crate::rng;
use crate::stats::{RunStats, TotalStats};
use crate::trace::{Trace, TraceEvent};

/// Injected faults for a run (the paper assumes fault-freedom — §2's
/// footnote — so these exist to *measure* how load-bearing that
/// assumption is; see the `fault_injection` integration tests).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Crash-stop faults: `(node, round)` — the node executes rounds
    /// `< round` normally, then silently stops (no announcement, its
    /// pending messages are dropped).
    pub crashes: Vec<(NodeId, usize)>,
    /// Independent per-message loss probability.
    pub loss: f64,
}

impl FaultPlan {
    /// A plan that only crashes the given nodes.
    #[must_use]
    pub fn crashes(crashes: Vec<(NodeId, usize)>) -> FaultPlan {
        FaultPlan { crashes, loss: 0.0 }
    }

    /// A plan that only loses messages with probability `loss`.
    #[must_use]
    pub fn lossy(loss: f64) -> FaultPlan {
        FaultPlan { crashes: Vec::new(), loss }
    }
}

/// The result of one protocol run.
#[derive(Debug, Clone)]
pub struct RunOutcome<O> {
    /// Per-node outputs, indexed by node id.
    pub outputs: Vec<O>,
    /// Statistics of this run.
    pub stats: RunStats,
}

/// A synchronous network over a graph topology.
///
/// One `Network` can execute many protocol runs (the *phases* of a larger
/// algorithm); [`Network::totals`] accumulates their combined cost, which
/// is the quantity the paper's theorems bound.
pub struct Network<'g> {
    graph: &'g Graph,
    config: SimConfig,
    run_counter: u64,
    totals: TotalStats,
    /// `peer[v][p]` = `(u, q)`: port `p` of `v` is port `q` of `u`.
    peer: Vec<Vec<(NodeId, Port)>>,
}

impl<'g> Network<'g> {
    /// Creates a network over `graph`.
    #[must_use]
    pub fn new(graph: &'g Graph, config: SimConfig) -> Network<'g> {
        let mut peer = vec![Vec::new(); graph.node_count()];
        // Map each edge to its port at each endpoint, then link the two.
        let mut port_at = vec![(usize::MAX, usize::MAX); graph.edge_count()];
        for v in graph.nodes() {
            for (p, _, e) in graph.incident(v) {
                let (a, _) = graph.endpoints(e);
                if v == a && port_at[e].0 == usize::MAX {
                    port_at[e].0 = p;
                } else {
                    port_at[e].1 = p;
                }
            }
        }
        for v in graph.nodes() {
            peer[v] = graph
                .incident(v)
                .map(|(p, u, e)| {
                    let (a, _) = graph.endpoints(e);
                    let q = if v == a && port_at[e].0 == p { port_at[e].1 } else { port_at[e].0 };
                    let _ = p;
                    (u, q)
                })
                .collect();
        }
        Network { graph, config, run_counter: 0, totals: TotalStats::default(), peer }
    }

    /// The underlying topology.
    #[must_use]
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> SimConfig {
        self.config
    }

    /// Cumulative statistics over all runs so far.
    #[must_use]
    pub fn totals(&self) -> TotalStats {
        self.totals
    }

    /// Resets the cumulative statistics (not the run counter, so
    /// randomness stays fresh).
    pub fn reset_totals(&mut self) {
        self.totals = TotalStats::default();
    }

    /// The `(neighbour, remote port)` pair behind `(node, port)`.
    #[must_use]
    pub fn peer(&self, node: NodeId, port: Port) -> (NodeId, Port) {
        self.peer[node][port]
    }

    /// Allocates the next run id (also advances the randomness stream).
    pub(crate) fn next_run_id(&mut self) -> u64 {
        let id = self.run_counter;
        self.run_counter += 1;
        id
    }

    /// Folds a finished run into the cumulative totals.
    pub(crate) fn record_run(&mut self, stats: &RunStats) {
        self.totals.record(stats);
    }

    /// Executes one protocol run: `make(v, graph)` builds node `v`'s state
    /// machine.
    ///
    /// # Errors
    /// [`SimError::RoundLimitExceeded`] if the round guard fires,
    /// [`SimError::DuplicateSend`] on a double send.
    ///
    /// # Panics
    /// Panics if an oversize message is sent under
    /// [`ViolationPolicy::Panic`].
    pub fn run<P, F>(&mut self, make: F) -> Result<RunOutcome<P::Output>, SimError>
    where
        P: Protocol,
        F: FnMut(NodeId, &Graph) -> P,
    {
        self.run_impl(make, None, &FaultPlan::default())
    }

    /// As [`Network::run`] but with injected faults (crash-stop nodes
    /// and/or message loss). Crashed nodes stop silently at their crash
    /// round; their `into_output` reflects the state at the crash.
    ///
    /// # Errors
    /// As [`Network::run`] — in particular, protocols without timeouts
    /// typically hit the round guard when a neighbour crashes, which is
    /// itself the measurement.
    pub fn run_faulty<P, F>(
        &mut self,
        make: F,
        faults: &FaultPlan,
    ) -> Result<RunOutcome<P::Output>, SimError>
    where
        P: Protocol,
        F: FnMut(NodeId, &Graph) -> P,
    {
        self.run_impl(make, None, faults)
    }

    /// As [`Network::run`], additionally collecting an execution
    /// [`Trace`] (every send with its width, every halt).
    ///
    /// # Errors
    /// As [`Network::run`].
    pub fn run_traced<P, F>(
        &mut self,
        make: F,
    ) -> Result<(RunOutcome<P::Output>, Trace), SimError>
    where
        P: Protocol,
        F: FnMut(NodeId, &Graph) -> P,
    {
        let mut trace = Trace::new();
        let outcome = self.run_impl(make, Some(&mut trace), &FaultPlan::default())?;
        Ok((outcome, trace))
    }

    fn run_impl<P, F>(
        &mut self,
        mut make: F,
        mut trace: Option<&mut Trace>,
        faults: &FaultPlan,
    ) -> Result<RunOutcome<P::Output>, SimError>
    where
        P: Protocol,
        F: FnMut(NodeId, &Graph) -> P,
    {
        let n = self.graph.node_count();
        let run_id = self.next_run_id();
        let mut fault_rng = rng::node_rng(self.config.seed ^ 0xFA17, run_id, usize::MAX >> 1);
        let crash_round: Vec<Option<usize>> = {
            let mut cr = vec![None; n];
            for &(v, r) in &faults.crashes {
                if v < n {
                    cr[v] = Some(r);
                }
            }
            cr
        };

        let mut protos: Vec<P> = (0..n).map(|v| make(v, self.graph)).collect();
        let mut rngs: Vec<_> = (0..n).map(|v| rng::node_rng(self.config.seed, run_id, v)).collect();
        let mut halted = vec![false; n];
        let mut inbox: Vec<Vec<(Port, P::Msg)>> = (0..n).map(|_| Vec::new()).collect();
        let mut next: Vec<Vec<(Port, P::Msg)>> = (0..n).map(|_| Vec::new()).collect();
        let mut outbox: Vec<(Port, P::Msg)> = Vec::new();
        let mut sent = vec![false; self.graph.max_degree()];
        let mut fault: Option<SimError> = None;
        let mut stats = RunStats::default();

        // Round 0: on_start.
        let mut round = 0usize;
        let mut round_max_bits = 0usize;
        for v in 0..n {
            let mut ctx = Context {
                node: v,
                round,
                graph: self.graph,
                rng: &mut rngs[v],
                outbox: &mut outbox,
                sent: &mut sent,
                halted: &mut halted[v],
                fault: &mut fault,
            };
            protos[v].on_start(&mut ctx);
            self.flush(v, round, &mut outbox, &mut sent, &halted, &mut next, &mut stats, &mut round_max_bits, trace.as_deref_mut(), faults.loss, &mut fault_rng);
            if halted[v] {
                if let Some(t) = trace.as_deref_mut() {
                    t.record(TraceEvent::Halt { round, node: v });
                }
            }
            if let Some(err) = fault.take() {
                return Err(err);
            }
        }
        stats.rounds += 1;
        stats.charged_rounds += self.charge(round_max_bits);

        let mut quiet_rounds = 0usize;
        let mut last_messages = stats.messages;
        loop {
            if halted.iter().all(|&h| h) {
                break;
            }
            if let Some(k) = self.config.quiescence {
                if stats.messages == last_messages && next.iter().all(Vec::is_empty) {
                    quiet_rounds += 1;
                    if quiet_rounds >= k {
                        break; // message-driven protocols are done
                    }
                } else {
                    quiet_rounds = 0;
                }
                last_messages = stats.messages;
            }
            if round >= self.config.max_rounds {
                return Err(SimError::RoundLimitExceeded {
                    limit: self.config.max_rounds,
                    running: halted.iter().filter(|&&h| !h).count(),
                });
            }
            round += 1;
            round_max_bits = 0;
            std::mem::swap(&mut inbox, &mut next);
            for v in 0..n {
                if crash_round[v] == Some(round) && !halted[v] {
                    halted[v] = true; // crash-stop: silent, mid-protocol
                }
                if halted[v] {
                    inbox[v].clear();
                    continue;
                }
                inbox[v].sort_by_key(|&(p, _)| p);
                let mut ctx = Context {
                    node: v,
                    round,
                    graph: self.graph,
                    rng: &mut rngs[v],
                    outbox: &mut outbox,
                    sent: &mut sent,
                    halted: &mut halted[v],
                    fault: &mut fault,
                };
                protos[v].on_round(&mut ctx, &inbox[v]);
                inbox[v].clear();
                self.flush(v, round, &mut outbox, &mut sent, &halted, &mut next, &mut stats, &mut round_max_bits, trace.as_deref_mut(), faults.loss, &mut fault_rng);
                if halted[v] {
                    if let Some(t) = trace.as_deref_mut() {
                        t.record(TraceEvent::Halt { round, node: v });
                    }
                }
                if let Some(err) = fault.take() {
                    return Err(err);
                }
            }
            stats.rounds += 1;
            stats.charged_rounds += self.charge(round_max_bits);
        }

        self.totals.record(&stats);
        Ok(RunOutcome { outputs: protos.into_iter().map(Protocol::into_output).collect(), stats })
    }

    /// Delivers `v`'s outbox into `next`, recording statistics.
    #[allow(clippy::too_many_arguments)]
    fn flush<M: BitSize>(
        &self,
        v: NodeId,
        round: usize,
        outbox: &mut Vec<(Port, M)>,
        sent: &mut [bool],
        halted: &[bool],
        next: &mut [Vec<(Port, M)>],
        stats: &mut RunStats,
        round_max_bits: &mut usize,
        mut trace: Option<&mut Trace>,
        loss: f64,
        fault_rng: &mut rand::rngs::StdRng,
    ) {
        for (port, msg) in outbox.drain(..) {
            sent[port] = false;
            let bits = msg.bit_size();
            stats.messages += 1;
            stats.total_bits += bits as u64;
            stats.max_message_bits = stats.max_message_bits.max(bits);
            *round_max_bits = (*round_max_bits).max(bits);
            let mut oversize = false;
            if let Model::Congest { bits: budget } = self.config.model {
                if bits > budget {
                    oversize = true;
                    match self.config.violation {
                        ViolationPolicy::Panic => panic!(
                            "CONGEST violation: node {v} sent {bits} bits over port {port} (budget {budget})"
                        ),
                        ViolationPolicy::Record => stats.violations += 1,
                    }
                }
            }
            let (u, q) = self.peer[v][port];
            if let Some(t) = trace.as_deref_mut() {
                t.record(TraceEvent::Send { round, from: v, port, to: u, bits, oversize });
            }
            let lost = loss > 0.0 && {
                use rand::RngExt;
                fault_rng.random_bool(loss.clamp(0.0, 1.0))
            };
            if !halted[u] && !lost {
                next[u].push((q, msg));
            }
        }
    }

    /// Charged cost of a round whose widest message had `max_bits` bits.
    fn charge(&self, max_bits: usize) -> usize {
        match (self.config.cost, self.config.model) {
            (CostModel::Pipelined, Model::Congest { bits }) if max_bits > 0 => {
                max_bits.div_ceil(bits).max(1)
            }
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dam_graph::generators;

    /// Token passing around a directed cycle for a fixed number of laps.
    struct RingToken {
        laps: usize,
        holder: bool,
        received: usize,
    }

    impl Protocol for RingToken {
        type Msg = u32;
        type Output = usize;

        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if self.holder {
                // Port 1 of node v on a cycle built by `generators::cycle`
                // leads to v+1 for interior construction order; just use
                // port 0 consistently — direction does not matter for the
                // test, we only count hops.
                ctx.send(0, 1);
            }
        }

        fn on_round(&mut self, ctx: &mut Context<'_, u32>, inbox: &[(Port, u32)]) {
            for &(port, hops) in inbox {
                self.received += 1;
                if (hops as usize) < self.laps {
                    // Forward out the other port.
                    let out = if port == 0 { 1 } else { 0 };
                    ctx.send(out, hops + 1);
                }
            }
            if ctx.round() > self.laps {
                ctx.halt();
            }
        }

        fn into_output(self) -> usize {
            self.received
        }
    }

    #[test]
    fn token_travels_and_stats_add_up() {
        let g = generators::cycle(6);
        let mut net = Network::new(&g, SimConfig::local().seed(3));
        let out = net
            .run(|v, _| RingToken { laps: 12, holder: v == 0, received: 0 })
            .unwrap();
        // 12 hops = 12 messages forwarded (1 initial + 11 forwards).
        assert_eq!(out.stats.messages, 12);
        assert_eq!(out.stats.total_bits, 12 * 32);
        assert_eq!(out.stats.max_message_bits, 32);
        assert_eq!(out.stats.violations, 0);
        let total_received: usize = out.outputs.iter().sum();
        assert_eq!(total_received, 12);
        assert_eq!(net.totals().runs, 1);
    }

    #[test]
    fn congest_violations_are_recorded() {
        struct Blaster;
        impl Protocol for Blaster {
            type Msg = Vec<u64>;
            type Output = ();
            fn on_start(&mut self, ctx: &mut Context<'_, Vec<u64>>) {
                ctx.broadcast(vec![0u64; 10]); // 640 bits
            }
            fn on_round(&mut self, ctx: &mut Context<'_, Vec<u64>>, _: &[(Port, Vec<u64>)]) {
                ctx.halt();
            }
            fn into_output(self) {}
        }
        let g = generators::complete(4);
        let mut net = Network::new(&g, SimConfig::congest(64));
        let out = net.run(|_, _| Blaster).unwrap();
        assert_eq!(out.stats.violations, 12); // 4 nodes × 3 neighbours
        assert_eq!(out.stats.max_message_bits, 640);
    }

    #[test]
    #[should_panic(expected = "CONGEST violation")]
    fn congest_violations_can_panic() {
        struct Blaster;
        impl Protocol for Blaster {
            type Msg = Vec<u64>;
            type Output = ();
            fn on_start(&mut self, ctx: &mut Context<'_, Vec<u64>>) {
                ctx.broadcast(vec![0u64; 10]);
            }
            fn on_round(&mut self, ctx: &mut Context<'_, Vec<u64>>, _: &[(Port, Vec<u64>)]) {
                ctx.halt();
            }
            fn into_output(self) {}
        }
        let g = generators::complete(3);
        let mut net = Network::new(&g, SimConfig::congest(64).violation(ViolationPolicy::Panic));
        let _ = net.run(|_, _| Blaster);
    }

    #[test]
    fn pipelined_cost_charges_wide_rounds() {
        struct WideOnce;
        impl Protocol for WideOnce {
            type Msg = Vec<u64>;
            type Output = ();
            fn on_start(&mut self, ctx: &mut Context<'_, Vec<u64>>) {
                if ctx.id() == 0 {
                    ctx.send(0, vec![0u64; 4]); // 256 bits
                }
            }
            fn on_round(&mut self, ctx: &mut Context<'_, Vec<u64>>, _: &[(Port, Vec<u64>)]) {
                ctx.halt();
            }
            fn into_output(self) {}
        }
        let g = generators::path(3);
        let mut net = Network::new(
            &g,
            SimConfig::congest(64).cost(CostModel::Pipelined),
        );
        let out = net.run(|_, _| WideOnce).unwrap();
        // Round 0 carried a 256-bit message over a 64-bit budget: 4
        // charged; round 1 is quiet: 1 charged.
        assert_eq!(out.stats.rounds, 2);
        assert_eq!(out.stats.charged_rounds, 5);
    }

    #[test]
    fn round_limit_guards_nontermination() {
        struct Forever;
        impl Protocol for Forever {
            type Msg = ();
            type Output = ();
            fn on_round(&mut self, _: &mut Context<'_, ()>, _: &[(Port, ())]) {}
            fn into_output(self) {}
        }
        let g = generators::path(2);
        let mut net = Network::new(&g, SimConfig::local().max_rounds(10));
        let err = net.run(|_, _| Forever).unwrap_err();
        assert!(matches!(err, SimError::RoundLimitExceeded { limit: 10, running: 2 }));
    }

    #[test]
    fn duplicate_send_is_an_error() {
        struct Doubler;
        impl Protocol for Doubler {
            type Msg = u8;
            type Output = ();
            fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
                ctx.send(0, 1);
                ctx.send(0, 2);
            }
            fn on_round(&mut self, ctx: &mut Context<'_, u8>, _: &[(Port, u8)]) {
                ctx.halt();
            }
            fn into_output(self) {}
        }
        let g = generators::path(2);
        let mut net = Network::new(&g, SimConfig::local());
        let err = net.run(|_, _| Doubler).unwrap_err();
        assert!(matches!(err, SimError::DuplicateSend { node: 0, port: 0, round: 0 }));
    }

    #[test]
    fn determinism_across_identical_networks() {
        use rand::RngExt;
        struct Coins {
            flips: Vec<bool>,
        }
        impl Protocol for Coins {
            type Msg = ();
            type Output = Vec<bool>;
            fn on_round(&mut self, ctx: &mut Context<'_, ()>, _: &[(Port, ())]) {
                self.flips.push(ctx.rng().random_bool(0.5));
                if ctx.round() == 20 {
                    ctx.halt();
                }
            }
            fn into_output(self) -> Vec<bool> {
                self.flips
            }
        }
        let g = generators::gnp(10, 0.3, &mut rand::rngs::StdRng::seed_from_u64(1));
        let run = |seed| {
            let mut net = Network::new(&g, SimConfig::local().seed(seed));
            net.run(|_, _| Coins { flips: Vec::new() }).unwrap().outputs
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn traced_run_matches_stats() {
        let g = generators::cycle(6);
        let mut net = Network::new(&g, SimConfig::local().seed(3));
        let (out, trace) = net
            .run_traced(|v, _| RingToken { laps: 12, holder: v == 0, received: 0 })
            .unwrap();
        let sends = trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Send { .. }))
            .count();
        assert_eq!(sends as u64, out.stats.messages);
        // Every node halts eventually, and the trace knows when.
        for v in g.nodes() {
            assert!(trace.halt_round(v).is_some(), "node {v} never halted in trace");
        }
        assert!(trace.summary().contains("round"));
    }

    #[test]
    fn peer_mapping_is_involutive() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let g = generators::gnp(20, 0.2, &mut rng);
        let net = Network::new(&g, SimConfig::local());
        for v in g.nodes() {
            for p in 0..g.degree(v) {
                let (u, q) = net.peer(v, p);
                assert_eq!(net.peer(u, q), (v, p), "peer mapping broken at ({v},{p})");
                assert_eq!(g.port(v, p).1, g.port(u, q).1, "ports disagree on edge");
            }
        }
    }

    use rand::SeedableRng;
}
