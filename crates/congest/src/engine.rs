//! The sequential deterministic engine.

use dam_graph::{BitSet, Graph, NodeId, Topology};

use crate::error::SimError;
use crate::message::{BitSize, CorruptKind, MsgClass};
use crate::model::{CostModel, Model, SimConfig, ViolationPolicy};
use crate::node::{Context, Port, Protocol};
use crate::rng;
use crate::stats::{Integrity, RunStats, TotalStats};
use crate::trace::{ChurnKind, FaultKind, Trace, TraceEvent};

/// Per-link fault parameters overriding the plan-wide probabilities on
/// one undirected edge (both directions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Loss probability on this link.
    pub loss: f64,
    /// Duplication probability on this link.
    pub dup: f64,
    /// Reordering (extra-delay) probability on this link.
    pub reorder: f64,
}

/// A round-windowed *squall*: a burst of extra message loss and/or
/// corruption overlaid on the plan-wide probabilities while
/// `from_round ≤ round ≤ until_round`. Within the window the effective
/// probability on every link is the **max** of the base and the squall
/// (overlapping squalls compose the same way); outside it the base
/// applies untouched, so a plan whose squalls never fire draws the
/// exact same fault pattern as one without them.
///
/// Squalls model *drifting* network weather — burst-then-quiet loss,
/// corruption storms — the regimes where a statically tuned transport
/// must lose on one end or the other and an adaptive one
/// ([`crate::transport::Resilient::with_policy`]) can track the drift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Squall {
    /// First round of the window (inclusive).
    pub from_round: usize,
    /// Last round of the window (inclusive).
    pub until_round: usize,
    /// Loss probability floor inside the window.
    pub loss: f64,
    /// Corruption probability floor inside the window.
    pub corrupt: f64,
}

/// A round-windowed network partition: while `from_round ≤ round ≤
/// until_round`, every message crossing the boundary between `side` and
/// its complement is dropped. Traffic within either side is unaffected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// First round of the partition window (inclusive).
    pub from_round: usize,
    /// Last round of the partition window (inclusive).
    pub until_round: usize,
    /// The nodes on one side of the cut.
    pub side: Vec<NodeId>,
}

/// Injected faults for a run (the paper assumes fault-freedom — §2's
/// footnote — so these exist to *measure* how load-bearing that
/// assumption is, and to exercise the recovery stack: the
/// [`crate::transport::Resilient`] wrapper and `dam-core`'s matching
/// repair).
///
/// Every injection is drawn from a dedicated RNG keyed on `(seed, run)`,
/// so runs are deterministic and replayable; each injection is also
/// recorded as a [`TraceEvent::Fault`] when tracing. An all-default plan
/// makes [`Network::run_faulty`] behave exactly like [`Network::run`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Crash-stop faults: `(node, round)` — the node executes rounds
    /// `< round` normally, then silently stops (no announcement, its
    /// pending messages are dropped). At most one entry per node.
    pub crashes: Vec<(NodeId, usize)>,
    /// Crash-*recover* faults: `(node, round)` — a previously crashed
    /// node reboots at `round` with wiped state (a fresh protocol
    /// instance runs its `on_start` as if it were round 0). Each entry
    /// must pair with a `crashes` entry at a strictly earlier round.
    pub recoveries: Vec<(NodeId, usize)>,
    /// Independent per-message loss probability (network-wide default).
    pub loss: f64,
    /// Independent per-message duplication probability: the duplicate
    /// copy arrives one round after the original.
    pub dup: f64,
    /// Independent per-message reordering probability: the message is
    /// delayed by 1–3 extra rounds instead of arriving next round.
    pub reorder: f64,
    /// Independent per-message *corruption* probability: the message is
    /// damaged in transit with a [`CorruptKind`] drawn from the same
    /// keyed fault stream. Damaged messages are re-decoded through
    /// [`BitSize::corrupted`]; undecodable ones are dropped at delivery.
    /// Either way the event is counted in
    /// [`RunStats::corruptions`] and traced as
    /// [`FaultKind::Corrupt`].
    pub corrupt: f64,
    /// Byzantine *equivocators*: nodes whose every outgoing message is
    /// independently tampered per port (different neighbours observe
    /// mutually inconsistent traffic). Tampering draws come from
    /// [`rng::byz_rng`], so they are deterministic and engine-agnostic.
    /// At most one entry per node; counted in
    /// [`RunStats::equivocations`], traced as
    /// [`FaultKind::Equivocate`].
    pub equivocators: Vec<NodeId>,
    /// Byzantine *liars*: nodes that report a corrupted output register
    /// after the run. The engine treats outputs as opaque, so lying is
    /// applied by output-aware callers (`dam-core`'s certification
    /// pipeline derives the lie deterministically from the seed); the
    /// engine only validates the list (in-range, no duplicates) so a
    /// plan is checked in one place.
    pub liars: Vec<NodeId>,
    /// Per-link overrides of `loss`/`dup`/`reorder` (applied to both
    /// directions of the named edge). Corruption has no per-link
    /// override — it is network-wide.
    pub links: Vec<LinkFault>,
    /// Round-windowed partitions.
    pub partitions: Vec<Partition>,
    /// Round-windowed loss/corruption bursts overlaid on the base
    /// probabilities (effective = max of base and every active squall).
    pub squalls: Vec<Squall>,
}

impl FaultPlan {
    /// A plan that only crashes the given nodes.
    #[must_use]
    pub fn crashes(crashes: Vec<(NodeId, usize)>) -> FaultPlan {
        FaultPlan { crashes, ..FaultPlan::default() }
    }

    /// A plan that only loses messages with probability `loss`.
    #[must_use]
    pub fn lossy(loss: f64) -> FaultPlan {
        FaultPlan { loss, ..FaultPlan::default() }
    }

    /// Adds crash-recover entries (builder style).
    #[must_use]
    pub fn with_recoveries(mut self, recoveries: Vec<(NodeId, usize)>) -> FaultPlan {
        self.recoveries = recoveries;
        self
    }

    /// Sets the network-wide duplication probability (builder style).
    #[must_use]
    pub fn with_dup(mut self, dup: f64) -> FaultPlan {
        self.dup = dup;
        self
    }

    /// Sets the network-wide reordering probability (builder style).
    #[must_use]
    pub fn with_reorder(mut self, reorder: f64) -> FaultPlan {
        self.reorder = reorder;
        self
    }

    /// Sets the network-wide corruption probability (builder style).
    #[must_use]
    pub fn with_corrupt(mut self, corrupt: f64) -> FaultPlan {
        self.corrupt = corrupt;
        self
    }

    /// Marks nodes as Byzantine equivocators (builder style).
    #[must_use]
    pub fn with_equivocators(mut self, equivocators: Vec<NodeId>) -> FaultPlan {
        self.equivocators = equivocators;
        self
    }

    /// Marks nodes as register liars (builder style).
    #[must_use]
    pub fn with_liars(mut self, liars: Vec<NodeId>) -> FaultPlan {
        self.liars = liars;
        self
    }

    /// Adds a per-link override (builder style).
    #[must_use]
    pub fn with_link(mut self, link: LinkFault) -> FaultPlan {
        self.links.push(link);
        self
    }

    /// Adds a partition window (builder style).
    #[must_use]
    pub fn with_partition(mut self, partition: Partition) -> FaultPlan {
        self.partitions.push(partition);
        self
    }

    /// Adds a squall window (builder style).
    #[must_use]
    pub fn with_squall(mut self, squall: Squall) -> FaultPlan {
        self.squalls.push(squall);
        self
    }

    /// Whether the plan injects nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.recoveries.is_empty()
            && self.loss == 0.0
            && self.dup == 0.0
            && self.reorder == 0.0
            && self.corrupt == 0.0
            && self.equivocators.is_empty()
            && self.liars.is_empty()
            && self.links.is_empty()
            && self.partitions.is_empty()
            && self.squalls.is_empty()
    }

    /// Checks the plan against `graph` before a run.
    ///
    /// # Errors
    /// [`SimError::InvalidFaultPlan`] if any probability is outside
    /// `[0, 1]` (or non-finite), a node id is out of range, a node is
    /// crashed or recovered twice, a recovery lacks a strictly earlier
    /// crash, an equivocator or liar id is out of range or listed
    /// twice, a link names a non-edge or a self-loop, or a partition
    /// window is inverted.
    ///
    /// Generic over [`Topology`], so implicit graphs validate without
    /// materializing; a `&Graph` coerces at the call site.
    pub fn validate(&self, graph: &dyn Topology) -> Result<(), SimError> {
        let n = graph.node_count();
        let invalid = |reason: String| Err(SimError::InvalidFaultPlan { reason });
        let check_prob = |p: f64, what: &str| -> Result<(), SimError> {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(SimError::InvalidFaultPlan {
                    reason: format!("{what} probability {p} outside [0, 1]"),
                });
            }
            Ok(())
        };
        check_prob(self.loss, "loss")?;
        check_prob(self.dup, "duplication")?;
        check_prob(self.reorder, "reordering")?;
        check_prob(self.corrupt, "corruption")?;

        for (what, list) in [("equivocator", &self.equivocators), ("liar", &self.liars)] {
            let mut seen = vec![false; n];
            for &v in list {
                if v >= n {
                    return invalid(format!(
                        "{what} list names node {v}, but the graph has {n} nodes"
                    ));
                }
                if seen[v] {
                    return invalid(format!("node {v} appears twice in the {what} list"));
                }
                seen[v] = true;
            }
        }

        let mut crash_round = vec![None; n];
        for &(v, r) in &self.crashes {
            if v >= n {
                return invalid(format!("crash names node {v}, but the graph has {n} nodes"));
            }
            if crash_round[v].is_some() {
                return invalid(format!("node {v} is crashed twice"));
            }
            crash_round[v] = Some(r);
        }
        let mut recovered = vec![false; n];
        for &(v, r) in &self.recoveries {
            if v >= n {
                return invalid(format!("recovery names node {v}, but the graph has {n} nodes"));
            }
            if recovered[v] {
                return invalid(format!("node {v} is recovered twice"));
            }
            recovered[v] = true;
            match crash_round[v] {
                None => {
                    return invalid(format!("node {v} recovers without ever crashing"));
                }
                Some(cr) if r <= cr => {
                    return invalid(format!(
                        "node {v} recovers at round {r}, not after its crash at round {cr}"
                    ));
                }
                Some(_) => {}
            }
        }
        for link in &self.links {
            check_prob(link.loss, "link loss")?;
            check_prob(link.dup, "link duplication")?;
            check_prob(link.reorder, "link reordering")?;
            if link.a >= n || link.b >= n {
                return invalid(format!(
                    "link ({}, {}) names a node outside the graph's {n} nodes",
                    link.a, link.b
                ));
            }
            if link.a == link.b {
                return invalid(format!("link ({}, {}) is a self-loop", link.a, link.b));
            }
            if !graph.incident(link.a).any(|(_, u, _)| u == link.b) {
                return invalid(format!("link ({}, {}) is not an edge", link.a, link.b));
            }
        }
        for part in &self.partitions {
            if part.from_round > part.until_round {
                return invalid(format!(
                    "partition window [{}, {}] is inverted",
                    part.from_round, part.until_round
                ));
            }
            if let Some(&v) = part.side.iter().find(|&&v| v >= n) {
                return invalid(format!(
                    "partition side names node {v}, but the graph has {n} nodes"
                ));
            }
        }
        for squall in &self.squalls {
            check_prob(squall.loss, "squall loss")?;
            check_prob(squall.corrupt, "squall corruption")?;
            if squall.from_round > squall.until_round {
                return invalid(format!(
                    "squall window [{}, {}] is inverted",
                    squall.from_round, squall.until_round
                ));
            }
        }
        Ok(())
    }
}

/// One scheduled topology event of a [`ChurnPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// The round at whose start the event takes effect (must be ≥ 1;
    /// round 0 is `on_start` on the initial topology).
    pub round: usize,
    /// What changes.
    pub kind: ChurnKind,
}

/// Scheduled topology churn for a run: a dynamic graph expressed as
/// presence masks over an immutable *universe* graph.
///
/// The engine's [`Graph`] is immutable, so churn is modelled by
/// presence: `absent_nodes`/`absent_edges` name the parts of the
/// universe missing at round 0, and `events` toggles presence at
/// round boundaries — edges flap up and down, absent nodes [`join`]
/// with fresh state, present nodes [`leave`] permanently. Plans are
/// validated up front (like [`FaultPlan`]) and every applied event is
/// recorded as a [`TraceEvent::Churn`] when tracing and counted in
/// [`RunStats::churn_events`]. Messages sent across an absent edge or
/// towards an absent node are dropped at the sender and counted in
/// [`RunStats::churn_drops`]; in-flight deliveries complete.
///
/// [`join`]: ChurnKind::Join
/// [`leave`]: ChurnKind::Leave
#[derive(Debug, Clone, Default)]
pub struct ChurnPlan {
    /// Nodes absent from the initial topology (may [`ChurnKind::Join`]
    /// later).
    pub absent_nodes: Vec<NodeId>,
    /// Universe edges absent from the initial topology (may come up via
    /// [`ChurnKind::EdgeUp`]).
    pub absent_edges: Vec<usize>,
    /// Round-stamped topology events, applied in round order (plan order
    /// within a round).
    pub events: Vec<ChurnEvent>,
}

impl ChurnPlan {
    /// A plan consisting only of scheduled events (full initial
    /// topology).
    #[must_use]
    pub fn events(events: Vec<ChurnEvent>) -> ChurnPlan {
        ChurnPlan { events, ..ChurnPlan::default() }
    }

    /// Marks nodes absent at round 0 (builder style).
    #[must_use]
    pub fn with_absent_nodes(mut self, nodes: Vec<NodeId>) -> ChurnPlan {
        self.absent_nodes = nodes;
        self
    }

    /// Marks universe edges absent at round 0 (builder style).
    #[must_use]
    pub fn with_absent_edges(mut self, edges: Vec<usize>) -> ChurnPlan {
        self.absent_edges = edges;
        self
    }

    /// Schedules one event (builder style).
    #[must_use]
    pub fn with_event(mut self, round: usize, kind: ChurnKind) -> ChurnPlan {
        self.events.push(ChurnEvent { round, kind });
        self
    }

    /// Whether the plan changes nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.absent_nodes.is_empty() && self.absent_edges.is_empty() && self.events.is_empty()
    }

    /// The round of the last scheduled event (0 if none).
    #[must_use]
    pub fn last_event_round(&self) -> usize {
        self.events.iter().map(|e| e.round).max().unwrap_or(0)
    }

    /// Events sorted by round, stably (plan order within a round) — the
    /// order in which the engine applies them.
    fn sorted_events(&self) -> Vec<ChurnEvent> {
        let mut evs = self.events.clone();
        evs.sort_by_key(|e| e.round);
        evs
    }

    /// Node/edge presence at round 0 as word-packed masks:
    /// `(node_present, edge_present)`.
    #[must_use]
    pub fn initial_presence_on(&self, topo: &dyn Topology) -> (BitSet, BitSet) {
        let mut node_present = BitSet::filled(topo.node_count(), true);
        for &v in &self.absent_nodes {
            node_present.set(v, false);
        }
        let mut edge_present = BitSet::filled(topo.edge_count(), true);
        for &e in &self.absent_edges {
            edge_present.set(e, false);
        }
        (node_present, edge_present)
    }

    /// Node/edge presence after every event has been applied — the
    /// topology a maintenance pass must be maximal on at the end.
    #[must_use]
    pub fn final_presence_on(&self, topo: &dyn Topology) -> (BitSet, BitSet) {
        let (mut node_present, mut edge_present) = self.initial_presence_on(topo);
        for ev in self.sorted_events() {
            match ev.kind {
                ChurnKind::EdgeUp { edge } => edge_present.set(edge, true),
                ChurnKind::EdgeDown { edge } => edge_present.set(edge, false),
                ChurnKind::Join { node } => node_present.set(node, true),
                ChurnKind::Leave { node } => node_present.set(node, false),
            }
        }
        (node_present, edge_present)
    }

    /// Legacy `Vec<bool>` form of [`ChurnPlan::initial_presence_on`].
    #[doc(hidden)]
    #[must_use]
    pub fn initial_presence(&self, graph: &Graph) -> (Vec<bool>, Vec<bool>) {
        let (nodes, edges) = self.initial_presence_on(graph);
        (nodes.to_bools(), edges.to_bools())
    }

    /// Legacy `Vec<bool>` form of [`ChurnPlan::final_presence_on`].
    #[doc(hidden)]
    #[must_use]
    pub fn final_presence(&self, graph: &Graph) -> (Vec<bool>, Vec<bool>) {
        let (nodes, edges) = self.final_presence_on(graph);
        (nodes.to_bools(), edges.to_bools())
    }

    /// Checks the plan against `graph` before a run.
    ///
    /// # Errors
    /// [`SimError::InvalidChurnPlan`] if an id is out of range, a node
    /// or edge is marked absent twice, an event is scheduled at round 0,
    /// or the event sequence is inconsistent when replayed in order: a
    /// join of a present (or permanently left) node, a leave of an
    /// absent node, an edge-up of a present edge, or an edge-down of an
    /// absent edge.
    ///
    /// Generic over [`Topology`]; a `&Graph` coerces at the call site.
    pub fn validate(&self, graph: &dyn Topology) -> Result<(), SimError> {
        let n = graph.node_count();
        let m = graph.edge_count();
        let invalid = |reason: String| Err(SimError::InvalidChurnPlan { reason });
        let mut node_present = vec![true; n];
        for &v in &self.absent_nodes {
            if v >= n {
                return invalid(format!("absent node {v}, but the graph has {n} nodes"));
            }
            if !node_present[v] {
                return invalid(format!("node {v} is marked absent twice"));
            }
            node_present[v] = false;
        }
        let mut edge_present = vec![true; m];
        for &e in &self.absent_edges {
            if e >= m {
                return invalid(format!("absent edge {e}, but the graph has {m} edges"));
            }
            if !edge_present[e] {
                return invalid(format!("edge {e} is marked absent twice"));
            }
            edge_present[e] = false;
        }
        let mut left = vec![false; n];
        for ev in self.sorted_events() {
            if ev.round == 0 {
                return invalid(format!(
                    "event {:?} scheduled at round 0 (events start at round 1)",
                    ev.kind
                ));
            }
            match ev.kind {
                ChurnKind::EdgeUp { edge } => {
                    if edge >= m {
                        return invalid(format!("edge-up names edge {edge} of {m}"));
                    }
                    if edge_present[edge] {
                        return invalid(format!(
                            "edge {edge} comes up at round {} but is already present",
                            ev.round
                        ));
                    }
                    edge_present[edge] = true;
                }
                ChurnKind::EdgeDown { edge } => {
                    if edge >= m {
                        return invalid(format!("edge-down names edge {edge} of {m}"));
                    }
                    if !edge_present[edge] {
                        return invalid(format!(
                            "edge {edge} goes down at round {} but is already absent",
                            ev.round
                        ));
                    }
                    edge_present[edge] = false;
                }
                ChurnKind::Join { node } => {
                    if node >= n {
                        return invalid(format!("join names node {node} of {n}"));
                    }
                    if left[node] {
                        return invalid(format!(
                            "node {node} joins at round {} after leaving permanently",
                            ev.round
                        ));
                    }
                    if node_present[node] {
                        return invalid(format!(
                            "node {node} joins at round {} but is already present",
                            ev.round
                        ));
                    }
                    node_present[node] = true;
                }
                ChurnKind::Leave { node } => {
                    if node >= n {
                        return invalid(format!("leave names node {node} of {n}"));
                    }
                    if !node_present[node] {
                        return invalid(format!(
                            "node {node} leaves at round {} but is not present",
                            ev.round
                        ));
                    }
                    node_present[node] = false;
                    left[node] = true;
                }
            }
        }
        Ok(())
    }

    /// Checks compatibility with a [`FaultPlan`] run alongside: churned
    /// nodes (absent, joining or leaving) must be disjoint from crashed
    /// or recovering nodes, since a recovery must not resurrect a node
    /// that left the topology.
    ///
    /// # Errors
    /// [`SimError::InvalidChurnPlan`] on overlap.
    pub fn validate_against(&self, faults: &FaultPlan) -> Result<(), SimError> {
        let mut churned: Vec<NodeId> = self.absent_nodes.clone();
        for ev in &self.events {
            match ev.kind {
                ChurnKind::Join { node } | ChurnKind::Leave { node } => churned.push(node),
                ChurnKind::EdgeUp { .. } | ChurnKind::EdgeDown { .. } => {}
            }
        }
        for &v in &churned {
            if faults.crashes.iter().any(|&(u, _)| u == v)
                || faults.recoveries.iter().any(|&(u, _)| u == v)
            {
                return Err(SimError::InvalidChurnPlan {
                    reason: format!("node {v} appears in both the churn and the fault plan"),
                });
            }
        }
        Ok(())
    }
}

/// Everything a run derives from its validated [`FaultPlan`] and
/// [`ChurnPlan`] before round 0.
///
/// Shared by the sequential engine and the sharded parallel executor
/// ([`crate::parallel`]) so both apply crash/recovery schedules, churn
/// presence and per-message fault draws from identical, immutable data —
/// the structural half of the bit-identical-execution guarantee.
pub(crate) struct RunPlan {
    /// Round at which each node crash-stops, if any.
    pub(crate) crash_round: Vec<Option<usize>>,
    /// Round at which each crashed node reboots, if any.
    pub(crate) recovery_round: Vec<Option<usize>>,
    /// No run may end before this round: the last recovery or topology
    /// event that could wake a halted network up again.
    pub(crate) last_wake: usize,
    /// Node presence at round 0 (word-packed; one bit per node).
    pub(crate) node_present0: BitSet,
    /// Edge presence at round 0 (word-packed; one bit per edge).
    pub(crate) edge_present0: BitSet,
    /// Round at which each absent node joins, if any.
    pub(crate) join_round: Vec<Option<usize>>,
    /// Round at which each node leaves permanently, if any.
    pub(crate) leave_round: Vec<Option<usize>>,
    /// Edge up/down events, sorted by round (plan order within one).
    pub(crate) edge_events: Vec<ChurnEvent>,
    /// `(loss, dup, reorder, corrupt)` effective on messages leaving
    /// `[v][port]`.
    fx: Vec<Vec<(f64, f64, f64, f64)>>,
    /// Whether each node is a Byzantine equivocator (one bit per node).
    pub(crate) equivocator: BitSet,
    /// `(from_round, until_round, side-membership)` per partition.
    partitions: Vec<(usize, usize, Vec<bool>)>,
    /// Round-windowed loss/corruption overlays.
    squalls: Vec<Squall>,
    /// Whether duplication/reordering can occur (pending-queue gate).
    pub(crate) any_dup_or_reorder: bool,
}

/// The fate of one message under [`RunPlan::message_fate`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct MsgFate {
    /// Dropped by the lossy channel (nothing else applies).
    pub(crate) lost: bool,
    /// A duplicate copy trails the original by one round.
    pub(crate) duplicated: bool,
    /// Extra delay rounds, if reordered (the original is not delivered).
    pub(crate) delayed: Option<usize>,
    /// The message is damaged in transit with this corruption shape.
    pub(crate) corrupt: Option<CorruptKind>,
}

impl RunPlan {
    /// Validates both plans against `graph` and derives the run-time
    /// schedules.
    pub(crate) fn build(
        graph: &dyn Topology,
        faults: &FaultPlan,
        churn: &ChurnPlan,
    ) -> Result<RunPlan, SimError> {
        faults.validate(graph)?;
        churn.validate(graph)?;
        churn.validate_against(faults)?;
        let n = graph.node_count();
        let mut crash_round = vec![None; n];
        for &(v, r) in &faults.crashes {
            crash_round[v] = Some(r);
        }
        let mut recovery_round = vec![None; n];
        for &(v, r) in &faults.recoveries {
            recovery_round[v] = Some(r);
        }
        let last_recovery = faults.recoveries.iter().map(|&(_, r)| r).max().unwrap_or(0);
        let last_wake = last_recovery.max(churn.last_event_round());
        let (node_present0, edge_present0) = churn.initial_presence_on(graph);
        let mut join_round = vec![None; n];
        let mut leave_round = vec![None; n];
        let mut edge_events = Vec::new();
        for ev in churn.sorted_events() {
            match ev.kind {
                ChurnKind::Join { node } => join_round[node] = Some(ev.round),
                ChurnKind::Leave { node } => leave_round[node] = Some(ev.round),
                ChurnKind::EdgeUp { .. } | ChurnKind::EdgeDown { .. } => edge_events.push(ev),
            }
        }
        let mut fx: Vec<Vec<(f64, f64, f64, f64)>> = (0..n)
            .map(|v| {
                vec![(faults.loss, faults.dup, faults.reorder, faults.corrupt); graph.degree(v)]
            })
            .collect();
        for link in &faults.links {
            for (v, u) in [(link.a, link.b), (link.b, link.a)] {
                for (p, w, _) in graph.incident(v) {
                    if w == u {
                        fx[v][p] = (link.loss, link.dup, link.reorder, faults.corrupt);
                    }
                }
            }
        }
        let mut equivocator = BitSet::new(n);
        for &v in &faults.equivocators {
            equivocator.set(v, true);
        }
        let partitions = faults
            .partitions
            .iter()
            .map(|p| {
                let mut side = vec![false; n];
                for &v in &p.side {
                    side[v] = true;
                }
                (p.from_round, p.until_round, side)
            })
            .collect();
        let any_dup_or_reorder = fx.iter().flatten().any(|&(_, d, r, _)| d > 0.0 || r > 0.0);
        Ok(RunPlan {
            crash_round,
            recovery_round,
            last_wake,
            node_present0,
            edge_present0,
            join_round,
            leave_round,
            edge_events,
            fx,
            equivocator,
            partitions,
            squalls: faults.squalls.clone(),
            any_dup_or_reorder,
        })
    }

    /// Whether `v → u` crosses an active partition cut in `round`.
    pub(crate) fn partitioned(&self, round: usize, v: NodeId, u: NodeId) -> bool {
        self.partitions
            .iter()
            .any(|&(from, until, ref side)| round >= from && round <= until && side[v] != side[u])
    }

    /// The fate of the message leaving `(v, port)` in `round`.
    ///
    /// Drawn from a dedicated RNG keyed on the message coordinates
    /// (see [`rng::fault_rng`]), so the result is independent of flush
    /// order — any engine, sharded or sequential, sees the same fate for
    /// the same message. Draw order within a message mirrors the gates:
    /// loss first (a lost message draws nothing else), then duplication,
    /// then reordering (plus its delay), then corruption (decision plus
    /// kind). A plan with `corrupt = 0` therefore draws the exact same
    /// loss/dup/reorder pattern as before corruption existed.
    pub(crate) fn message_fate(
        &self,
        seed: u64,
        run: u64,
        round: usize,
        v: NodeId,
        port: Port,
    ) -> MsgFate {
        let (mut loss, dup, reorder, mut corrupt) = self.fx[v][port];
        // Squall overlay: a pure function of the round, so the effective
        // probabilities (and hence the keyed per-message draws) are
        // identical on every backend. A message outside every window
        // sees the base probabilities bit-for-bit.
        for s in &self.squalls {
            if round >= s.from_round && round <= s.until_round {
                loss = loss.max(s.loss);
                corrupt = corrupt.max(s.corrupt);
            }
        }
        if loss <= 0.0 && dup <= 0.0 && reorder <= 0.0 && corrupt <= 0.0 {
            return MsgFate::default();
        }
        use rand::RngExt;
        let mut rng = rng::fault_rng(seed, run, round, v, port);
        if loss > 0.0 && rng.random_bool(loss) {
            return MsgFate { lost: true, ..MsgFate::default() };
        }
        let duplicated = dup > 0.0 && rng.random_bool(dup);
        let delayed = if reorder > 0.0 && rng.random_bool(reorder) {
            Some(1 + rng.random_range(0..3usize))
        } else {
            None
        };
        let corrupt = if corrupt > 0.0 && rng.random_bool(corrupt) {
            Some(CorruptKind::draw(&mut rng))
        } else {
            None
        };
        MsgFate { lost: false, duplicated, delayed, corrupt }
    }

    /// Whether node `u` counts as present in `round` from the viewpoint
    /// of `observer`'s execution slot.
    ///
    /// The sequential engine mutates its presence array in node order
    /// within a round, so a same-round join/leave of `u` is visible to a
    /// sender `v` only when `u < v`. This reconstruction lets shards
    /// evaluate the identical predicate without sharing mutable state.
    pub(crate) fn present_seen(&self, u: NodeId, round: usize, observer: NodeId) -> bool {
        let mut present = self.node_present0[u];
        if let Some(jr) = self.join_round[u] {
            if jr < round || (jr == round && u < observer) {
                present = true;
            }
        }
        if let Some(lr) = self.leave_round[u] {
            if lr < round || (lr == round && u < observer) {
                present = false;
            }
        }
        present
    }
}

/// The result of one protocol run.
#[derive(Debug, Clone)]
pub struct RunOutcome<O> {
    /// Per-node outputs, indexed by node id.
    pub outputs: Vec<O>,
    /// Statistics of this run.
    pub stats: RunStats,
    /// Per-node transport-session exports, indexed by node id — sampled
    /// once via [`Protocol::session`] after the last round, before the
    /// outputs were collected. `None` for protocols without a session
    /// (the plain engine's default). Checkpointing reads these to
    /// validate quiescence and record incarnation state; nothing in the
    /// engine consumes them.
    pub sessions: Vec<Option<crate::node::SessionState>>,
}

/// A synchronous network over a graph topology.
///
/// One `Network` can execute many protocol runs (the *phases* of a larger
/// algorithm); [`Network::totals`] accumulates their combined cost, which
/// is the quantity the paper's theorems bound.
pub struct Network<'g> {
    graph: &'g dyn Topology,
    config: SimConfig,
    run_counter: u64,
    totals: TotalStats,
    /// `peer[v][p]` = `(u, q)`: port `p` of `v` is port `q` of `u`.
    peer: Vec<Vec<(NodeId, Port)>>,
    /// Virtual-time accounting of the most recent asynchronous run
    /// ([`crate::Backend::Async`]); `None` before the first one.
    async_info: Option<crate::asynchrony::AsyncInfo>,
    /// Telemetry middleware: when set, every run streams one
    /// [`crate::telemetry::RoundSample`] per executed round into the
    /// sink. Sampling reads the already-final counters at the round
    /// boundary and writes nothing back, so attaching a sink cannot
    /// perturb a run (the differential suites assert this).
    sink: Option<crate::telemetry::SinkHandle>,
}

impl<'g> Network<'g> {
    /// Creates a network over any [`Topology`] — a materialized CSR
    /// [`Graph`] or an implicit generator; `&Graph` coerces at the call
    /// site.
    #[must_use]
    pub fn new(graph: &'g dyn Topology, config: SimConfig) -> Network<'g> {
        let n = graph.node_count();
        let mut peer = vec![Vec::new(); n];
        // Map each edge to its port at each endpoint, then link the two.
        let mut port_at = vec![(usize::MAX, usize::MAX); graph.edge_count()];
        for v in 0..n {
            for (p, _, e) in graph.incident(v) {
                let (a, _) = graph.endpoints(e);
                if v == a && port_at[e].0 == usize::MAX {
                    port_at[e].0 = p;
                } else {
                    port_at[e].1 = p;
                }
            }
        }
        for (v, slot) in peer.iter_mut().enumerate() {
            *slot = graph
                .incident(v)
                .map(|(p, u, e)| {
                    let (a, _) = graph.endpoints(e);
                    let q = if v == a && port_at[e].0 == p { port_at[e].1 } else { port_at[e].0 };
                    let _ = p;
                    (u, q)
                })
                .collect();
        }
        Network {
            graph,
            config,
            run_counter: 0,
            totals: TotalStats::default(),
            peer,
            async_info: None,
            sink: None,
        }
    }

    /// Attaches (or, with `None`, detaches) a per-round telemetry sink.
    /// Applies to every subsequent run on any backend.
    pub fn set_stats_sink(&mut self, sink: Option<crate::telemetry::SinkHandle>) {
        self.sink = sink;
    }

    /// The attached telemetry sink, if any (shared with the sharded
    /// executor).
    pub(crate) fn stats_sink(&self) -> Option<&crate::telemetry::SinkHandle> {
        self.sink.as_ref()
    }

    /// Streams one cumulative sample for the round that just completed.
    /// Read-only over the counters; a no-op without a sink.
    pub(crate) fn sample_round(
        &self,
        run: u64,
        round: usize,
        stats: &RunStats,
        integrity: &Integrity,
    ) {
        if let Some(sink) = &self.sink {
            sink.record(crate::telemetry::RoundSample {
                run,
                round: round as u64,
                messages: stats.messages,
                retransmissions: stats.retransmissions,
                heartbeats: stats.heartbeats,
                maintenance: stats.maintenance,
                churn_events: stats.churn_events,
                churn_drops: stats.churn_drops,
                suspected: integrity.suspected,
                rejected: integrity.rejected,
                quarantined: integrity.quarantined,
                outstanding: integrity.outstanding,
            });
        }
    }

    /// The underlying topology.
    #[must_use]
    pub fn graph(&self) -> &'g dyn Topology {
        self.graph
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> SimConfig {
        self.config
    }

    /// Cumulative statistics over all runs so far.
    #[must_use]
    pub fn totals(&self) -> TotalStats {
        self.totals
    }

    /// Resets the cumulative statistics (not the run counter, so
    /// randomness stays fresh).
    pub fn reset_totals(&mut self) {
        self.totals = TotalStats::default();
    }

    /// The `(neighbour, remote port)` pair behind `(node, port)`.
    #[must_use]
    pub fn peer(&self, node: NodeId, port: Port) -> (NodeId, Port) {
        self.peer[node][port]
    }

    /// Allocates the next run id (also advances the randomness stream).
    pub(crate) fn next_run_id(&mut self) -> u64 {
        let id = self.run_counter;
        self.run_counter += 1;
        id
    }

    /// Virtual-time accounting (makespan, synchronizer markers, timing
    /// drops) of the most recent successful [`crate::Backend::Async`]
    /// run; `None` if no asynchronous run has completed yet.
    #[must_use]
    pub fn async_info(&self) -> Option<crate::asynchrony::AsyncInfo> {
        self.async_info
    }

    /// Folds a finished run into the cumulative totals.
    pub(crate) fn record_run(&mut self, stats: &RunStats) {
        self.totals.record(stats);
    }

    /// Executes one protocol run: `make(v, graph)` builds node `v`'s state
    /// machine.
    ///
    /// # Errors
    /// [`SimError::RoundLimitExceeded`] if the round guard fires,
    /// [`SimError::DuplicateSend`] on a double send.
    ///
    /// # Panics
    /// Panics if an oversize message is sent under
    /// [`ViolationPolicy::Panic`].
    pub fn run<P, F>(&mut self, make: F) -> Result<RunOutcome<P::Output>, SimError>
    where
        P: Protocol,
        F: FnMut(NodeId, &dyn Topology) -> P,
    {
        self.run_impl(make, None, &FaultPlan::default(), &ChurnPlan::default(), false)
    }

    /// As [`Network::run`] but with injected faults: crash-stop and
    /// crash-recover nodes, network-wide or per-link message
    /// loss/duplication/reordering, and round-windowed partitions.
    /// Crashed nodes stop silently at their crash round; their
    /// `into_output` reflects the state at the crash (or at the end, if
    /// they recovered). All injections are deterministic in
    /// `(seed, run)`.
    ///
    /// # Errors
    /// As [`Network::run`] — in particular, protocols without timeouts
    /// typically hit the round guard when a neighbour crashes, which is
    /// itself the measurement. Additionally
    /// [`SimError::InvalidFaultPlan`] if the plan fails
    /// [`FaultPlan::validate`].
    pub fn run_faulty<P, F>(
        &mut self,
        make: F,
        faults: &FaultPlan,
    ) -> Result<RunOutcome<P::Output>, SimError>
    where
        P: Protocol,
        F: FnMut(NodeId, &dyn Topology) -> P,
    {
        self.run_impl(make, None, faults, &ChurnPlan::default(), false)
    }

    /// As [`Network::run_faulty`], additionally collecting a [`Trace`]
    /// in which every injected fault appears as a
    /// [`TraceEvent::Fault`].
    ///
    /// # Errors
    /// As [`Network::run_faulty`].
    pub fn run_faulty_traced<P, F>(
        &mut self,
        make: F,
        faults: &FaultPlan,
    ) -> Result<(RunOutcome<P::Output>, Trace), SimError>
    where
        P: Protocol,
        F: FnMut(NodeId, &dyn Topology) -> P,
    {
        let mut trace = Trace::new();
        let outcome =
            self.run_impl(make, Some(&mut trace), faults, &ChurnPlan::default(), false)?;
        Ok((outcome, trace))
    }

    /// As [`Network::run_faulty`] but additionally applying a
    /// [`ChurnPlan`]: the topology changes mid-run — edges flap, absent
    /// nodes join with fresh state (empty registers, fresh randomness),
    /// present nodes leave permanently. Events are applied at round
    /// boundaries in round order (plan order within a round); the run
    /// does not end before the last scheduled event has been applied.
    ///
    /// # Errors
    /// As [`Network::run_faulty`]; additionally
    /// [`SimError::InvalidChurnPlan`] if the churn plan fails
    /// [`ChurnPlan::validate`] or overlaps the fault plan's crash set
    /// ([`ChurnPlan::validate_against`]).
    pub fn run_churned<P, F>(
        &mut self,
        make: F,
        faults: &FaultPlan,
        churn: &ChurnPlan,
    ) -> Result<RunOutcome<P::Output>, SimError>
    where
        P: Protocol,
        F: FnMut(NodeId, &dyn Topology) -> P,
    {
        self.run_impl(make, None, faults, churn, false)
    }

    /// As [`Network::run_churned`], additionally collecting a [`Trace`]
    /// in which every applied topology event appears as a
    /// [`TraceEvent::Churn`].
    ///
    /// # Errors
    /// As [`Network::run_churned`].
    pub fn run_churned_traced<P, F>(
        &mut self,
        make: F,
        faults: &FaultPlan,
        churn: &ChurnPlan,
    ) -> Result<(RunOutcome<P::Output>, Trace), SimError>
    where
        P: Protocol,
        F: FnMut(NodeId, &dyn Topology) -> P,
    {
        let mut trace = Trace::new();
        let outcome = self.run_impl(make, Some(&mut trace), faults, churn, false)?;
        Ok((outcome, trace))
    }

    /// As [`Network::run_churned`] but on the asynchronous backend
    /// ([`crate::Backend::Async`]): node steps are scheduled in virtual
    /// time under the configured [`crate::DelayModel`], synchronised by
    /// the α-synchronizer of Awerbuch (the paper's footnote 2). With
    /// [`SimConfig::patience`] unset the outputs, statistics (except the
    /// extra [`RunStats::markers`]), traces and error paths are
    /// bit-identical to [`Network::run_churned`] — the synchronizer
    /// contract, enforced by the `async_equiv` differential suite. With
    /// a patience budget set, frames arriving after the budget are
    /// dropped, which trades bit-identity for bounded progress (see
    /// [`Network::async_info`] for the drop count).
    ///
    /// # Errors
    /// As [`Network::run_churned`].
    pub fn run_async_churned<P, F>(
        &mut self,
        make: F,
        faults: &FaultPlan,
        churn: &ChurnPlan,
    ) -> Result<RunOutcome<P::Output>, SimError>
    where
        P: Protocol,
        F: FnMut(NodeId, &dyn Topology) -> P,
    {
        self.run_impl(make, None, faults, churn, true)
    }

    /// As [`Network::run_async_churned`], additionally collecting a
    /// [`Trace`].
    ///
    /// # Errors
    /// As [`Network::run_async_churned`].
    pub fn run_async_churned_traced<P, F>(
        &mut self,
        make: F,
        faults: &FaultPlan,
        churn: &ChurnPlan,
    ) -> Result<(RunOutcome<P::Output>, Trace), SimError>
    where
        P: Protocol,
        F: FnMut(NodeId, &dyn Topology) -> P,
    {
        let mut trace = Trace::new();
        let outcome = self.run_impl(make, Some(&mut trace), faults, churn, true)?;
        Ok((outcome, trace))
    }

    /// As [`Network::run`], additionally collecting an execution
    /// [`Trace`] (every send with its width, every halt).
    ///
    /// # Errors
    /// As [`Network::run`].
    pub fn run_traced<P, F>(&mut self, make: F) -> Result<(RunOutcome<P::Output>, Trace), SimError>
    where
        P: Protocol,
        F: FnMut(NodeId, &dyn Topology) -> P,
    {
        let mut trace = Trace::new();
        let outcome = self.run_impl(
            make,
            Some(&mut trace),
            &FaultPlan::default(),
            &ChurnPlan::default(),
            false,
        )?;
        Ok((outcome, trace))
    }

    fn run_impl<P, F>(
        &mut self,
        mut make: F,
        mut trace: Option<&mut Trace>,
        faults: &FaultPlan,
        churn: &ChurnPlan,
        async_mode: bool,
    ) -> Result<RunOutcome<P::Output>, SimError>
    where
        P: Protocol,
        F: FnMut(NodeId, &dyn Topology) -> P,
    {
        let plan = RunPlan::build(self.graph, faults, churn)?;
        let n = self.graph.node_count();
        let run_id = self.next_run_id();
        // The asynchronous backend runs the *same* payload pipeline with
        // a virtual-time layer on top: the α-synchronizer contract makes
        // message contents independent of timing, so the layer only has
        // to track per-node completion times, count the synchronizer's
        // empty-round markers, and — under a patience budget — decide
        // which frames arrive too late to be delivered.
        let mut timing: Option<crate::asynchrony::AsyncTiming> = if async_mode {
            self.async_info = None;
            Some(crate::asynchrony::AsyncTiming::new(
                self.graph,
                &self.peer,
                self.config.delay,
                self.config.patience,
                self.config.seed,
                run_id,
            ))
        } else {
            None
        };
        // All halted + `plan.last_wake` reached ⇒ nothing can wake up
        // again (neither a recovery nor a scheduled topology event).
        let last_wake = plan.last_wake;
        let mut node_present = plan.node_present0.clone();
        let mut edge_present = plan.edge_present0.clone();
        let crash_round = &plan.crash_round;
        let recovery_round = &plan.recovery_round;
        let join_round = &plan.join_round;
        let leave_round = &plan.leave_round;
        let edge_events = &plan.edge_events;
        let mut edge_event_idx = 0usize;

        let mut protos: Vec<P> = (0..n).map(|v| make(v, self.graph)).collect();
        let mut rngs: Vec<_> = (0..n).map(|v| rng::node_rng(self.config.seed, run_id, v)).collect();
        let mut halted = BitSet::new(n);
        let mut inbox: Vec<Vec<(Port, P::Msg)>> = (0..n).map(|_| Vec::new()).collect();
        let mut next: Vec<Vec<(Port, P::Msg)>> = (0..n).map(|_| Vec::new()).collect();
        // Messages duplicated or reordered into a later round:
        // `(delivery_round, receiver, receiver port, send_round, payload)`.
        // The send round is carried so the asynchronous backend can drop
        // every copy of a frame that arrived past its patience deadline.
        let mut pending: Vec<(usize, NodeId, Port, usize, P::Msg)> = Vec::new();
        let mut outbox: Vec<(Port, P::Msg)> = Vec::new();
        let mut sent = vec![false; self.graph.max_degree()];
        let mut fault: Option<SimError> = None;
        let mut stats = RunStats::default();
        // Receiver-side integrity reports (Context::note_rejected /
        // note_quarantined), folded into `stats` after the run so the
        // quiescence detector's frames() view is unaffected.
        let mut integrity = Integrity::default();

        // Round 0: on_start.
        let mut round = 0usize;
        let mut round_max_bits = 0usize;
        for v in 0..n {
            if !node_present[v] {
                // Absent at round 0: silent until it joins (if ever).
                halted.set(v, true);
                continue;
            }
            // The word-packed mask cannot hand out `&mut bool`, so the
            // node's halt flag is copied out for the callback and written
            // back before anyone else can observe it.
            let mut halt_flag = halted[v];
            let mut ctx = Context {
                node: v,
                round,
                graph: self.graph,
                rng: &mut rngs[v],
                outbox: &mut outbox,
                sent: &mut sent,
                halted: &mut halt_flag,
                fault: &mut fault,
                integrity: &mut integrity,
            };
            protos[v].on_start(&mut ctx);
            halted.set(v, halt_flag);
            self.flush(
                v,
                round,
                &mut outbox,
                &mut sent,
                &halted,
                &node_present,
                &edge_present,
                &mut next,
                &mut pending,
                &mut stats,
                &mut round_max_bits,
                trace.as_deref_mut(),
                &plan,
                run_id,
                timing.as_mut(),
            );
            if halted[v] {
                if let Some(t) = trace.as_deref_mut() {
                    t.record(TraceEvent::Halt { round, node: v });
                }
            }
            if let Some(err) = fault.take() {
                return Err(err);
            }
        }
        stats.rounds = stats.rounds.saturating_add(1);
        stats.charged_rounds = stats.charged_rounds.saturating_add(self.charge(round_max_bits));
        self.sample_round(run_id, round, &stats, &integrity);

        let mut quiet_rounds = 0usize;
        let mut last_messages = stats.frames();
        loop {
            if halted.all() && round >= last_wake {
                break;
            }
            if let Some(k) = self.config.quiescence {
                if stats.frames() == last_messages
                    && next.iter().all(Vec::is_empty)
                    && pending.is_empty()
                {
                    quiet_rounds += 1;
                    if quiet_rounds >= k && round >= last_wake {
                        break; // message-driven protocols are done
                    }
                } else {
                    quiet_rounds = 0;
                }
                last_messages = stats.frames();
            }
            if round >= self.config.max_rounds {
                return Err(SimError::RoundLimitExceeded {
                    limit: self.config.max_rounds,
                    running: n - halted.count_ones(),
                });
            }
            round += 1;
            round_max_bits = 0;
            // Advance virtual time before this round's edge events: the
            // frames being timed were sent under the previous topology.
            if let Some(tm) = timing.as_mut() {
                tm.advance(round, &edge_present);
            }
            // Apply this round's edge events before anyone executes;
            // node events are applied at each node's slot below.
            while edge_event_idx < edge_events.len() && edge_events[edge_event_idx].round == round {
                let ev = edge_events[edge_event_idx];
                edge_event_idx += 1;
                match ev.kind {
                    ChurnKind::EdgeUp { edge } => edge_present.set(edge, true),
                    ChurnKind::EdgeDown { edge } => edge_present.set(edge, false),
                    ChurnKind::Join { .. } | ChurnKind::Leave { .. } => unreachable!(),
                }
                stats.churn_events = stats.churn_events.saturating_add(1);
                if let Some(t) = trace.as_deref_mut() {
                    t.record(TraceEvent::Churn { round, kind: ev.kind });
                }
            }
            std::mem::swap(&mut inbox, &mut next);
            // Under a patience budget, frames that resolved late at the
            // receiver are dropped wholesale — the slot payload here and
            // every duplicated/reordered copy at its due round below.
            if let Some(tm) = timing.as_mut() {
                if tm.may_drop() {
                    for (v, slot) in inbox.iter_mut().enumerate() {
                        let peer = &self.peer[v];
                        let before = slot.len();
                        slot.retain(|&(q, _)| !tm.is_dropped(peer[q].0, v, round - 1));
                        tm.count_timing_drops((before - slot.len()) as u64);
                    }
                }
            }
            if !pending.is_empty() {
                // Deliver duplicated/reordered messages that are due.
                let mut rest = Vec::with_capacity(pending.len());
                for (r, u, q, sr, msg) in pending.drain(..) {
                    if r == round {
                        if let Some(tm) = timing.as_mut() {
                            if tm.is_dropped(self.peer[u][q].0, u, sr) {
                                tm.count_timing_drops(1);
                                continue;
                            }
                        }
                        inbox[u].push((q, msg));
                    } else {
                        rest.push((r, u, q, sr, msg));
                    }
                }
                pending = rest;
            }
            for v in 0..n {
                if leave_round[v] == Some(round) {
                    // Permanent leave: silent, like a crash that never
                    // recovers — but also absent from the topology, so
                    // no message can reach its ports again.
                    node_present.set(v, false);
                    halted.set(v, true);
                    inbox[v].clear();
                    stats.churn_events = stats.churn_events.saturating_add(1);
                    if let Some(t) = trace.as_deref_mut() {
                        t.record(TraceEvent::Churn { round, kind: ChurnKind::Leave { node: v } });
                    }
                    continue;
                }
                if join_round[v] == Some(round) {
                    // Join: fresh ports, empty registers, a randomness
                    // stream distinct from both boots and reboots.
                    node_present.set(v, true);
                    protos[v] = make(v, self.graph);
                    rngs[v] = rng::node_rng(self.config.seed ^ 0x1099, run_id, v);
                    halted.set(v, false);
                    inbox[v].clear();
                    stats.churn_events = stats.churn_events.saturating_add(1);
                    if let Some(t) = trace.as_deref_mut() {
                        t.record(TraceEvent::Churn { round, kind: ChurnKind::Join { node: v } });
                    }
                    let mut halt_flag = false;
                    let mut ctx = Context {
                        node: v,
                        round,
                        graph: self.graph,
                        rng: &mut rngs[v],
                        outbox: &mut outbox,
                        sent: &mut sent,
                        halted: &mut halt_flag,
                        fault: &mut fault,
                        integrity: &mut integrity,
                    };
                    protos[v].on_start(&mut ctx);
                    halted.set(v, halt_flag);
                    self.flush(
                        v,
                        round,
                        &mut outbox,
                        &mut sent,
                        &halted,
                        &node_present,
                        &edge_present,
                        &mut next,
                        &mut pending,
                        &mut stats,
                        &mut round_max_bits,
                        trace.as_deref_mut(),
                        &plan,
                        run_id,
                        timing.as_mut(),
                    );
                    if let Some(err) = fault.take() {
                        return Err(err);
                    }
                    continue;
                }
                if crash_round[v] == Some(round) && !halted[v] {
                    halted.set(v, true); // crash-stop: silent, mid-protocol
                    if let Some(t) = trace.as_deref_mut() {
                        t.record(TraceEvent::Fault {
                            round,
                            kind: FaultKind::Crash,
                            node: v,
                            peer: None,
                        });
                    }
                }
                if recovery_round[v] == Some(round) {
                    // Crash-recover: reboot with wiped state and a fresh
                    // randomness stream, then run on_start as a cold boot.
                    protos[v] = make(v, self.graph);
                    rngs[v] = rng::node_rng(self.config.seed ^ 0xB007, run_id, v);
                    halted.set(v, false);
                    inbox[v].clear();
                    if let Some(t) = trace.as_deref_mut() {
                        t.record(TraceEvent::Fault {
                            round,
                            kind: FaultKind::Recover,
                            node: v,
                            peer: None,
                        });
                    }
                    let mut halt_flag = false;
                    let mut ctx = Context {
                        node: v,
                        round,
                        graph: self.graph,
                        rng: &mut rngs[v],
                        outbox: &mut outbox,
                        sent: &mut sent,
                        halted: &mut halt_flag,
                        fault: &mut fault,
                        integrity: &mut integrity,
                    };
                    protos[v].on_start(&mut ctx);
                    halted.set(v, halt_flag);
                    self.flush(
                        v,
                        round,
                        &mut outbox,
                        &mut sent,
                        &halted,
                        &node_present,
                        &edge_present,
                        &mut next,
                        &mut pending,
                        &mut stats,
                        &mut round_max_bits,
                        trace.as_deref_mut(),
                        &plan,
                        run_id,
                        timing.as_mut(),
                    );
                    if let Some(err) = fault.take() {
                        return Err(err);
                    }
                    continue;
                }
                if halted[v] {
                    inbox[v].clear();
                    continue;
                }
                inbox[v].sort_by_key(|&(p, _)| p);
                let mut halt_flag = halted[v];
                let mut ctx = Context {
                    node: v,
                    round,
                    graph: self.graph,
                    rng: &mut rngs[v],
                    outbox: &mut outbox,
                    sent: &mut sent,
                    halted: &mut halt_flag,
                    fault: &mut fault,
                    integrity: &mut integrity,
                };
                protos[v].on_round(&mut ctx, &inbox[v]);
                halted.set(v, halt_flag);
                inbox[v].clear();
                self.flush(
                    v,
                    round,
                    &mut outbox,
                    &mut sent,
                    &halted,
                    &node_present,
                    &edge_present,
                    &mut next,
                    &mut pending,
                    &mut stats,
                    &mut round_max_bits,
                    trace.as_deref_mut(),
                    &plan,
                    run_id,
                    timing.as_mut(),
                );
                if halted[v] {
                    if let Some(t) = trace.as_deref_mut() {
                        t.record(TraceEvent::Halt { round, node: v });
                    }
                }
                if let Some(err) = fault.take() {
                    return Err(err);
                }
            }
            stats.rounds = stats.rounds.saturating_add(1);
            stats.charged_rounds = stats.charged_rounds.saturating_add(self.charge(round_max_bits));
            self.sample_round(run_id, round, &stats, &integrity);
        }

        integrity.fold_into(&mut stats);
        if let Some(tm) = timing.take() {
            let info = tm.finish();
            stats.markers = info.markers;
            self.async_info = Some(info);
        }
        self.totals.record(&stats);
        let sessions = protos.iter().map(Protocol::session).collect();
        Ok(RunOutcome {
            outputs: protos.into_iter().map(Protocol::into_output).collect(),
            stats,
            sessions,
        })
    }

    /// Delivers `v`'s outbox into `next` (or, for duplicated/reordered
    /// messages, into `pending`), recording statistics and applying the
    /// message-level fault model.
    #[allow(clippy::too_many_arguments)]
    fn flush<M: BitSize + Clone>(
        &self,
        v: NodeId,
        round: usize,
        outbox: &mut Vec<(Port, M)>,
        sent: &mut [bool],
        halted: &BitSet,
        node_present: &BitSet,
        edge_present: &BitSet,
        next: &mut [Vec<(Port, M)>],
        pending: &mut Vec<(usize, NodeId, Port, usize, M)>,
        stats: &mut RunStats,
        round_max_bits: &mut usize,
        mut trace: Option<&mut Trace>,
        plan: &RunPlan,
        run_id: u64,
        mut timing: Option<&mut crate::asynchrony::AsyncTiming>,
    ) {
        if let Some(tm) = timing.as_deref_mut() {
            tm.begin_step(v);
        }
        for (port, msg) in outbox.drain(..) {
            sent[port] = false;
            let bits = msg.bit_size();
            match msg.class() {
                MsgClass::Protocol => stats.messages = stats.messages.saturating_add(1),
                MsgClass::Retransmission => {
                    stats.retransmissions = stats.retransmissions.saturating_add(1);
                }
                MsgClass::Heartbeat => stats.heartbeats = stats.heartbeats.saturating_add(1),
                MsgClass::Maintenance => stats.maintenance = stats.maintenance.saturating_add(1),
            }
            stats.total_bits = stats.total_bits.saturating_add(bits as u64);
            stats.max_message_bits = stats.max_message_bits.max(bits);
            *round_max_bits = (*round_max_bits).max(bits);
            let mut oversize = false;
            if let Model::Congest { bits: budget } = self.config.model {
                if bits > budget {
                    oversize = true;
                    match self.config.violation {
                        ViolationPolicy::Panic => panic!(
                            "CONGEST violation: node {v} sent {bits} bits over port {port} (budget {budget})"
                        ),
                        ViolationPolicy::Record => {
                            stats.violations = stats.violations.saturating_add(1);
                        }
                    }
                }
            }
            let (u, q) = self.peer[v][port];
            if let Some(t) = trace.as_deref_mut() {
                t.record(TraceEvent::Send { round, from: v, port, to: u, bits, oversize });
            }
            // An absent edge or receiver swallows the message at the
            // sender — no channel exists, so no fault draw either.
            let e = self.graph.port(v, port).1;
            if !edge_present[e] || !node_present[u] {
                stats.churn_drops = stats.churn_drops.saturating_add(1);
                continue;
            }
            // The synchronizer frame on this port carries a payload, so
            // no marker is owed — whatever the channel does to the
            // payload downstream (loss, corruption, partition) happens
            // inside an already-sent frame.
            if let Some(tm) = timing.as_deref_mut() {
                tm.note_frame(port);
            }
            // An active partition cut swallows the message outright (no
            // randomness involved, so no fault draw here either).
            if plan.partitioned(round, v, u) {
                if let Some(t) = trace.as_deref_mut() {
                    t.record(TraceEvent::Fault {
                        round,
                        kind: FaultKind::Partition,
                        node: v,
                        peer: Some(u),
                    });
                }
                continue;
            }
            // Probabilistic faults, drawn from an RNG keyed on the
            // message coordinates: an all-zero plan draws nothing (so
            // run_faulty degrades to run() exactly) and the draws are
            // independent of flush order (so the sharded executor
            // reproduces them bit-for-bit).
            let fate = plan.message_fate(self.config.seed, run_id, round, v, port);
            if fate.lost {
                if let Some(t) = trace.as_deref_mut() {
                    t.record(TraceEvent::Fault {
                        round,
                        kind: FaultKind::Loss,
                        node: v,
                        peer: Some(u),
                    });
                }
                continue;
            }
            // Byzantine equivocation: a listed sender tampers with every
            // outgoing copy, independently per port, before the channel
            // applies its own faults. Draws come from the dedicated
            // byz stream keyed on the message coordinates.
            let mut msg = msg;
            if plan.equivocator[v] {
                let mut brng = rng::byz_rng(self.config.seed, run_id, round, v, port);
                let kind = CorruptKind::draw(&mut brng);
                stats.equivocations = stats.equivocations.saturating_add(1);
                if let Some(t) = trace.as_deref_mut() {
                    t.record(TraceEvent::Fault {
                        round,
                        kind: FaultKind::Equivocate { kind },
                        node: v,
                        peer: Some(u),
                    });
                }
                match msg.corrupted(kind, &mut brng) {
                    Some(m) => msg = m,
                    // Tampering destroyed decodability: the frame never
                    // reaches the receiver (counted and traced above).
                    None => continue,
                }
            }
            // Channel corruption drawn by the fault plan: the damaged
            // value replaces the original (duplicates carry the damage
            // too — the channel corrupted the frame, not one copy).
            if let Some(kind) = fate.corrupt {
                let mut crng = rng::corrupt_rng(self.config.seed, run_id, round, v, port);
                stats.corruptions = stats.corruptions.saturating_add(1);
                if let Some(t) = trace.as_deref_mut() {
                    t.record(TraceEvent::Fault {
                        round,
                        kind: FaultKind::Corrupt { kind },
                        node: v,
                        peer: Some(u),
                    });
                }
                match msg.corrupted(kind, &mut crng) {
                    Some(m) => msg = m,
                    None => continue,
                }
            }
            if fate.duplicated {
                if let Some(t) = trace.as_deref_mut() {
                    t.record(TraceEvent::Fault {
                        round,
                        kind: FaultKind::Duplicate,
                        node: v,
                        peer: Some(u),
                    });
                }
                // The duplicate trails the original by one round.
                pending.push((round + 2, u, q, round, msg.clone()));
            }
            if let Some(delay) = fate.delayed {
                if let Some(t) = trace.as_deref_mut() {
                    t.record(TraceEvent::Fault {
                        round,
                        kind: FaultKind::Reorder { delay },
                        node: v,
                        peer: Some(u),
                    });
                }
                pending.push((round + 1 + delay, u, q, round, msg));
                continue;
            }
            if !halted[u] {
                next[u].push((q, msg));
            }
        }
        if let Some(tm) = timing {
            tm.end_step(v, edge_present, node_present);
        }
    }

    /// Charged cost of a round whose widest message had `max_bits` bits.
    pub(crate) fn charge(&self, max_bits: usize) -> u64 {
        match (self.config.cost, self.config.model) {
            (CostModel::Pipelined, Model::Congest { bits }) if max_bits > 0 => {
                max_bits.div_ceil(bits).max(1) as u64
            }
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dam_graph::generators;

    /// Token passing around a directed cycle for a fixed number of laps.
    struct RingToken {
        laps: usize,
        holder: bool,
        received: usize,
    }

    impl Protocol for RingToken {
        type Msg = u32;
        type Output = usize;

        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if self.holder {
                // Port 1 of node v on a cycle built by `generators::cycle`
                // leads to v+1 for interior construction order; just use
                // port 0 consistently — direction does not matter for the
                // test, we only count hops.
                ctx.send(0, 1);
            }
        }

        fn on_round(&mut self, ctx: &mut Context<'_, u32>, inbox: &[(Port, u32)]) {
            for &(port, hops) in inbox {
                self.received += 1;
                if (hops as usize) < self.laps {
                    // Forward out the other port.
                    let out = if port == 0 { 1 } else { 0 };
                    ctx.send(out, hops + 1);
                }
            }
            if ctx.round() > self.laps {
                ctx.halt();
            }
        }

        fn into_output(self) -> usize {
            self.received
        }
    }

    #[test]
    fn token_travels_and_stats_add_up() {
        let g = generators::cycle(6);
        let mut net = Network::new(&g, SimConfig::local().seed(3));
        let out = net.run(|v, _| RingToken { laps: 12, holder: v == 0, received: 0 }).unwrap();
        // 12 hops = 12 messages forwarded (1 initial + 11 forwards).
        assert_eq!(out.stats.messages, 12);
        assert_eq!(out.stats.total_bits, 12 * 32);
        assert_eq!(out.stats.max_message_bits, 32);
        assert_eq!(out.stats.violations, 0);
        let total_received: usize = out.outputs.iter().sum();
        assert_eq!(total_received, 12);
        assert_eq!(net.totals().runs, 1);
    }

    #[test]
    fn congest_violations_are_recorded() {
        struct Blaster;
        impl Protocol for Blaster {
            type Msg = Vec<u64>;
            type Output = ();
            fn on_start(&mut self, ctx: &mut Context<'_, Vec<u64>>) {
                ctx.broadcast(vec![0u64; 10]); // 640 bits
            }
            fn on_round(&mut self, ctx: &mut Context<'_, Vec<u64>>, _: &[(Port, Vec<u64>)]) {
                ctx.halt();
            }
            fn into_output(self) {}
        }
        let g = generators::complete(4);
        let mut net = Network::new(&g, SimConfig::congest(64));
        let out = net.run(|_, _| Blaster).unwrap();
        assert_eq!(out.stats.violations, 12); // 4 nodes × 3 neighbours
        assert_eq!(out.stats.max_message_bits, 640);
    }

    #[test]
    #[should_panic(expected = "CONGEST violation")]
    fn congest_violations_can_panic() {
        struct Blaster;
        impl Protocol for Blaster {
            type Msg = Vec<u64>;
            type Output = ();
            fn on_start(&mut self, ctx: &mut Context<'_, Vec<u64>>) {
                ctx.broadcast(vec![0u64; 10]);
            }
            fn on_round(&mut self, ctx: &mut Context<'_, Vec<u64>>, _: &[(Port, Vec<u64>)]) {
                ctx.halt();
            }
            fn into_output(self) {}
        }
        let g = generators::complete(3);
        let mut net = Network::new(&g, SimConfig::congest(64).violation(ViolationPolicy::Panic));
        let _ = net.run(|_, _| Blaster);
    }

    #[test]
    fn pipelined_cost_charges_wide_rounds() {
        struct WideOnce;
        impl Protocol for WideOnce {
            type Msg = Vec<u64>;
            type Output = ();
            fn on_start(&mut self, ctx: &mut Context<'_, Vec<u64>>) {
                if ctx.id() == 0 {
                    ctx.send(0, vec![0u64; 4]); // 256 bits
                }
            }
            fn on_round(&mut self, ctx: &mut Context<'_, Vec<u64>>, _: &[(Port, Vec<u64>)]) {
                ctx.halt();
            }
            fn into_output(self) {}
        }
        let g = generators::path(3);
        let mut net = Network::new(&g, SimConfig::congest(64).cost(CostModel::Pipelined));
        let out = net.run(|_, _| WideOnce).unwrap();
        // Round 0 carried a 256-bit message over a 64-bit budget: 4
        // charged; round 1 is quiet: 1 charged.
        assert_eq!(out.stats.rounds, 2);
        assert_eq!(out.stats.charged_rounds, 5);
    }

    #[test]
    fn round_limit_guards_nontermination() {
        struct Forever;
        impl Protocol for Forever {
            type Msg = ();
            type Output = ();
            fn on_round(&mut self, _: &mut Context<'_, ()>, _: &[(Port, ())]) {}
            fn into_output(self) {}
        }
        let g = generators::path(2);
        let mut net = Network::new(&g, SimConfig::local().max_rounds(10));
        let err = net.run(|_, _| Forever).unwrap_err();
        assert!(matches!(err, SimError::RoundLimitExceeded { limit: 10, running: 2 }));
    }

    #[test]
    fn duplicate_send_is_an_error() {
        struct Doubler;
        impl Protocol for Doubler {
            type Msg = u8;
            type Output = ();
            fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
                ctx.send(0, 1);
                ctx.send(0, 2);
            }
            fn on_round(&mut self, ctx: &mut Context<'_, u8>, _: &[(Port, u8)]) {
                ctx.halt();
            }
            fn into_output(self) {}
        }
        let g = generators::path(2);
        let mut net = Network::new(&g, SimConfig::local());
        let err = net.run(|_, _| Doubler).unwrap_err();
        assert!(matches!(err, SimError::DuplicateSend { node: 0, port: 0, round: 0 }));
    }

    #[test]
    fn determinism_across_identical_networks() {
        use rand::RngExt;
        struct Coins {
            flips: Vec<bool>,
        }
        impl Protocol for Coins {
            type Msg = ();
            type Output = Vec<bool>;
            fn on_round(&mut self, ctx: &mut Context<'_, ()>, _: &[(Port, ())]) {
                self.flips.push(ctx.rng().random_bool(0.5));
                if ctx.round() == 20 {
                    ctx.halt();
                }
            }
            fn into_output(self) -> Vec<bool> {
                self.flips
            }
        }
        let g = generators::gnp(10, 0.3, &mut rand::rngs::StdRng::seed_from_u64(1));
        let run = |seed| {
            let mut net = Network::new(&g, SimConfig::local().seed(seed));
            net.run(|_, _| Coins { flips: Vec::new() }).unwrap().outputs
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn traced_run_matches_stats() {
        let g = generators::cycle(6);
        let mut net = Network::new(&g, SimConfig::local().seed(3));
        let (out, trace) =
            net.run_traced(|v, _| RingToken { laps: 12, holder: v == 0, received: 0 }).unwrap();
        let sends = trace.events().iter().filter(|e| matches!(e, TraceEvent::Send { .. })).count();
        assert_eq!(sends as u64, out.stats.messages);
        // Every node halts eventually, and the trace knows when.
        for v in g.nodes() {
            assert!(trace.halt_round(v).is_some(), "node {v} never halted in trace");
        }
        assert!(trace.summary().contains("round"));
    }

    /// Every node broadcasts its id each round for `rounds` rounds and
    /// counts what it hears — a traffic generator for fault tests.
    struct Chatter {
        rounds: usize,
        heard: usize,
    }

    impl Protocol for Chatter {
        type Msg = u64;
        type Output = usize;

        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            ctx.broadcast(ctx.id() as u64);
        }

        fn on_round(&mut self, ctx: &mut Context<'_, u64>, inbox: &[(Port, u64)]) {
            self.heard += inbox.len();
            if ctx.round() >= self.rounds {
                ctx.halt();
            } else {
                ctx.broadcast(ctx.id() as u64);
            }
        }

        fn into_output(self) -> usize {
            self.heard
        }
    }

    #[test]
    fn fault_plan_validation_rejects_bad_plans() {
        let g = generators::cycle(4);
        let reason = |p: &FaultPlan| match p.validate(&g) {
            Err(SimError::InvalidFaultPlan { reason }) => reason,
            other => panic!("expected InvalidFaultPlan, got {other:?}"),
        };
        assert!(reason(&FaultPlan::lossy(1.5)).contains("outside [0, 1]"));
        assert!(reason(&FaultPlan::lossy(-0.1)).contains("outside [0, 1]"));
        assert!(reason(&FaultPlan::lossy(f64::NAN)).contains("outside [0, 1]"));
        assert!(reason(&FaultPlan::default().with_dup(2.0)).contains("outside [0, 1]"));
        assert!(reason(&FaultPlan::default().with_corrupt(1.01)).contains("outside [0, 1]"));
        assert!(
            reason(&FaultPlan::default().with_corrupt(f64::INFINITY)).contains("outside [0, 1]")
        );
        assert!(reason(&FaultPlan::default().with_equivocators(vec![7])).contains("names node 7"));
        assert!(
            reason(&FaultPlan::default().with_equivocators(vec![1, 1])).contains("appears twice")
        );
        assert!(reason(&FaultPlan::default().with_liars(vec![4])).contains("names node 4"));
        assert!(reason(&FaultPlan::default().with_liars(vec![2, 0, 2])).contains("appears twice"));
        assert!(reason(&FaultPlan::crashes(vec![(1, 3), (1, 5)])).contains("crashed twice"));
        assert!(reason(&FaultPlan::crashes(vec![(9, 3)])).contains("names node 9"));
        assert!(reason(&FaultPlan::default().with_recoveries(vec![(2, 4)]))
            .contains("without ever crashing"));
        assert!(reason(&FaultPlan::crashes(vec![(2, 4)]).with_recoveries(vec![(2, 4)]))
            .contains("not after its crash"));
        assert!(reason(&FaultPlan::default().with_link(LinkFault {
            a: 0,
            b: 2, // cycle(4): 0-2 is not an edge
            loss: 0.5,
            dup: 0.0,
            reorder: 0.0,
        }))
        .contains("not an edge"));
        assert!(reason(&FaultPlan::default().with_partition(Partition {
            from_round: 5,
            until_round: 2,
            side: vec![0],
        }))
        .contains("inverted"));
        assert!(reason(&FaultPlan::default().with_squall(Squall {
            from_round: 0,
            until_round: 9,
            loss: 1.5,
            corrupt: 0.0,
        }))
        .contains("outside [0, 1]"));
        assert!(reason(&FaultPlan::default().with_squall(Squall {
            from_round: 0,
            until_round: 9,
            loss: 0.0,
            corrupt: f64::NAN,
        }))
        .contains("outside [0, 1]"));
        assert!(reason(&FaultPlan::default().with_squall(Squall {
            from_round: 7,
            until_round: 3,
            loss: 0.1,
            corrupt: 0.0,
        }))
        .contains("inverted"));
        // A valid compound plan passes.
        FaultPlan::crashes(vec![(0, 2)])
            .with_recoveries(vec![(0, 5)])
            .with_dup(0.1)
            .with_reorder(0.1)
            .with_corrupt(0.05)
            .with_equivocators(vec![1])
            .with_liars(vec![2, 3])
            .with_partition(Partition { from_round: 1, until_round: 3, side: vec![0, 1] })
            .with_squall(Squall { from_round: 2, until_round: 6, loss: 0.3, corrupt: 0.1 })
            .validate(&g)
            .unwrap();
        // And run_faulty surfaces validation errors.
        let mut net = Network::new(&g, SimConfig::local());
        let err = net
            .run_faulty(|_, _| Chatter { rounds: 3, heard: 0 }, &FaultPlan::lossy(7.0))
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidFaultPlan { .. }));
    }

    #[test]
    fn squall_injects_only_inside_its_window() {
        let g = generators::cycle(4);
        // Certain loss in rounds 2..=3, nothing outside.
        let plan = FaultPlan::default().with_squall(Squall {
            from_round: 2,
            until_round: 3,
            loss: 1.0,
            corrupt: 0.0,
        });
        let mut net = Network::new(&g, SimConfig::local().seed(9));
        let (_, trace) =
            net.run_faulty_traced(|_, _| Chatter { rounds: 6, heard: 0 }, &plan).unwrap();
        let loss_rounds: Vec<usize> = trace
            .faults()
            .filter(|e| matches!(e, TraceEvent::Fault { kind: FaultKind::Loss, .. }))
            .map(TraceEvent::round)
            .collect();
        assert!(!loss_rounds.is_empty(), "squall injected nothing");
        assert!(
            loss_rounds.iter().all(|&r| (2..=3).contains(&r)),
            "loss outside the squall window: {loss_rounds:?}"
        );
    }

    #[test]
    fn dormant_squall_is_bit_identical_to_no_plan() {
        // A squall whose window the run never reaches must not change a
        // single draw: the overlaid probabilities stay zero outside it.
        let g = generators::cycle(4);
        let mut clean = Network::new(&g, SimConfig::local().seed(9));
        let base = clean.run(|_, _| Chatter { rounds: 5, heard: 0 }).unwrap();
        let plan = FaultPlan::default().with_squall(Squall {
            from_round: 10_000,
            until_round: 10_001,
            loss: 1.0,
            corrupt: 1.0,
        });
        let mut net = Network::new(&g, SimConfig::local().seed(9));
        let out = net.run_faulty(|_, _| Chatter { rounds: 5, heard: 0 }, &plan).unwrap();
        assert_eq!(out.outputs, base.outputs);
        assert_eq!(out.stats, base.stats);
    }

    #[test]
    fn squall_overlay_takes_max_of_base_and_window() {
        // Base corruption + a corruption squall: inside the window the
        // squall dominates; the base still applies outside.
        let g = generators::path(2);
        let plan = FaultPlan::default().with_corrupt(0.0).with_squall(Squall {
            from_round: 0,
            until_round: 2,
            loss: 0.0,
            corrupt: 1.0,
        });
        let mut net = Network::new(&g, SimConfig::local().seed(5));
        let (out, trace) =
            net.run_faulty_traced(|_, _| Chatter { rounds: 5, heard: 0 }, &plan).unwrap();
        let corrupt_rounds: Vec<usize> = trace
            .faults()
            .filter(|e| matches!(e, TraceEvent::Fault { kind: FaultKind::Corrupt { .. }, .. }))
            .map(TraceEvent::round)
            .collect();
        assert!(out.stats.corruptions > 0, "storm corrupted nothing");
        assert!(corrupt_rounds.iter().all(|&r| r <= 2), "corruption past the window");
    }

    #[test]
    fn attached_sink_observes_without_perturbing() {
        use crate::telemetry::{RecordingSink, SinkHandle};
        use std::sync::Arc;
        let g = generators::cycle(4);
        let plan = FaultPlan::lossy(0.2);
        let mut bare = Network::new(&g, SimConfig::local().seed(3).max_rounds(5_000));
        let base = bare.run_faulty(|_, _| Chatter { rounds: 5, heard: 0 }, &plan).unwrap();
        let sink = Arc::new(RecordingSink::new());
        let mut net = Network::new(&g, SimConfig::local().seed(3).max_rounds(5_000));
        net.set_stats_sink(Some(SinkHandle::from(Arc::clone(&sink))));
        let out = net.run_faulty(|_, _| Chatter { rounds: 5, heard: 0 }, &plan).unwrap();
        // Observation changed nothing…
        assert_eq!(out.outputs, base.outputs);
        assert_eq!(out.stats, base.stats);
        // …and recorded one cumulative sample per executed round, ending
        // exactly on the run's final counters.
        let samples = sink.samples();
        assert_eq!(samples.len() as u64, out.stats.rounds);
        let final_sample = samples.last().unwrap();
        assert_eq!(final_sample.messages, out.stats.messages);
        assert_eq!(final_sample.round + 1, out.stats.rounds);
        assert!(samples.windows(2).all(|w| w[0].round + 1 == w[1].round), "round gap");
        assert!(
            samples.windows(2).all(|w| w[0].messages <= w[1].messages),
            "cumulative counters must be monotone"
        );
    }

    #[test]
    fn crash_recover_reboots_with_wiped_state() {
        // Node 0 crashes at round 2 and reboots at round 5: after the
        // reboot it chats again from scratch, so its neighbours hear
        // from it both before the crash and after the recovery.
        let g = generators::cycle(4);
        let plan = FaultPlan::crashes(vec![(0, 2)]).with_recoveries(vec![(0, 5)]);
        let mut net = Network::new(&g, SimConfig::local().seed(11));
        let (out, trace) =
            net.run_faulty_traced(|_, _| Chatter { rounds: 8, heard: 0 }, &plan).unwrap();
        let crash = trace
            .faults()
            .find(|e| matches!(e, TraceEvent::Fault { kind: FaultKind::Crash, .. }))
            .expect("crash traced");
        let recover = trace
            .faults()
            .find(|e| matches!(e, TraceEvent::Fault { kind: FaultKind::Recover, .. }))
            .expect("recovery traced");
        assert_eq!(crash.round(), 2);
        assert_eq!(recover.round(), 5);
        // Node 0 sends in rounds 0..2 (pre-crash) and 5..=8 (post-boot).
        let send_rounds: Vec<usize> = trace.sends_of(0).map(TraceEvent::round).collect();
        assert!(send_rounds.iter().any(|&r| r < 2), "pre-crash sends missing");
        assert!(send_rounds.iter().any(|&r| r >= 5), "post-recovery sends missing");
        assert!(
            !send_rounds.iter().any(|&r| (2..5).contains(&r)),
            "node 0 sent while crashed: {send_rounds:?}"
        );
        // The rebooted node restarts its own round count from the boot,
        // so it halts later than the others but still halts.
        assert!(out.outputs.iter().all(|&h| h > 0));
    }

    #[test]
    fn duplication_delivers_extra_copies() {
        let g = generators::path(2);
        let plan = FaultPlan::default().with_dup(1.0);
        let mut net = Network::new(&g, SimConfig::local().seed(5));
        let (out, trace) =
            net.run_faulty_traced(|_, _| Chatter { rounds: 4, heard: 0 }, &plan).unwrap();
        let dups = trace
            .faults()
            .filter(|e| matches!(e, TraceEvent::Fault { kind: FaultKind::Duplicate, .. }))
            .count();
        assert!(dups > 0, "no duplications traced");
        // With certain duplication every received message is doubled
        // (minus copies still in flight at halt time), so nodes hear
        // strictly more than the fault-free count.
        let mut clean = Network::new(&g, SimConfig::local().seed(5));
        let base = clean.run(|_, _| Chatter { rounds: 4, heard: 0 }).unwrap();
        let heard: usize = out.outputs.iter().sum();
        let base_heard: usize = base.outputs.iter().sum();
        assert!(heard > base_heard, "duplicates not delivered ({heard} vs {base_heard})");
    }

    #[test]
    fn reordering_delays_delivery() {
        let g = generators::path(2);
        let plan = FaultPlan::default().with_reorder(1.0);
        let mut net = Network::new(&g, SimConfig::local().seed(6));
        let (out, trace) =
            net.run_faulty_traced(|_, _| Chatter { rounds: 6, heard: 0 }, &plan).unwrap();
        let delays: Vec<usize> = trace
            .faults()
            .filter_map(|e| match e {
                TraceEvent::Fault { kind: FaultKind::Reorder { delay }, .. } => Some(*delay),
                _ => None,
            })
            .collect();
        assert!(!delays.is_empty(), "no reorderings traced");
        assert!(delays.iter().all(|&d| (1..=3).contains(&d)));
        // Delayed messages still arrive (those landing before the halt).
        assert!(out.outputs.iter().sum::<usize>() > 0);
    }

    #[test]
    fn partition_blocks_cross_traffic_only() {
        // cycle(4) split into {0,1} | {2,3} for rounds 0..=2: edges 1-2
        // and 3-0 are cut, edges 0-1 and 2-3 keep working.
        let g = generators::cycle(4);
        let plan = FaultPlan::default().with_partition(Partition {
            from_round: 0,
            until_round: 2,
            side: vec![0, 1],
        });
        let mut net = Network::new(&g, SimConfig::local().seed(9));
        let (_, trace) =
            net.run_faulty_traced(|_, _| Chatter { rounds: 6, heard: 0 }, &plan).unwrap();
        let cut: Vec<(usize, NodeId, Option<NodeId>)> = trace
            .faults()
            .filter_map(|e| match e {
                TraceEvent::Fault { round, kind: FaultKind::Partition, node, peer } => {
                    Some((*round, *node, *peer))
                }
                _ => None,
            })
            .collect();
        assert!(!cut.is_empty(), "partition dropped nothing");
        let side = [true, true, false, false];
        for &(r, v, u) in &cut {
            assert!(r <= 2, "drop outside the window at round {r}");
            let u = u.expect("message fault has a peer");
            assert_ne!(side[v], side[u], "dropped a same-side message {v}->{u}");
        }
        // Rounds past the window are unaffected: no partition drops.
        assert!(cut.iter().all(|&(r, _, _)| r <= 2));
    }

    #[test]
    fn per_link_faults_hit_only_that_link() {
        let g = generators::path(3); // edges 0-1, 1-2
        let plan = FaultPlan::default().with_link(LinkFault {
            a: 0,
            b: 1,
            loss: 1.0,
            dup: 0.0,
            reorder: 0.0,
        });
        let mut net = Network::new(&g, SimConfig::local().seed(13));
        let (out, trace) =
            net.run_faulty_traced(|_, _| Chatter { rounds: 4, heard: 0 }, &plan).unwrap();
        for e in trace.faults() {
            if let TraceEvent::Fault { kind: FaultKind::Loss, node, peer, .. } = e {
                let pair = (*node, peer.unwrap());
                assert!(pair == (0, 1) || pair == (1, 0), "loss on the wrong link: {pair:?}");
            }
        }
        // Node 0 hears nothing (its only link is dead both ways), node 2
        // still hears node 1 over the healthy link.
        assert_eq!(out.outputs[0], 0);
        assert!(out.outputs[2] > 0);
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        let g = generators::gnp(16, 0.3, &mut rand::rngs::StdRng::seed_from_u64(2));
        let plan = FaultPlan::lossy(0.2)
            .with_dup(0.1)
            .with_reorder(0.15)
            .with_partition(Partition { from_round: 2, until_round: 4, side: (0..8).collect() });
        let go = || {
            let mut net = Network::new(&g, SimConfig::local().seed(21));
            net.run_faulty_traced(|_, _| Chatter { rounds: 10, heard: 0 }, &plan).unwrap()
        };
        let (out_a, trace_a) = go();
        let (out_b, trace_b) = go();
        assert_eq!(out_a.outputs, out_b.outputs);
        assert_eq!(out_a.stats, out_b.stats);
        assert_eq!(trace_a.events(), trace_b.events());
    }

    #[test]
    fn churn_plan_validation_rejects_bad_plans() {
        let g = generators::cycle(4); // edges 0: 0-1, 1: 1-2, 2: 2-3, 3: 3-0
        let reason = |p: &ChurnPlan| match p.validate(&g) {
            Err(SimError::InvalidChurnPlan { reason }) => reason,
            other => panic!("expected InvalidChurnPlan, got {other:?}"),
        };
        assert!(reason(&ChurnPlan::default().with_absent_nodes(vec![9])).contains("absent node 9"));
        assert!(reason(&ChurnPlan::default().with_absent_nodes(vec![1, 1])).contains("twice"));
        assert!(reason(&ChurnPlan::default().with_absent_edges(vec![7])).contains("absent edge 7"));
        assert!(reason(&ChurnPlan::default().with_event(0, ChurnKind::EdgeDown { edge: 0 }))
            .contains("round 0"));
        assert!(reason(&ChurnPlan::default().with_event(3, ChurnKind::EdgeUp { edge: 0 }))
            .contains("already present"));
        assert!(reason(
            &ChurnPlan::default()
                .with_absent_edges(vec![1])
                .with_event(3, ChurnKind::EdgeDown { edge: 1 })
        )
        .contains("already absent"));
        assert!(reason(&ChurnPlan::default().with_event(3, ChurnKind::Join { node: 2 }))
            .contains("already present"));
        assert!(reason(
            &ChurnPlan::default()
                .with_event(2, ChurnKind::Leave { node: 2 })
                .with_event(5, ChurnKind::Join { node: 2 })
        )
        .contains("after leaving permanently"));
        assert!(reason(
            &ChurnPlan::default()
                .with_absent_nodes(vec![3])
                .with_event(4, ChurnKind::Leave { node: 3 })
        )
        .contains("not present"));
        // A consistent flap sequence passes.
        ChurnPlan::default()
            .with_absent_nodes(vec![0])
            .with_event(2, ChurnKind::EdgeDown { edge: 1 })
            .with_event(4, ChurnKind::EdgeUp { edge: 1 })
            .with_event(3, ChurnKind::Join { node: 0 })
            .with_event(6, ChurnKind::Leave { node: 0 })
            .validate(&g)
            .unwrap();
        // Overlap with the fault plan is rejected.
        let churn = ChurnPlan::default().with_event(2, ChurnKind::Leave { node: 1 });
        let faults = FaultPlan::crashes(vec![(1, 3)]);
        assert!(matches!(churn.validate_against(&faults), Err(SimError::InvalidChurnPlan { .. })));
        let mut net = Network::new(&g, SimConfig::local());
        let err =
            net.run_churned(|_, _| Chatter { rounds: 5, heard: 0 }, &faults, &churn).unwrap_err();
        assert!(matches!(err, SimError::InvalidChurnPlan { .. }));
    }

    #[test]
    fn edge_down_stops_delivery_and_counts_drops() {
        // path(2): one edge. Cut it at round 2; every later broadcast is
        // swallowed at the sender and billed as a churn drop.
        let g = generators::path(2);
        let churn = ChurnPlan::default().with_event(2, ChurnKind::EdgeDown { edge: 0 });
        let mut net = Network::new(&g, SimConfig::local().seed(4));
        let (out, trace) = net
            .run_churned_traced(
                |_, _| Chatter { rounds: 6, heard: 0 },
                &FaultPlan::default(),
                &churn,
            )
            .unwrap();
        assert_eq!(out.stats.churn_events, 1);
        // Rounds 2..=5 each see both nodes broadcast into the cut edge,
        // plus the round-6 halt round: sends from rounds 0..2 deliver.
        assert!(out.stats.churn_drops > 0, "no drops counted");
        assert_eq!(
            out.stats.messages,
            out.stats.churn_drops + out.outputs.iter().map(|&h| h as u64).sum::<u64>(),
            "every protocol frame is either delivered or dropped"
        );
        let churns: Vec<&TraceEvent> = trace.churns().collect();
        assert_eq!(churns.len(), 1);
        assert!(matches!(
            churns[0],
            TraceEvent::Churn { round: 2, kind: ChurnKind::EdgeDown { edge: 0 } }
        ));
        // Edge back up: traffic resumes.
        let flap = ChurnPlan::default()
            .with_event(2, ChurnKind::EdgeDown { edge: 0 })
            .with_event(4, ChurnKind::EdgeUp { edge: 0 });
        let mut net2 = Network::new(&g, SimConfig::local().seed(4));
        let out2 = net2
            .run_churned(|_, _| Chatter { rounds: 6, heard: 0 }, &FaultPlan::default(), &flap)
            .unwrap();
        assert_eq!(out2.stats.churn_events, 2);
        assert!(
            out2.outputs.iter().sum::<usize>() > out.outputs.iter().sum::<usize>(),
            "restored edge should deliver again"
        );
    }

    #[test]
    fn leave_is_permanent_and_silent() {
        let g = generators::cycle(4);
        let churn = ChurnPlan::default().with_event(3, ChurnKind::Leave { node: 0 });
        let mut net = Network::new(&g, SimConfig::local().seed(8));
        let (out, trace) = net
            .run_churned_traced(
                |_, _| Chatter { rounds: 8, heard: 0 },
                &FaultPlan::default(),
                &churn,
            )
            .unwrap();
        // Node 0 sends before round 3 and never after.
        let send_rounds: Vec<usize> = trace.sends_of(0).map(TraceEvent::round).collect();
        assert!(send_rounds.iter().any(|&r| r < 3));
        assert!(send_rounds.iter().all(|&r| r < 3), "a left node sent: {send_rounds:?}");
        // Neighbours' sends towards it after the leave are churn drops.
        assert!(out.stats.churn_drops > 0);
        assert_eq!(out.stats.churn_events, 1);
    }

    #[test]
    fn join_boots_fresh_and_chats() {
        let g = generators::cycle(4);
        let churn = ChurnPlan::default()
            .with_absent_nodes(vec![2])
            .with_event(4, ChurnKind::Join { node: 2 });
        let mut net = Network::new(&g, SimConfig::local().seed(12));
        let (out, trace) = net
            .run_churned_traced(
                |_, _| Chatter { rounds: 9, heard: 0 },
                &FaultPlan::default(),
                &churn,
            )
            .unwrap();
        let send_rounds: Vec<usize> = trace.sends_of(2).map(TraceEvent::round).collect();
        assert!(send_rounds.iter().all(|&r| r >= 4), "absent node sent early: {send_rounds:?}");
        assert!(send_rounds.iter().any(|&r| r >= 4), "joined node never sent");
        assert!(out.outputs[2] > 0, "joined node heard nothing");
        // Sends towards the absent node before the join are dropped.
        assert!(out.stats.churn_drops > 0);
    }

    #[test]
    fn churned_runs_are_deterministic() {
        let g = generators::gnp(12, 0.3, &mut rand::rngs::StdRng::seed_from_u64(3));
        let churn = ChurnPlan::default()
            .with_event(2, ChurnKind::EdgeDown { edge: 0 })
            .with_event(5, ChurnKind::EdgeUp { edge: 0 })
            .with_event(3, ChurnKind::Leave { node: 1 });
        let faults = FaultPlan::lossy(0.1).with_dup(0.05);
        let go = || {
            let mut net = Network::new(&g, SimConfig::local().seed(31));
            net.run_churned_traced(|_, _| Chatter { rounds: 10, heard: 0 }, &faults, &churn)
                .unwrap()
        };
        let (out_a, trace_a) = go();
        let (out_b, trace_b) = go();
        assert_eq!(out_a.outputs, out_b.outputs);
        assert_eq!(out_a.stats, out_b.stats);
        assert_eq!(trace_a.events(), trace_b.events());
        assert_eq!(out_a.stats.churn_events, 3);
    }

    #[test]
    fn peer_mapping_is_involutive() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let g = generators::gnp(20, 0.2, &mut rng);
        let net = Network::new(&g, SimConfig::local());
        for v in g.nodes() {
            for p in 0..g.degree(v) {
                let (u, q) = net.peer(v, p);
                assert_eq!(net.peer(u, q), (v, p), "peer mapping broken at ({v},{p})");
                assert_eq!(g.port(v, p).1, g.port(u, q).1, "ports disagree on edge");
            }
        }
    }

    use rand::SeedableRng;
}
