//! The [`Protocol`] trait and the per-round [`Context`] handed to nodes.

use dam_graph::{EdgeId, NodeId, Topology};
use rand::rngs::StdRng;

use crate::error::SimError;
use crate::message::BitSize;
use crate::stats::Integrity;

/// A port: the index of an incident edge at a node (`0..degree`).
///
/// CONGEST nodes address neighbours by port; the mapping to edge/neighbour
/// ids is exposed because the model grants nodes knowledge of their
/// neighbours' `O(log n)`-bit identifiers.
pub type Port = usize;

/// A per-node state machine executed by a [`crate::Network`].
///
/// The engine drives each node through [`Protocol::on_start`] (round 0,
/// before any delivery) and then [`Protocol::on_round`] once per
/// synchronous round with the messages sent to it in the *previous* round.
/// A node leaves the computation by calling [`Context::halt`]; when every
/// node has halted the run ends and [`Protocol::into_output`] collects the
/// per-node outputs (the paper's "output registers").
pub trait Protocol {
    /// The message type exchanged over edges.
    type Msg: BitSize + Clone + Send + std::fmt::Debug + 'static;
    /// The node's final output.
    type Output;

    /// Round 0: send initial messages. Default: do nothing.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// One synchronous round: `inbox` holds `(port, message)` pairs sorted
    /// by port — exactly the messages sent to this node in the previous
    /// round. Called once per round (possibly with an empty inbox) until
    /// the node halts.
    fn on_round(&mut self, ctx: &mut Context<'_, Self::Msg>, inbox: &[(Port, Self::Msg)]);

    /// Notification that the neighbour behind `port` is suspected
    /// crashed. Delivered by failure-detecting wrappers (the
    /// [`crate::transport::Resilient`] transport); the plain synchronous
    /// engine never calls it. Protocols that wait on neighbours should
    /// override this to stop waiting on the dead port. Default: ignore.
    fn on_peer_down(&mut self, ctx: &mut Context<'_, Self::Msg>, port: Port) {
        let _ = (ctx, port);
    }

    /// Notification that the neighbour behind `port`, previously reported
    /// [`Protocol::on_peer_down`], is reachable again (it rebooted as a
    /// new incarnation, or the link came back). Delivered by
    /// failure-detecting wrappers; the plain synchronous engine never
    /// calls it. Default: ignore.
    fn on_peer_up(&mut self, ctx: &mut Context<'_, Self::Msg>, port: Port) {
        let _ = (ctx, port);
    }

    /// Consumes the node state into its output after the run.
    fn into_output(self) -> Self::Output;

    /// Exports this node's transport-session state, if the protocol
    /// maintains one. The engines sample it once per run, at the very
    /// end (after the last round, before [`Protocol::into_output`]) —
    /// so for a run that terminated by quiescence the export describes
    /// a drained transport. Checkpointing consumes it
    /// ([`crate::RunOutcome::sessions`]); sampling is read-only, so a
    /// protocol's behaviour is identical whether or not anyone looks.
    /// Default: `None` (plain protocols carry no session).
    fn session(&self) -> Option<SessionState> {
        None
    }
}

/// A transport wrapper's session state at the end of a run, exported
/// through [`Protocol::session`] for checkpointing.
///
/// This is a *summary*, not a resumable image: a restored process never
/// imports boot nonces — it draws fresh ones, so surviving peers treat
/// the restart as the incarnation change the transport already
/// supports. The checkpoint layer records the summary to *validate*
/// quiescence (every `outstanding` must be zero) and to preserve the
/// forensic record (who was dead, which incarnations were live, how
/// aggressive the adaptive ladder had become).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionState {
    /// This incarnation's boot nonce (drawn at `on_start`).
    pub boot: u16,
    /// The adaptive ladder's aggression level at export (always 1 for a
    /// static transport).
    pub level: u64,
    /// Per-port session summaries, indexed by port.
    pub ports: Vec<PortSession>,
}

impl SessionState {
    /// Outstanding (queued, unacknowledged) slots summed over all
    /// ports. Zero iff the transport is fully drained — the quiescence
    /// criterion a checkpoint validates before trusting the registers.
    #[must_use]
    pub fn outstanding(&self) -> u64 {
        self.ports.iter().map(|p| u64::from(p.outstanding)).sum()
    }
}

/// One port's session summary inside a [`SessionState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortSession {
    /// The peer incarnation's boot nonce, if any of its frames arrived.
    pub peer_boot: Option<u16>,
    /// Queued, unacknowledged outgoing slots at export. Zero at
    /// quiescence; nonzero means the run was cut mid-flight.
    pub outstanding: u32,
    /// Session slots the peer has acknowledged.
    pub acked_out: u32,
    /// The cumulative receive acknowledgement advertised to the peer.
    pub recv_ack: u32,
    /// The peer's final (`last`) slot has been consumed.
    pub done: bool,
    /// The peer is considered crashed or rebooted.
    pub dead: bool,
}

/// The engine-provided view a node has during one of its rounds.
///
/// Grants exactly the model's powers: the node's own id, its port list
/// (with neighbour/edge ids), a private RNG, the current round number, and
/// message transmission over incident edges.
pub struct Context<'a, M> {
    pub(crate) node: NodeId,
    pub(crate) round: usize,
    pub(crate) graph: &'a dyn Topology,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) outbox: &'a mut Vec<(Port, M)>,
    pub(crate) sent: &'a mut [bool],
    pub(crate) halted: &'a mut bool,
    pub(crate) fault: &'a mut Option<SimError>,
    pub(crate) integrity: &'a mut Integrity,
}

impl<M> Context<'_, M> {
    /// This node's identifier.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// The current round (0 during [`Protocol::on_start`]).
    #[must_use]
    pub fn round(&self) -> usize {
        self.round
    }

    /// Number of nodes in the network.
    ///
    /// The paper assumes nodes know a common polynomial upper bound on `n`
    /// (via `W_max`); we expose `n` itself.
    #[must_use]
    pub fn network_size(&self) -> usize {
        self.graph.node_count()
    }

    /// This node's degree.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.graph.degree(self.node)
    }

    /// The neighbour reachable through `port`.
    #[must_use]
    pub fn neighbor(&self, port: Port) -> NodeId {
        self.graph.port(self.node, port).0
    }

    /// The edge id behind `port`.
    #[must_use]
    pub fn edge(&self, port: Port) -> EdgeId {
        self.graph.port(self.node, port).1
    }

    /// The weight of the edge behind `port` (§2: "every node knows the
    /// weights of all its incident edges").
    #[must_use]
    pub fn edge_weight(&self, port: Port) -> f64 {
        self.graph.weight(self.edge(port))
    }

    /// Iterator over this node's ports.
    pub fn ports(&self) -> std::ops::Range<Port> {
        0..self.degree()
    }

    /// This node's private RNG (deterministic per `(seed, run, node)`).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Sends `msg` over `port`, to be delivered next round.
    ///
    /// At most one message per port per round (the model allows one
    /// message per edge per direction per round); a second send is a
    /// protocol bug and fails the run with [`SimError::DuplicateSend`].
    pub fn send(&mut self, port: Port, msg: M) {
        if self.sent[port] {
            if self.fault.is_none() {
                *self.fault =
                    Some(SimError::DuplicateSend { node: self.node, port, round: self.round });
            }
            return;
        }
        self.sent[port] = true;
        self.outbox.push((port, msg));
    }

    /// Sends a copy of `msg` over every port.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        for port in self.ports() {
            self.send(port, msg.clone());
        }
    }

    /// Leaves the computation: `on_round` will not be called again for
    /// this node. Messages already placed in the outbox this round are
    /// still delivered.
    pub fn halt(&mut self) {
        *self.halted = true;
    }

    /// Records that this node rejected an incoming frame on integrity
    /// grounds (failed checksum, wrong incarnation nonce, malformed
    /// payload). Accounted in [`crate::RunStats::rejected`]; identical
    /// totals on both engines because rejection is a per-message
    /// deterministic decision.
    pub fn note_rejected(&mut self) {
        self.integrity.rejected = self.integrity.rejected.saturating_add(1);
    }

    /// Records that this node quarantined the neighbour behind a port
    /// after repeated integrity failures. Accounted in
    /// [`crate::RunStats::quarantined`].
    pub fn note_quarantined(&mut self) {
        self.integrity.quarantined = self.integrity.quarantined.saturating_add(1);
    }

    /// Records that this node's silence-based failure detector declared
    /// the peer behind a port dead (no progress for the suspicion
    /// window). Accounted in [`crate::RunStats::suspected`]; under an
    /// adversarial timing model a nonzero count against live peers is
    /// the false-suspicion signal experiment E18 hunts.
    pub fn note_suspected(&mut self) {
        self.integrity.suspected = self.integrity.suspected.saturating_add(1);
    }

    /// Reports how many transport window slots this node holds
    /// outstanding (queued, unacknowledged) this round. A telemetry
    /// gauge: the per-round series stream
    /// ([`crate::telemetry::RoundSample::outstanding`]) integrates it,
    /// but it is **not** folded into [`crate::RunStats`] — calling or
    /// not calling it never changes a run's observable statistics.
    pub fn note_outstanding(&mut self, slots: u64) {
        self.integrity.outstanding = self.integrity.outstanding.saturating_add(slots);
    }
}
