//! Maintenance-class message accounting.
//!
//! The maintenance runtime (see `dam-core`'s `maintain` module) repairs
//! a matching after topology churn. Its traffic is *upkeep*, not part of
//! the algorithm whose round/message complexity the paper bounds — so it
//! is billed separately, the same way the resilient transport separates
//! retransmissions and heartbeats from protocol messages.
//!
//! [`Maint`] wraps a message type and reclassifies its protocol frames
//! as [`MsgClass::Maintenance`] (retransmissions and heartbeats keep
//! their class, so a resilient transport running *inside* a maintenance
//! pass still bills its overhead honestly). [`AsMaintenance`] wraps a
//! whole [`Protocol`] so existing state machines can run as maintenance
//! passes unchanged.

use crate::message::{BitSize, MsgClass};
use crate::node::{Context, Port, Protocol};

/// A message reclassified as maintenance traffic.
///
/// Width is unchanged; only the accounting class moves: protocol frames
/// become [`MsgClass::Maintenance`], transport overhead classes are
/// preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Maint<M>(pub M);

impl<M: BitSize> BitSize for Maint<M> {
    fn bit_size(&self) -> usize {
        self.0.bit_size()
    }

    fn class(&self) -> MsgClass {
        match self.0.class() {
            MsgClass::Protocol => MsgClass::Maintenance,
            other => other,
        }
    }
}

/// Runs an inner [`Protocol`] with every frame it sends billed as
/// maintenance traffic (see [`Maint`]). Outputs, randomness and halting
/// behaviour are identical to running the inner protocol directly — only
/// the [`crate::RunStats`] accounting moves from `messages` to
/// `maintenance`.
#[derive(Debug)]
pub struct AsMaintenance<P: Protocol> {
    inner: P,
    buf: Vec<(Port, P::Msg)>,
}

impl<P: Protocol> AsMaintenance<P> {
    /// Wraps `inner`.
    pub fn new(inner: P) -> AsMaintenance<P> {
        AsMaintenance { inner, buf: Vec::new() }
    }

    /// Drives one inner callback with a context whose outbox collects
    /// the inner message type, then re-wraps the sends. The `sent`
    /// flags, halt flag and fault slot are shared, so duplicate-send
    /// detection and halting work across the wrapper boundary.
    fn drive(
        &mut self,
        ctx: &mut Context<'_, Maint<P::Msg>>,
        f: impl FnOnce(&mut P, &mut Context<'_, P::Msg>),
    ) {
        let AsMaintenance { inner, buf } = self;
        buf.clear();
        {
            let mut inner_ctx = Context {
                node: ctx.node,
                round: ctx.round,
                graph: ctx.graph,
                rng: &mut *ctx.rng,
                outbox: buf,
                sent: &mut *ctx.sent,
                halted: &mut *ctx.halted,
                fault: &mut *ctx.fault,
                integrity: &mut *ctx.integrity,
            };
            f(inner, &mut inner_ctx);
        }
        for (port, msg) in buf.drain(..) {
            // `sent[port]` was already marked by the inner send; push
            // directly instead of re-sending.
            ctx.outbox.push((port, Maint(msg)));
        }
    }
}

impl<P: Protocol> Protocol for AsMaintenance<P> {
    type Msg = Maint<P::Msg>;
    type Output = P::Output;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        self.drive(ctx, |p, c| p.on_start(c));
    }

    fn on_round(&mut self, ctx: &mut Context<'_, Self::Msg>, inbox: &[(Port, Self::Msg)]) {
        let unwrapped: Vec<(Port, P::Msg)> = inbox.iter().map(|(p, m)| (*p, m.0.clone())).collect();
        self.drive(ctx, |p, c| p.on_round(c, &unwrapped));
    }

    fn on_peer_down(&mut self, ctx: &mut Context<'_, Self::Msg>, port: Port) {
        self.drive(ctx, |p, c| p.on_peer_down(c, port));
    }

    fn on_peer_up(&mut self, ctx: &mut Context<'_, Self::Msg>, port: Port) {
        self.drive(ctx, |p, c| p.on_peer_up(c, port));
    }

    fn into_output(self) -> Self::Output {
        self.inner.into_output()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Network;
    use crate::model::SimConfig;
    use dam_graph::generators;

    /// Every node broadcasts once per round and counts what it hears.
    struct Gossip {
        rounds: usize,
        heard: usize,
    }

    impl Protocol for Gossip {
        type Msg = u32;
        type Output = usize;

        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            ctx.broadcast(ctx.id() as u32);
        }

        fn on_round(&mut self, ctx: &mut Context<'_, u32>, inbox: &[(Port, u32)]) {
            self.heard += inbox.len();
            if ctx.round() >= self.rounds {
                ctx.halt();
            } else {
                ctx.broadcast(ctx.id() as u32);
            }
        }

        fn into_output(self) -> usize {
            self.heard
        }
    }

    #[test]
    fn maint_reclassifies_protocol_frames_only() {
        assert_eq!(Maint(7u32).bit_size(), 32);
        assert_eq!(Maint(7u32).class(), MsgClass::Maintenance);

        struct Retx;
        impl BitSize for Retx {
            fn bit_size(&self) -> usize {
                8
            }
            fn class(&self) -> MsgClass {
                MsgClass::Retransmission
            }
        }
        assert_eq!(Maint(Retx).class(), MsgClass::Retransmission);
    }

    #[test]
    fn wrapped_run_matches_plain_run_but_bills_maintenance() {
        let g = generators::cycle(6);
        let mut plain = Network::new(&g, SimConfig::local().seed(7));
        let base = plain.run(|_, _| Gossip { rounds: 5, heard: 0 }).unwrap();
        let mut net = Network::new(&g, SimConfig::local().seed(7));
        let out = net.run(|_, _| AsMaintenance::new(Gossip { rounds: 5, heard: 0 })).unwrap();
        assert_eq!(out.outputs, base.outputs);
        assert_eq!(out.stats.rounds, base.stats.rounds);
        assert_eq!(out.stats.messages, 0, "protocol frames must be reclassified");
        assert_eq!(out.stats.maintenance, base.stats.messages);
        assert_eq!(out.stats.total_bits, base.stats.total_bits);
    }
}
