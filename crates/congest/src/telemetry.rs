//! Per-round telemetry: a read-only counter stream out of the engines.
//!
//! Every engine backend ([`crate::Backend::Sequential`], `Sharded`,
//! `Async`) samples the cumulative run counters at its round boundary
//! and hands the snapshot to a pluggable [`StatsSink`] attached to the
//! network via [`crate::Network::set_stats_sink`]. Observation is
//! **non-perturbing by construction**: the sample is assembled from
//! values the engine already maintains ([`crate::RunStats`] plus the
//! integrity side-channel), and the sink only ever receives copies —
//! the differential suites re-run with a [`RecordingSink`] attached and
//! assert bit-identical outputs, statistics and traces.
//!
//! Samples carry **cumulative** counters (monotone within one `run`);
//! [`RecordingSink::deltas`] recovers the per-round increments. The
//! sharded backend publishes per-worker deltas into shared atomics each
//! round and the coordinator emits the merged snapshot, so the recorded
//! series is identical to the sequential engine's for the same plan.
//!
//! The stream is the observation half of the closed control loop: the
//! adaptive transport ([`crate::adaptive::AdaptivePolicy`]) consumes the
//! same counters node-locally, while this sink exposes them to drivers,
//! experiments and `dam-cli run --stats-out`.

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

/// One cumulative counter snapshot, taken at the end of a round.
///
/// All counters are cumulative over the run so far (including this
/// round); subtract the previous round's sample to get per-round
/// increments. `suspected`, `rejected`, `quarantined` and `outstanding`
/// are transport-side integrity counters that the engine folds into
/// [`crate::RunStats`] only at run end — here they are visible live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundSample {
    /// The network's run counter for this run (distinguishes the runs
    /// of a multi-phase pipeline sharing one sink).
    pub run: u64,
    /// Round the snapshot closes (0-based, matching trace rounds).
    pub round: u64,
    /// Protocol frames sent.
    pub messages: u64,
    /// Transport retransmissions sent.
    pub retransmissions: u64,
    /// Transport heartbeats sent.
    pub heartbeats: u64,
    /// Maintenance-billed frames sent.
    pub maintenance: u64,
    /// Topology churn events applied (joins, leaves, edge flaps).
    pub churn_events: u64,
    /// Frames dropped because an endpoint or edge was absent.
    pub churn_drops: u64,
    /// Peers suspected dead by transport failure detectors.
    pub suspected: u64,
    /// Frames rejected by transport integrity checks.
    pub rejected: u64,
    /// Peers quarantined after repeated integrity strikes.
    pub quarantined: u64,
    /// Occupied transport window slots, summed over nodes and rounds —
    /// a cumulative gauge; the per-round delta is the number of slots
    /// outstanding during that round.
    pub outstanding: u64,
}

impl RoundSample {
    /// Column header matching [`RoundSample::csv_row`].
    pub const CSV_HEADER: &'static str = "run,round,messages,retransmissions,heartbeats,\
maintenance,churn_events,churn_drops,suspected,rejected,quarantined,outstanding";

    /// The sample as one CSV row (no trailing newline).
    #[must_use]
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{}",
            self.run,
            self.round,
            self.messages,
            self.retransmissions,
            self.heartbeats,
            self.maintenance,
            self.churn_events,
            self.churn_drops,
            self.suspected,
            self.rejected,
            self.quarantined,
            self.outstanding
        )
    }

    /// Component-wise saturating difference `self - earlier` of the
    /// counter fields (`run`/`round` are taken from `self`).
    #[must_use]
    pub fn minus(&self, earlier: &RoundSample) -> RoundSample {
        RoundSample {
            run: self.run,
            round: self.round,
            messages: self.messages.saturating_sub(earlier.messages),
            retransmissions: self.retransmissions.saturating_sub(earlier.retransmissions),
            heartbeats: self.heartbeats.saturating_sub(earlier.heartbeats),
            maintenance: self.maintenance.saturating_sub(earlier.maintenance),
            churn_events: self.churn_events.saturating_sub(earlier.churn_events),
            churn_drops: self.churn_drops.saturating_sub(earlier.churn_drops),
            suspected: self.suspected.saturating_sub(earlier.suspected),
            rejected: self.rejected.saturating_sub(earlier.rejected),
            quarantined: self.quarantined.saturating_sub(earlier.quarantined),
            outstanding: self.outstanding.saturating_sub(earlier.outstanding),
        }
    }
}

/// A consumer of the per-round counter stream.
///
/// `record` takes `&self` — the engine never hands the sink mutable
/// access to anything, which is what makes observation provably
/// non-perturbing. Implementations must be cheap and non-blocking; the
/// sharded backend calls `record` from its coordinator worker.
pub trait StatsSink: Send + Sync {
    /// Receives one end-of-round snapshot.
    fn record(&self, sample: RoundSample);
}

/// A cloneable, shareable handle to a [`StatsSink`], so the sink can
/// ride on plain-`Clone` configuration structs.
#[derive(Clone)]
pub struct SinkHandle(Arc<dyn StatsSink>);

impl SinkHandle {
    /// Wraps a sink for attachment to a network or runtime config.
    #[must_use]
    pub fn new(sink: Arc<dyn StatsSink>) -> SinkHandle {
        SinkHandle(sink)
    }

    /// Forwards one sample to the underlying sink.
    pub fn record(&self, sample: RoundSample) {
        self.0.record(sample);
    }
}

impl fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SinkHandle(..)")
    }
}

impl<S: StatsSink + 'static> From<Arc<S>> for SinkHandle {
    fn from(sink: Arc<S>) -> SinkHandle {
        SinkHandle::new(sink)
    }
}

/// The reference sink: appends every sample to an in-memory series.
///
/// Used by the differential suites (attach, re-run, assert bit-identical
/// results), by the adaptive-vs-static tournament (tail accounting) and
/// by `dam-cli run --stats-out` (CSV/JSON export).
#[derive(Debug, Default)]
pub struct RecordingSink {
    samples: Mutex<Vec<RoundSample>>,
}

impl RecordingSink {
    /// An empty recording sink.
    #[must_use]
    pub fn new() -> RecordingSink {
        RecordingSink::default()
    }

    /// A copy of every sample recorded so far, in arrival order.
    #[must_use]
    pub fn samples(&self) -> Vec<RoundSample> {
        self.samples.lock().clone()
    }

    /// Number of samples recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.lock().len()
    }

    /// Whether nothing was recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.lock().is_empty()
    }

    /// Per-round increments: each sample minus its predecessor within
    /// the same `run` (the first round of every run is its own delta).
    #[must_use]
    pub fn deltas(&self) -> Vec<RoundSample> {
        let samples = self.samples.lock();
        let mut out = Vec::with_capacity(samples.len());
        let mut prev: Option<RoundSample> = None;
        for s in samples.iter() {
            match prev {
                Some(p) if p.run == s.run => out.push(s.minus(&p)),
                _ => out.push(*s),
            }
            prev = Some(*s);
        }
        out
    }

    /// The cumulative series as CSV (header + one row per round).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(RoundSample::CSV_HEADER);
        out.push('\n');
        for s in self.samples.lock().iter() {
            out.push_str(&s.csv_row());
            out.push('\n');
        }
        out
    }

    /// The cumulative series as a JSON array of objects.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        let samples = self.samples.lock();
        for (i, s) in samples.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"run\": {}, \"round\": {}, \"messages\": {}, \"retransmissions\": {}, \
                 \"heartbeats\": {}, \"maintenance\": {}, \"churn_events\": {}, \
                 \"churn_drops\": {}, \"suspected\": {}, \"rejected\": {}, \
                 \"quarantined\": {}, \"outstanding\": {}}}{}\n",
                s.run,
                s.round,
                s.messages,
                s.retransmissions,
                s.heartbeats,
                s.maintenance,
                s.churn_events,
                s.churn_drops,
                s.suspected,
                s.rejected,
                s.quarantined,
                s.outstanding,
                if i + 1 == samples.len() { "" } else { "," }
            ));
        }
        out.push_str("]\n");
        out
    }
}

impl StatsSink for RecordingSink {
    fn record(&self, sample: RoundSample) {
        self.samples.lock().push(sample);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(run: u64, round: u64, messages: u64, retx: u64) -> RoundSample {
        RoundSample { run, round, messages, retransmissions: retx, ..RoundSample::default() }
    }

    #[test]
    fn recording_sink_accumulates_in_order() {
        let sink = RecordingSink::new();
        assert!(sink.is_empty());
        sink.record(sample(0, 0, 3, 0));
        sink.record(sample(0, 1, 7, 2));
        assert_eq!(sink.len(), 2);
        let got = sink.samples();
        assert_eq!(got[0].messages, 3);
        assert_eq!(got[1].retransmissions, 2);
    }

    #[test]
    fn deltas_reset_across_runs() {
        let sink = RecordingSink::new();
        sink.record(sample(0, 0, 3, 1));
        sink.record(sample(0, 1, 8, 1));
        sink.record(sample(1, 0, 2, 0));
        sink.record(sample(1, 1, 5, 4));
        let d = sink.deltas();
        assert_eq!(d[0].messages, 3, "first round is its own delta");
        assert_eq!(d[1].messages, 5);
        assert_eq!(d[1].retransmissions, 0);
        assert_eq!(d[2].messages, 2, "a new run restarts the baseline");
        assert_eq!(d[3].retransmissions, 4);
    }

    #[test]
    fn csv_and_json_render_every_sample() {
        let sink = RecordingSink::new();
        sink.record(sample(0, 0, 1, 0));
        sink.record(sample(0, 1, 2, 1));
        let csv = sink.to_csv();
        assert!(csv.starts_with(RoundSample::CSV_HEADER));
        assert_eq!(csv.lines().count(), 3);
        let json = sink.to_json();
        assert_eq!(json.matches("\"round\"").count(), 2);
        assert!(json.contains("\"retransmissions\": 1"));
    }

    #[test]
    fn sink_handle_forwards_and_is_cloneable() {
        let sink = Arc::new(RecordingSink::new());
        let handle = SinkHandle::from(Arc::clone(&sink));
        let other = handle.clone();
        handle.record(sample(0, 0, 1, 0));
        other.record(sample(0, 1, 2, 0));
        assert_eq!(sink.len(), 2);
        assert_eq!(format!("{handle:?}"), "SinkHandle(..)");
    }
}
