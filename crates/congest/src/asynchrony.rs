//! Asynchronous execution with an α-synchronizer.
//!
//! The paper assumes a synchronous network and remarks (footnote 2) that
//! this is *"without loss of generality (using, say, the α synchronizer
//! of Awerbuch (1985))"*. This module makes that remark executable:
//!
//! * [`AsyncNetwork`] is an event-driven executor — messages arrive after
//!   arbitrary (randomized) delays, there are no rounds;
//! * every node is wrapped in an α-synchronizer shim: protocol messages
//!   are tagged with their round, every node sends its neighbours an
//!   explicit (possibly empty) round marker each round, and a node
//!   advances to round `r+1` only after hearing round-`r` traffic from
//!   every live neighbour. Halting nodes announce a final marker so
//!   neighbours stop waiting for them.
//!
//! The observable behaviour is **identical** to the synchronous engine:
//! each node sees the same per-round inboxes and consumes the same
//! random stream, so `run_async` returns bit-identical outputs to
//! [`crate::Network::run`] for any protocol and any delay distribution —
//! which is exactly what the test suite asserts. The price is message
//! overhead (the empty markers), reported in [`AsyncStats`].

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dam_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::error::SimError;
use crate::message::BitSize;
use crate::node::{Context, Port, Protocol};
use crate::rng;
use crate::stats::Integrity;

/// Message-delay models for the asynchronous executor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelayModel {
    /// Every message takes exactly one time unit (sanity baseline).
    Unit,
    /// Uniformly random integer delay in `[1, max]`.
    UniformRandom {
        /// Largest possible delay.
        max: u64,
    },
    /// Direction-dependent fixed delays, hashed from the *ordered* pair
    /// `(from, to)` — adversarially heterogeneous links, still
    /// deterministic. The two directions of an edge get independent
    /// delays (a symmetric skew would secretly keep antiparallel traffic
    /// in lockstep, weakening the adversary).
    LinkSkew {
        /// Spread of per-direction delays.
        spread: u64,
    },
}

impl DelayModel {
    fn sample(&self, rng: &mut StdRng, from: NodeId, to: NodeId) -> u64 {
        match *self {
            DelayModel::Unit => 1,
            DelayModel::UniformRandom { max } => rng.random_range(1..=max.max(1)),
            DelayModel::LinkSkew { spread } => {
                // Hash the ordered pair so (u, v) and (v, u) draw
                // independent skews; a plain `u + v` is symmetric.
                let key = ((from as u64) << 32) | (to as u64 & 0xFFFF_FFFF);
                1 + rng::splitmix64(key) % spread.max(1)
            }
        }
    }
}

/// Cost accounting of an asynchronous run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AsyncStats {
    /// Protocol (payload-carrying) messages delivered.
    pub payload_messages: u64,
    /// Empty synchronizer markers delivered — the α-synchronizer's
    /// overhead.
    pub marker_messages: u64,
    /// Total payload bits.
    pub payload_bits: u64,
    /// Virtual time of the last delivery.
    pub makespan: u64,
    /// Highest synchronizer round reached by any node.
    pub max_round: usize,
}

/// The α-synchronizer wrapper around one protocol instance.
struct SyncNode<P: Protocol> {
    proto: P,
    rng: StdRng,
    round: usize,
    halted: bool,
    announced_halt: bool,
    /// Buffered payloads per pending round (`round + i` for slot `i`).
    buffers: Vec<Vec<(Port, P::Msg)>>,
    /// Per-round marker counts from each neighbour.
    heard: Vec<Vec<bool>>,
    /// Per neighbour port: the last round it will ever send (if halted).
    done_after: Vec<Option<usize>>,
}

/// A wrapped wire message: a round-tagged (possibly empty) payload.
/// `last` marks the sender's final round — it halts and will never send
/// again, so the receiver must not wait for later rounds from it.
struct WireMsg<M> {
    round: usize,
    payload: Option<M>,
    last: bool,
}

/// An event in the executor's queue (ordering lives in the heap key).
struct Event<M> {
    to: NodeId,
    port: Port,
    msg: WireMsg<M>,
}

/// Event-driven asynchronous executor.
///
/// See the module docs; construct with [`AsyncNetwork::new`], execute
/// with [`AsyncNetwork::run_async`].
pub struct AsyncNetwork<'g> {
    graph: &'g Graph,
    seed: u64,
    /// Safety bound on processed events.
    max_events: u64,
}

impl<'g> AsyncNetwork<'g> {
    /// An asynchronous network over `graph`.
    #[must_use]
    pub fn new(graph: &'g Graph, seed: u64) -> AsyncNetwork<'g> {
        AsyncNetwork { graph, seed, max_events: 200_000_000 }
    }

    /// Overrides the event-count safety bound.
    #[must_use]
    pub fn max_events(mut self, max: u64) -> AsyncNetwork<'g> {
        self.max_events = max;
        self
    }

    /// Runs `make`'s protocol under asynchronous delivery with the given
    /// delay model. Outputs are bit-identical to the synchronous
    /// [`crate::Network::run`] with the same seed.
    ///
    /// # Errors
    /// [`SimError::RoundLimitExceeded`] (re-used as an event-budget
    /// guard) if the event bound is exhausted, plus protocol faults.
    #[allow(clippy::too_many_lines)]
    pub fn run_async<P, F>(
        &self,
        mut make: F,
        delays: DelayModel,
    ) -> Result<(Vec<P::Output>, AsyncStats), SimError>
    where
        P: Protocol,
        F: FnMut(NodeId, &Graph) -> P,
    {
        let g = self.graph;
        let n = g.node_count();
        let mut delay_rng = StdRng::seed_from_u64(rng::splitmix64(self.seed ^ 0xA5A5_5A5A));
        let mut nodes: Vec<SyncNode<P>> = (0..n)
            .map(|v| SyncNode {
                proto: make(v, g),
                rng: rng::node_rng(self.seed, 0, v),
                round: 0,
                halted: false,
                announced_halt: false,
                buffers: Vec::new(),
                heard: Vec::new(),
                done_after: vec![None; g.degree(v)],
            })
            .collect();

        let mut queue: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
        let mut events: Vec<Option<Event<P::Msg>>> = Vec::new();
        let mut seq = 0u64;
        let mut stats = AsyncStats::default();
        let mut fault: Option<SimError> = None;
        // Integrity reports are accepted (the Context API is uniform)
        // but AsyncStats does not break them out.
        let mut integrity = Integrity::default();

        // Round-0 sends: run on_start everywhere, then wrap its outbox.
        let mut outbox: Vec<(Port, P::Msg)> = Vec::new();
        let mut sent = vec![false; g.max_degree()];
        for (v, node) in nodes.iter_mut().enumerate() {
            let mut ctx = Context {
                node: v,
                round: 0,
                graph: g,
                rng: &mut node.rng,
                outbox: &mut outbox,
                sent: &mut sent,
                halted: &mut node.halted,
                fault: &mut fault,
                integrity: &mut integrity,
            };
            node.proto.on_start(&mut ctx);
            if let Some(err) = fault.take() {
                return Err(err);
            }
            Self::dispatch_round(
                g,
                v,
                0,
                node.halted,
                &mut node.announced_halt,
                &mut outbox,
                &mut sent,
                &mut queue,
                &mut events,
                &mut seq,
                &mut delay_rng,
                delays,
                0,
            );
        }

        // Degree-0 nodes receive no events: free-run their timer rounds.
        let mut free_run = 0u64;
        for (v, node) in nodes.iter_mut().enumerate() {
            if g.degree(v) > 0 {
                continue;
            }
            while !node.halted {
                free_run += 1;
                if free_run > self.max_events {
                    return Err(SimError::RoundLimitExceeded {
                        limit: self.max_events as usize,
                        running: 1,
                    });
                }
                node.round += 1;
                let round = node.round;
                let mut ctx = Context {
                    node: v,
                    round,
                    graph: g,
                    rng: &mut node.rng,
                    outbox: &mut outbox,
                    sent: &mut sent,
                    halted: &mut node.halted,
                    fault: &mut fault,
                    integrity: &mut integrity,
                };
                node.proto.on_round(&mut ctx, &[]);
                if let Some(err) = fault.take() {
                    return Err(err);
                }
                outbox.clear();
            }
        }

        let mut processed = 0u64;
        while let Some(Reverse((time, _, idx))) = queue.pop() {
            processed += 1;
            if processed > self.max_events {
                return Err(SimError::RoundLimitExceeded {
                    limit: self.max_events as usize,
                    running: nodes.iter().filter(|s| !s.halted).count(),
                });
            }
            let event = events[idx].take().expect("event fired once");
            stats.makespan = stats.makespan.max(time);
            let v = event.to;
            let node = &mut nodes[v];
            if node.halted {
                continue;
            }
            // File the message into the right round slot.
            let WireMsg { round: ev_round, payload, last } = event.msg;
            debug_assert!(ev_round >= node.round, "messages from the past are impossible");
            let slot = ev_round - node.round;
            while node.buffers.len() <= slot {
                node.buffers.push(Vec::new());
                node.heard.push(vec![false; g.degree(v)]);
            }
            if let Some(m) = payload {
                stats.payload_messages += 1;
                stats.payload_bits += m.bit_size() as u64;
                node.buffers[slot].push((event.port, m));
            } else {
                stats.marker_messages += 1;
            }
            node.heard[slot][event.port] = true;
            if last {
                node.done_after[event.port] = Some(ev_round);
            }

            // Advance while the current round's tag is fully heard: each
            // port either delivered its tagged message for this round or
            // is past its sender's final round. When every neighbour is
            // past-done the node free-runs (timer-only rounds) until it
            // halts itself.
            loop {
                processed += 1;
                if processed > self.max_events {
                    return Err(SimError::RoundLimitExceeded {
                        limit: self.max_events as usize,
                        running: 1,
                    });
                }
                let deg = g.degree(v);
                let tag = node.round;
                let past_done = |p: usize| node.done_after[p].is_some_and(|r| tag > r);
                let current_ready = if node.buffers.is_empty() {
                    (0..deg).all(past_done)
                } else {
                    (0..deg).all(|p| node.heard[0][p] || past_done(p))
                };
                if !current_ready {
                    break;
                }
                if node.buffers.is_empty() {
                    node.buffers.push(Vec::new());
                    node.heard.push(vec![false; deg]);
                }
                let mut inbox = node.buffers.remove(0);
                node.heard.remove(0);
                inbox.sort_by_key(|&(p, _)| p);
                node.round += 1;
                stats.max_round = stats.max_round.max(node.round);
                let round = node.round;
                let mut ctx = Context {
                    node: v,
                    round,
                    graph: g,
                    rng: &mut node.rng,
                    outbox: &mut outbox,
                    sent: &mut sent,
                    halted: &mut node.halted,
                    fault: &mut fault,
                    integrity: &mut integrity,
                };
                node.proto.on_round(&mut ctx, &inbox);
                if let Some(err) = fault.take() {
                    return Err(err);
                }
                let halted = node.halted;
                Self::dispatch_round(
                    g,
                    v,
                    round,
                    halted,
                    &mut node.announced_halt,
                    &mut outbox,
                    &mut sent,
                    &mut queue,
                    &mut events,
                    &mut seq,
                    &mut delay_rng,
                    delays,
                    time,
                );
                if halted {
                    break;
                }
            }
        }

        let outputs = nodes.into_iter().map(|s| s.proto.into_output()).collect();
        Ok((outputs, stats))
    }

    /// Wraps a round's outbox into wire messages: payloads where the
    /// protocol sent, markers elsewhere, goodbyes on halt.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_round<M>(
        g: &Graph,
        v: NodeId,
        round: usize,
        halted: bool,
        announced_halt: &mut bool,
        outbox: &mut Vec<(Port, M)>,
        sent: &mut [bool],
        queue: &mut BinaryHeap<Reverse<(u64, u64, usize)>>,
        events: &mut Vec<Option<Event<M>>>,
        seq: &mut u64,
        delay_rng: &mut StdRng,
        delays: DelayModel,
        now: u64,
    ) {
        let mut payloads: Vec<Option<M>> = (0..g.degree(v)).map(|_| None).collect();
        for (port, msg) in outbox.drain(..) {
            sent[port] = false;
            payloads[port] = Some(msg);
        }
        if *announced_halt {
            debug_assert!(payloads.iter().all(Option::is_none), "halted nodes stay silent");
            return;
        }
        for (port, payload) in payloads.into_iter().enumerate() {
            let (u, q) = peer_of(g, v, port);
            let msg = WireMsg { round, payload, last: halted };
            let delay = delays.sample(delay_rng, v, u);
            let idx = events.len();
            events.push(Some(Event { to: u, port: q, msg }));
            queue.push(Reverse((now + delay, *seq, idx)));
            *seq += 1;
        }
        if halted {
            *announced_halt = true;
        }
    }
}

/// The `(neighbour, remote port)` behind `(v, port)` (computed on the
/// fly; the synchronous engine precomputes the same mapping).
fn peer_of(g: &Graph, v: NodeId, port: Port) -> (NodeId, Port) {
    let (u, e) = g.port(v, port);
    let q = g.port_of_edge(u, e).expect("edge is incident to both endpoints");
    (u, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SimConfig;
    use crate::Network;
    use dam_graph::generators;

    /// Deterministic multi-round protocol with data-dependent traffic.
    struct Gossip {
        rounds: usize,
        acc: u64,
    }

    impl Protocol for Gossip {
        type Msg = u64;
        type Output = u64;
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            self.acc = ctx.id() as u64;
            ctx.broadcast(self.acc);
        }
        fn on_round(&mut self, ctx: &mut Context<'_, u64>, inbox: &[(Port, u64)]) {
            for &(p, x) in inbox {
                self.acc = self.acc.wrapping_mul(31).wrapping_add(x ^ p as u64);
            }
            if ctx.round() >= self.rounds + ctx.id() % 4 {
                ctx.halt();
            } else if !self.acc.is_multiple_of(3) {
                // Data-dependent partial sends: some ports stay silent,
                // which the synchronizer must paper over with markers.
                for p in ctx.ports() {
                    if (self.acc >> p) & 1 == 1 {
                        ctx.send(p, self.acc);
                    }
                }
            }
        }
        fn into_output(self) -> u64 {
            self.acc
        }
    }

    fn sync_outputs(g: &dam_graph::Graph, seed: u64) -> Vec<u64> {
        Network::new(g, SimConfig::local().seed(seed))
            .run(|_, _| Gossip { rounds: 6, acc: 0 })
            .unwrap()
            .outputs
    }

    #[test]
    fn alpha_synchronizer_matches_synchronous_engine() {
        use rand::SeedableRng;
        let mut topo_rng = rand::rngs::StdRng::seed_from_u64(5);
        for trial in 0..4u64 {
            let g = generators::gnp(25, 0.18, &mut topo_rng);
            let expected = sync_outputs(&g, trial);
            for delays in [
                DelayModel::Unit,
                DelayModel::UniformRandom { max: 9 },
                DelayModel::UniformRandom { max: 40 },
                DelayModel::LinkSkew { spread: 7 },
            ] {
                let (outputs, stats) = AsyncNetwork::new(&g, trial)
                    .run_async(|_, _| Gossip { rounds: 6, acc: 0 }, delays)
                    .unwrap();
                assert_eq!(
                    outputs, expected,
                    "trial {trial}, {delays:?}: async run diverged from synchronous"
                );
                assert!(stats.max_round > 0);
            }
        }
    }

    #[test]
    fn link_skew_is_direction_asymmetric() {
        // Regression: the skew used to hash the *unordered* pair, so the
        // two directions of every edge drew the same delay and
        // antiparallel traffic stayed secretly in lockstep.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let model = DelayModel::LinkSkew { spread: 1 << 20 };
        let mut asymmetric = 0;
        for (u, v) in [(0usize, 1usize), (2, 9), (3, 17), (5, 6), (100, 4071)] {
            let fwd = model.sample(&mut rng, u, v);
            let rev = model.sample(&mut rng, v, u);
            // Per-direction delays are fixed (replayable) ...
            assert_eq!(fwd, model.sample(&mut rng, u, v));
            assert_eq!(rev, model.sample(&mut rng, v, u));
            // ... and in range.
            assert!(fwd >= 1 && rev >= 1);
            if fwd != rev {
                asymmetric += 1;
            }
        }
        assert!(
            asymmetric >= 4,
            "with a 2^20 spread, hashed directions must almost surely differ ({asymmetric}/5)"
        );
    }

    #[test]
    fn marker_overhead_is_accounted() {
        let g = generators::cycle(8);
        let (_, stats) = AsyncNetwork::new(&g, 1)
            .run_async(|_, _| Gossip { rounds: 6, acc: 0 }, DelayModel::UniformRandom { max: 5 })
            .unwrap();
        assert!(stats.marker_messages > 0, "silent rounds must cost markers");
        assert!(stats.payload_messages > 0);
        assert!(stats.makespan > 0);
    }

    #[test]
    fn isolated_and_empty_graphs() {
        let g = dam_graph::Graph::builder(3).build().unwrap();
        let (outputs, _) = AsyncNetwork::new(&g, 0)
            .run_async(|_, _| Gossip { rounds: 2, acc: 0 }, DelayModel::Unit)
            .unwrap();
        assert_eq!(outputs.len(), 3);
    }

    #[test]
    fn event_budget_guards() {
        struct Forever;
        impl Protocol for Forever {
            type Msg = ();
            type Output = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.broadcast(());
            }
            fn on_round(&mut self, ctx: &mut Context<'_, ()>, _: &[(Port, ())]) {
                ctx.broadcast(());
            }
            fn into_output(self) {}
        }
        let g = generators::cycle(4);
        let err = AsyncNetwork::new(&g, 0)
            .max_events(500)
            .run_async(|_, _| Forever, DelayModel::Unit)
            .unwrap_err();
        assert!(matches!(err, SimError::RoundLimitExceeded { .. }));
    }
}
