//! Asynchronous execution with an α-synchronizer.
//!
//! The paper assumes a synchronous network and remarks (footnote 2) that
//! this is *"without loss of generality (using, say, the α synchronizer
//! of Awerbuch (1985))"*. This module makes that remark executable:
//!
//! * [`AsyncNetwork`] is an event-driven executor — messages arrive after
//!   arbitrary (randomized) delays, there are no rounds;
//! * every node is wrapped in an α-synchronizer shim: protocol messages
//!   are tagged with their round, every node sends its neighbours an
//!   explicit (possibly empty) round marker each round, and a node
//!   advances to round `r+1` only after hearing round-`r` traffic from
//!   every live neighbour. Halting nodes announce a final marker so
//!   neighbours stop waiting for them.
//!
//! The observable behaviour is **identical** to the synchronous engine:
//! each node sees the same per-round inboxes and consumes the same
//! random stream, so `run_async` returns bit-identical outputs to
//! [`crate::Network::run`] for any protocol and any delay distribution —
//! which is exactly what the test suite asserts. The price is message
//! overhead (the empty markers), reported in [`AsyncStats`].
//!
//! # The asynchronous engine backend
//!
//! [`crate::Backend::Async`] promotes the same contract to the full
//! hardened pipeline (fault plans, churn plans, resilient transports,
//! the `dam_core` runtime middleware). The synchronizer contract is what
//! makes this sound: under the α-synchronizer, *message contents* are a
//! function of the round structure alone, and *timing* factors out into
//! a per-node virtual-clock recurrence
//!
//! ```text
//! t(v, r) = max( t(v, r-1) + 1,
//!                max over active in-neighbours u of
//!                    t(u, r-1) + delay(u → v, r-1) )
//! ```
//!
//! The backend therefore executes the exact sequential payload pipeline
//! (same keyed randomness, same fault draws, same flush order) while
//! an `AsyncTiming` layer tracks the recurrence, counts the synchronizer's
//! empty-round markers into [`crate::RunStats::markers`], and — when a
//! [`crate::SimConfig::patience`] budget is set — drops frames that
//! resolve later than `t(v, r-1) + patience` at their receiver. With no
//! patience budget the backend is bit-identical to the synchronous
//! engines (the `async_equiv` differential suite enforces this); with
//! one, late frames are lost, which is exactly the surface the timing
//! adversary in `bench::adversary` attacks.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use dam_graph::{BitSet, NodeId, Topology};
use rand::rngs::StdRng;

use crate::error::SimError;
use crate::message::BitSize;
use crate::model::DelayModel;
use crate::node::{Context, Port, Protocol};
use crate::rng;
use crate::stats::Integrity;

/// How many rounds a patience-drop record stays queryable: duplicated
/// copies trail their frame by 2 rounds and reordered copies by at most
/// `1 + 3`, so 8 rounds of history is comfortably past every consumer.
const DROP_HISTORY_ROUNDS: usize = 8;

/// Virtual-time accounting of one [`crate::Backend::Async`] run,
/// available after the run through [`crate::Network::async_info`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AsyncInfo {
    /// Virtual time at which the last node completed its last round.
    pub makespan: u64,
    /// Synchronizer markers sent (also folded into
    /// [`crate::RunStats::markers`]).
    pub markers: u64,
    /// Frames dropped because they resolved after the receiver's
    /// patience deadline (0 when [`crate::SimConfig::patience`] is
    /// unset — the bit-identical regime).
    pub timing_drops: u64,
}

/// The virtual-time layer of the asynchronous backend.
///
/// Owned by `Network::run_impl` when running under
/// [`crate::Backend::Async`]; see the module docs for the recurrence it
/// tracks. It deliberately holds *copies* of the port/edge tables so it
/// borrows nothing from the engine.
pub(crate) struct AsyncTiming {
    /// `ports[v][p]` = `(peer node, edge id)` — the engine's peer table
    /// joined with the edge ids the presence vectors are indexed by.
    ports: Vec<Vec<(NodeId, usize)>>,
    delay: DelayModel,
    patience: Option<u64>,
    seed: u64,
    run: u64,
    /// `t[v]`: virtual completion time of `v`'s most recent round.
    t: Vec<u64>,
    /// Scratch for the two-pass clock update.
    t_next: Vec<u64>,
    /// Which nodes flushed (sent a frame on every present port) in the
    /// round currently executing.
    active: Vec<bool>,
    /// Scratch, indexed by port: did the current step's flush put a
    /// payload on this port?
    frame_ports: Vec<bool>,
    /// `(sender, receiver, send round)` of frames past their patience
    /// deadline; pruned after [`DROP_HISTORY_ROUNDS`].
    dropped: HashSet<(NodeId, NodeId, usize)>,
    markers: u64,
    makespan: u64,
    timing_drops: u64,
}

impl AsyncTiming {
    pub(crate) fn new(
        graph: &dyn Topology,
        peer: &[Vec<(NodeId, Port)>],
        delay: DelayModel,
        patience: Option<u64>,
        seed: u64,
        run: u64,
    ) -> AsyncTiming {
        let n = graph.node_count();
        let ports = (0..n)
            .map(|v| (0..graph.degree(v)).map(|p| (peer[v][p].0, graph.port(v, p).1)).collect())
            .collect();
        AsyncTiming {
            ports,
            delay,
            patience,
            seed,
            run,
            // Round 0 completes after one unit of local work everywhere.
            t: vec![1; n],
            t_next: Vec::with_capacity(n),
            active: vec![false; n],
            frame_ports: vec![false; graph.max_degree()],
            dropped: HashSet::new(),
            markers: 0,
            makespan: u64::from(n > 0),
            timing_drops: 0,
        }
    }

    /// Called by `flush` before draining a step's outbox.
    pub(crate) fn begin_step(&mut self, v: NodeId) {
        for p in 0..self.ports[v].len() {
            self.frame_ports[p] = false;
        }
    }

    /// Called by `flush` for every message that found a live channel:
    /// the frame on this port carries a payload, so no marker is owed.
    pub(crate) fn note_frame(&mut self, port: Port) {
        self.frame_ports[port] = true;
    }

    /// Called by `flush` after draining a step's outbox: every present
    /// port without a payload owes a synchronizer marker, and the node
    /// counts as an active round-`r` sender its neighbours wait on.
    pub(crate) fn end_step(&mut self, v: NodeId, edge_present: &BitSet, node_present: &BitSet) {
        for (p, &(u, e)) in self.ports[v].iter().enumerate() {
            if edge_present[e] && node_present[u] && !self.frame_ports[p] {
                self.markers = self.markers.saturating_add(1);
            }
        }
        self.active[v] = true;
    }

    /// Advances every virtual clock to round `round` from the frames
    /// sent in round `round - 1`, recording patience violations.
    /// `edge_present` must still be the previous round's state (the
    /// engine calls this before applying the new round's edge events).
    pub(crate) fn advance(&mut self, round: usize, edge_present: &BitSet) {
        let send_round = (round - 1) as u64;
        if self.patience.is_some() && round > DROP_HISTORY_ROUNDS {
            self.dropped.retain(|&(_, _, sr)| sr + DROP_HISTORY_ROUNDS >= round);
        }
        self.t_next.clear();
        for (v, ports) in self.ports.iter().enumerate() {
            let prev = self.t[v];
            // A round costs at least one unit of local work, which also
            // keeps dormant (halted/absent) clocks ticking — they skip
            // rounds through the synchronizer's reboot path, one unit
            // per skipped round.
            let mut tv = prev.saturating_add(1);
            let deadline = self.patience.map(|p| prev.saturating_add(p.max(1)));
            let mut any_late = false;
            for &(u, e) in ports {
                if !self.active[u] || !edge_present[e] {
                    // No frame to wait for: the sender is dormant (its
                    // "last" announcement resolves the slot) or the link
                    // was down when it sent.
                    continue;
                }
                let a = self.t[u]
                    .saturating_add(self.delay.delay(self.seed, self.run, send_round, u, v));
                match deadline {
                    Some(d) if a > d => {
                        any_late = true;
                        self.dropped.insert((u, v, round - 1));
                    }
                    _ => tv = tv.max(a),
                }
            }
            if let (true, Some(d)) = (any_late, deadline) {
                // The receiver waited out its full patience budget.
                tv = tv.max(d);
            }
            self.t_next.push(tv);
        }
        std::mem::swap(&mut self.t, &mut self.t_next);
        for a in &mut self.active {
            *a = false;
        }
        self.makespan = self.makespan.max(self.t.iter().copied().max().unwrap_or(0));
    }

    /// Fast gate: can this run drop frames at all?
    pub(crate) fn may_drop(&self) -> bool {
        self.patience.is_some()
    }

    /// Was the frame `sender → receiver` of `send_round` dropped for
    /// arriving past the receiver's patience deadline?
    pub(crate) fn is_dropped(&self, sender: NodeId, receiver: NodeId, send_round: usize) -> bool {
        self.patience.is_some() && self.dropped.contains(&(sender, receiver, send_round))
    }

    pub(crate) fn count_timing_drops(&mut self, n: u64) {
        self.timing_drops = self.timing_drops.saturating_add(n);
    }

    pub(crate) fn finish(self) -> AsyncInfo {
        AsyncInfo {
            makespan: self.makespan.max(self.t.iter().copied().max().unwrap_or(0)),
            markers: self.markers,
            timing_drops: self.timing_drops,
        }
    }
}

/// Cost accounting of an asynchronous run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AsyncStats {
    /// Protocol (payload-carrying) messages delivered.
    pub payload_messages: u64,
    /// Empty synchronizer markers delivered — the α-synchronizer's
    /// overhead.
    pub marker_messages: u64,
    /// Total payload bits.
    pub payload_bits: u64,
    /// Virtual time of the last delivery.
    pub makespan: u64,
    /// Highest synchronizer round reached by any node.
    pub max_round: usize,
}

/// The α-synchronizer wrapper around one protocol instance.
struct SyncNode<P: Protocol> {
    proto: P,
    rng: StdRng,
    round: usize,
    halted: bool,
    announced_halt: bool,
    /// Buffered payloads per pending round (`round + i` for slot `i`).
    buffers: Vec<Vec<(Port, P::Msg)>>,
    /// Per-round marker counts from each neighbour.
    heard: Vec<Vec<bool>>,
    /// Per neighbour port: the last round it will ever send (if halted).
    done_after: Vec<Option<usize>>,
}

/// A wrapped wire message: a round-tagged (possibly empty) payload.
/// `last` marks the sender's final round — it halts and will never send
/// again, so the receiver must not wait for later rounds from it.
struct WireMsg<M> {
    round: usize,
    payload: Option<M>,
    last: bool,
}

/// An event in the executor's queue (ordering lives in the heap key).
struct Event<M> {
    to: NodeId,
    port: Port,
    msg: WireMsg<M>,
}

/// Event-driven asynchronous executor.
///
/// See the module docs; construct with [`AsyncNetwork::new`], execute
/// with [`AsyncNetwork::run_async`].
pub struct AsyncNetwork<'g> {
    graph: &'g dyn Topology,
    seed: u64,
    /// Safety bound on processed events.
    max_events: u64,
}

impl<'g> AsyncNetwork<'g> {
    /// An asynchronous network over `graph` (any [`Topology`]; a
    /// `&Graph` coerces at the call site).
    #[must_use]
    pub fn new(graph: &'g dyn Topology, seed: u64) -> AsyncNetwork<'g> {
        AsyncNetwork { graph, seed, max_events: 200_000_000 }
    }

    /// Overrides the event-count safety bound.
    #[must_use]
    pub fn max_events(mut self, max: u64) -> AsyncNetwork<'g> {
        self.max_events = max;
        self
    }

    /// Runs `make`'s protocol under asynchronous delivery with the given
    /// delay model. Outputs are bit-identical to the synchronous
    /// [`crate::Network::run`] with the same seed.
    ///
    /// # Errors
    /// [`SimError::RoundLimitExceeded`] (re-used as an event-budget
    /// guard) if the event bound is exhausted, plus protocol faults.
    #[allow(clippy::too_many_lines)]
    pub fn run_async<P, F>(
        &self,
        mut make: F,
        delays: DelayModel,
    ) -> Result<(Vec<P::Output>, AsyncStats), SimError>
    where
        P: Protocol,
        F: FnMut(NodeId, &dyn Topology) -> P,
    {
        let g = self.graph;
        let n = g.node_count();
        let mut nodes: Vec<SyncNode<P>> = (0..n)
            .map(|v| SyncNode {
                proto: make(v, g),
                rng: rng::node_rng(self.seed, 0, v),
                round: 0,
                halted: false,
                announced_halt: false,
                buffers: Vec::new(),
                heard: Vec::new(),
                done_after: vec![None; g.degree(v)],
            })
            .collect();

        let mut queue: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
        let mut events: Vec<Option<Event<P::Msg>>> = Vec::new();
        let mut seq = 0u64;
        let mut stats = AsyncStats::default();
        let mut fault: Option<SimError> = None;
        // Integrity reports are accepted (the Context API is uniform)
        // but AsyncStats does not break them out.
        let mut integrity = Integrity::default();

        // Round-0 sends: run on_start everywhere, then wrap its outbox.
        let mut outbox: Vec<(Port, P::Msg)> = Vec::new();
        let mut sent = vec![false; g.max_degree()];
        for (v, node) in nodes.iter_mut().enumerate() {
            let mut ctx = Context {
                node: v,
                round: 0,
                graph: g,
                rng: &mut node.rng,
                outbox: &mut outbox,
                sent: &mut sent,
                halted: &mut node.halted,
                fault: &mut fault,
                integrity: &mut integrity,
            };
            node.proto.on_start(&mut ctx);
            if let Some(err) = fault.take() {
                return Err(err);
            }
            Self::dispatch_round(
                g,
                v,
                0,
                node.halted,
                &mut node.announced_halt,
                &mut outbox,
                &mut sent,
                &mut queue,
                &mut events,
                &mut seq,
                self.seed,
                delays,
                0,
            );
        }

        // Degree-0 nodes receive no events: free-run their timer rounds.
        let mut free_run = 0u64;
        for (v, node) in nodes.iter_mut().enumerate() {
            if g.degree(v) > 0 {
                continue;
            }
            while !node.halted {
                free_run += 1;
                if free_run > self.max_events {
                    return Err(SimError::RoundLimitExceeded {
                        limit: self.max_events as usize,
                        running: 1,
                    });
                }
                node.round += 1;
                let round = node.round;
                let mut ctx = Context {
                    node: v,
                    round,
                    graph: g,
                    rng: &mut node.rng,
                    outbox: &mut outbox,
                    sent: &mut sent,
                    halted: &mut node.halted,
                    fault: &mut fault,
                    integrity: &mut integrity,
                };
                node.proto.on_round(&mut ctx, &[]);
                if let Some(err) = fault.take() {
                    return Err(err);
                }
                outbox.clear();
            }
        }

        let mut processed = 0u64;
        while let Some(Reverse((time, _, idx))) = queue.pop() {
            processed += 1;
            if processed > self.max_events {
                return Err(SimError::RoundLimitExceeded {
                    limit: self.max_events as usize,
                    running: nodes.iter().filter(|s| !s.halted).count(),
                });
            }
            let event = events[idx].take().expect("event fired once");
            stats.makespan = stats.makespan.max(time);
            let v = event.to;
            let node = &mut nodes[v];
            if node.halted {
                continue;
            }
            // File the message into the right round slot.
            let WireMsg { round: ev_round, payload, last } = event.msg;
            debug_assert!(ev_round >= node.round, "messages from the past are impossible");
            let slot = ev_round - node.round;
            while node.buffers.len() <= slot {
                node.buffers.push(Vec::new());
                node.heard.push(vec![false; g.degree(v)]);
            }
            if let Some(m) = payload {
                stats.payload_messages += 1;
                stats.payload_bits += m.bit_size() as u64;
                node.buffers[slot].push((event.port, m));
            } else {
                stats.marker_messages += 1;
            }
            node.heard[slot][event.port] = true;
            if last {
                node.done_after[event.port] = Some(ev_round);
            }

            // Advance while the current round's tag is fully heard: each
            // port either delivered its tagged message for this round or
            // is past its sender's final round. When every neighbour is
            // past-done the node free-runs (timer-only rounds) until it
            // halts itself.
            loop {
                processed += 1;
                if processed > self.max_events {
                    return Err(SimError::RoundLimitExceeded {
                        limit: self.max_events as usize,
                        running: 1,
                    });
                }
                let deg = g.degree(v);
                let tag = node.round;
                let past_done = |p: usize| node.done_after[p].is_some_and(|r| tag > r);
                let current_ready = if node.buffers.is_empty() {
                    (0..deg).all(past_done)
                } else {
                    (0..deg).all(|p| node.heard[0][p] || past_done(p))
                };
                if !current_ready {
                    break;
                }
                if node.buffers.is_empty() {
                    node.buffers.push(Vec::new());
                    node.heard.push(vec![false; deg]);
                }
                let mut inbox = node.buffers.remove(0);
                node.heard.remove(0);
                inbox.sort_by_key(|&(p, _)| p);
                node.round += 1;
                stats.max_round = stats.max_round.max(node.round);
                let round = node.round;
                let mut ctx = Context {
                    node: v,
                    round,
                    graph: g,
                    rng: &mut node.rng,
                    outbox: &mut outbox,
                    sent: &mut sent,
                    halted: &mut node.halted,
                    fault: &mut fault,
                    integrity: &mut integrity,
                };
                node.proto.on_round(&mut ctx, &inbox);
                if let Some(err) = fault.take() {
                    return Err(err);
                }
                let halted = node.halted;
                Self::dispatch_round(
                    g,
                    v,
                    round,
                    halted,
                    &mut node.announced_halt,
                    &mut outbox,
                    &mut sent,
                    &mut queue,
                    &mut events,
                    &mut seq,
                    self.seed,
                    delays,
                    time,
                );
                if halted {
                    break;
                }
            }
        }

        let outputs = nodes.into_iter().map(|s| s.proto.into_output()).collect();
        Ok((outputs, stats))
    }

    /// Wraps a round's outbox into wire messages: payloads where the
    /// protocol sent, markers elsewhere, goodbyes on halt.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_round<M>(
        g: &dyn Topology,
        v: NodeId,
        round: usize,
        halted: bool,
        announced_halt: &mut bool,
        outbox: &mut Vec<(Port, M)>,
        sent: &mut [bool],
        queue: &mut BinaryHeap<Reverse<(u64, u64, usize)>>,
        events: &mut Vec<Option<Event<M>>>,
        seq: &mut u64,
        seed: u64,
        delays: DelayModel,
        now: u64,
    ) {
        let mut payloads: Vec<Option<M>> = (0..g.degree(v)).map(|_| None).collect();
        for (port, msg) in outbox.drain(..) {
            sent[port] = false;
            payloads[port] = Some(msg);
        }
        if *announced_halt {
            debug_assert!(payloads.iter().all(Option::is_none), "halted nodes stay silent");
            return;
        }
        for (port, payload) in payloads.into_iter().enumerate() {
            let (u, q) = peer_of(g, v, port);
            let msg = WireMsg { round, payload, last: halted };
            // Delays are pure keyed functions of the frame coordinates
            // (see `DelayModel::delay`), so the schedule is independent
            // of the event-processing order. The standalone executor is
            // always "run 0".
            let delay = delays.delay(seed, 0, round as u64, v, u);
            let idx = events.len();
            events.push(Some(Event { to: u, port: q, msg }));
            queue.push(Reverse((now + delay, *seq, idx)));
            *seq += 1;
        }
        if halted {
            *announced_halt = true;
        }
    }
}

/// The `(neighbour, remote port)` behind `(v, port)` (computed on the
/// fly; the synchronous engine precomputes the same mapping).
fn peer_of(g: &dyn Topology, v: NodeId, port: Port) -> (NodeId, Port) {
    let (u, e) = g.port(v, port);
    let q = g.port_of_edge(u, e).expect("edge is incident to both endpoints");
    (u, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SimConfig;
    use crate::Network;
    use dam_graph::generators;

    /// Deterministic multi-round protocol with data-dependent traffic.
    struct Gossip {
        rounds: usize,
        acc: u64,
    }

    impl Protocol for Gossip {
        type Msg = u64;
        type Output = u64;
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            self.acc = ctx.id() as u64;
            ctx.broadcast(self.acc);
        }
        fn on_round(&mut self, ctx: &mut Context<'_, u64>, inbox: &[(Port, u64)]) {
            for &(p, x) in inbox {
                self.acc = self.acc.wrapping_mul(31).wrapping_add(x ^ p as u64);
            }
            if ctx.round() >= self.rounds + ctx.id() % 4 {
                ctx.halt();
            } else if !self.acc.is_multiple_of(3) {
                // Data-dependent partial sends: some ports stay silent,
                // which the synchronizer must paper over with markers.
                for p in ctx.ports() {
                    if (self.acc >> p) & 1 == 1 {
                        ctx.send(p, self.acc);
                    }
                }
            }
        }
        fn into_output(self) -> u64 {
            self.acc
        }
    }

    fn sync_outputs(g: &dam_graph::Graph, seed: u64) -> Vec<u64> {
        Network::new(g, SimConfig::local().seed(seed))
            .run(|_, _| Gossip { rounds: 6, acc: 0 })
            .unwrap()
            .outputs
    }

    #[test]
    fn alpha_synchronizer_matches_synchronous_engine() {
        use rand::SeedableRng;
        let mut topo_rng = rand::rngs::StdRng::seed_from_u64(5);
        for trial in 0..4u64 {
            let g = generators::gnp(25, 0.18, &mut topo_rng);
            let expected = sync_outputs(&g, trial);
            for delays in [
                DelayModel::Unit,
                DelayModel::UniformRandom { max: 9 },
                DelayModel::UniformRandom { max: 40 },
                DelayModel::LinkSkew { spread: 7 },
            ] {
                let (outputs, stats) = AsyncNetwork::new(&g, trial)
                    .run_async(|_, _| Gossip { rounds: 6, acc: 0 }, delays)
                    .unwrap();
                assert_eq!(
                    outputs, expected,
                    "trial {trial}, {delays:?}: async run diverged from synchronous"
                );
                assert!(stats.max_round > 0);
            }
        }
    }

    #[test]
    fn link_skew_is_direction_asymmetric() {
        // Regression: the skew used to hash the *unordered* pair, so the
        // two directions of every edge drew the same delay and
        // antiparallel traffic stayed secretly in lockstep.
        let model = DelayModel::LinkSkew { spread: 1 << 20 };
        let mut asymmetric = 0;
        for (u, v) in [(0usize, 1usize), (2, 9), (3, 17), (5, 6), (100, 4071)] {
            let fwd = model.delay(0, 0, 0, u, v);
            let rev = model.delay(0, 0, 0, v, u);
            // Per-direction delays are fixed (replayable, round-blind)...
            assert_eq!(fwd, model.delay(0, 0, 7, u, v));
            assert_eq!(rev, model.delay(0, 0, 7, v, u));
            // ... and in range.
            assert!(fwd >= 1 && rev >= 1);
            if fwd != rev {
                asymmetric += 1;
            }
        }
        assert!(
            asymmetric >= 4,
            "with a 2^20 spread, hashed directions must almost surely differ ({asymmetric}/5)"
        );
    }

    #[test]
    fn backend_matches_sequential_and_accounts_markers() {
        use crate::engine::{ChurnPlan, FaultPlan};
        use crate::model::Backend;
        use rand::SeedableRng;
        let mut topo_rng = rand::rngs::StdRng::seed_from_u64(9);
        let g = generators::gnp(20, 0.2, &mut topo_rng);
        let seq = Network::new(&g, SimConfig::local().seed(3))
            .run(|_, _| Gossip { rounds: 6, acc: 0 })
            .unwrap();
        for delay in [
            DelayModel::Unit,
            DelayModel::UniformRandom { max: 7 },
            DelayModel::Straggler { node: 2, slow: 11 },
            DelayModel::Burst { period: 3, width: 1, extra: 6 },
        ] {
            let cfg = SimConfig::local().seed(3).backend(Backend::Async).delay(delay);
            let mut net = Network::new(&g, cfg);
            let out = net
                .run_async_churned(
                    |_, _| Gossip { rounds: 6, acc: 0 },
                    &FaultPlan::default(),
                    &ChurnPlan::default(),
                )
                .unwrap();
            assert_eq!(out.outputs, seq.outputs, "{delay:?}: payload divergence");
            assert_eq!(out.stats.rounds, seq.stats.rounds);
            assert_eq!(out.stats.messages, seq.stats.messages);
            assert!(out.stats.markers > 0, "silent ports must cost markers");
            let info = net.async_info().expect("async run records its timing");
            assert_eq!(info.markers, out.stats.markers);
            assert_eq!(info.timing_drops, 0, "no patience budget, no drops");
            assert!(
                info.makespan >= out.stats.rounds,
                "a round costs at least one unit ({delay:?})"
            );
            if delay != DelayModel::Unit {
                assert!(info.makespan > out.stats.rounds, "{delay:?} must stretch the schedule");
            }
        }
    }

    #[test]
    fn patience_drops_straggler_frames_deterministically() {
        use crate::engine::{ChurnPlan, FaultPlan};
        use crate::model::Backend;
        use rand::SeedableRng;
        let mut topo_rng = rand::rngs::StdRng::seed_from_u64(4);
        let g = generators::gnp(16, 0.3, &mut topo_rng);
        let cfg = SimConfig::local()
            .seed(5)
            .backend(Backend::Async)
            .delay(DelayModel::Straggler { node: 0, slow: 12 })
            .patience(2);
        let run = |cfg| {
            let mut net = Network::new(&g, cfg);
            let out = net
                .run_async_churned(
                    |_, _| Gossip { rounds: 6, acc: 0 },
                    &FaultPlan::default(),
                    &ChurnPlan::default(),
                )
                .unwrap();
            (out.outputs, net.async_info().unwrap())
        };
        let (a, info_a) = run(cfg);
        let (b, info_b) = run(cfg);
        assert!(info_a.timing_drops > 0, "a 12-unit straggler must blow a 2-unit patience");
        assert_eq!(a, b, "timing drops are a deterministic function of the config");
        assert_eq!(info_a, info_b);
        // A patience budget derived from the declared delay bound keeps
        // every frame: bit-identity is restored.
        let bound = DelayModel::Straggler { node: 0, slow: 12 }.bound();
        let (c, info_c) = run(cfg.patience(2 * bound));
        let seq = Network::new(&g, SimConfig::local().seed(5))
            .run(|_, _| Gossip { rounds: 6, acc: 0 })
            .unwrap();
        assert_eq!(info_c.timing_drops, 0, "patience ≥ 2·bound absorbs the straggler");
        assert_eq!(c, seq.outputs);
    }

    #[test]
    fn marker_overhead_is_accounted() {
        let g = generators::cycle(8);
        let (_, stats) = AsyncNetwork::new(&g, 1)
            .run_async(|_, _| Gossip { rounds: 6, acc: 0 }, DelayModel::UniformRandom { max: 5 })
            .unwrap();
        assert!(stats.marker_messages > 0, "silent rounds must cost markers");
        assert!(stats.payload_messages > 0);
        assert!(stats.makespan > 0);
    }

    #[test]
    fn isolated_and_empty_graphs() {
        let g = dam_graph::Graph::builder(3).build().unwrap();
        let (outputs, _) = AsyncNetwork::new(&g, 0)
            .run_async(|_, _| Gossip { rounds: 2, acc: 0 }, DelayModel::Unit)
            .unwrap();
        assert_eq!(outputs.len(), 3);
    }

    #[test]
    fn event_budget_guards() {
        struct Forever;
        impl Protocol for Forever {
            type Msg = ();
            type Output = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.broadcast(());
            }
            fn on_round(&mut self, ctx: &mut Context<'_, ()>, _: &[(Port, ())]) {
                ctx.broadcast(());
            }
            fn into_output(self) {}
        }
        let g = generators::cycle(4);
        let err = AsyncNetwork::new(&g, 0)
            .max_events(500)
            .run_async(|_, _| Forever, DelayModel::Unit)
            .unwrap_err();
        assert!(matches!(err, SimError::RoundLimitExceeded { .. }));
    }
}
