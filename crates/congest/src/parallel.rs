//! The sharded deterministic parallel executor.
//!
//! Executes the same synchronous semantics as the sequential engine
//! ([`crate::Network::run`] and its faulty/churned/traced variants) across
//! a fixed pool of worker threads, producing **bit-identical** outputs,
//! [`RunStats`] and [`Trace`] streams — a property the differential test
//! suite (`tests/parallel_equiv.rs`) checks exhaustively.
//!
//! # Design
//!
//! * **Sharding.** Nodes are split into contiguous chunks, one per
//!   worker. Each worker owns its nodes' protocol state, RNGs and halted
//!   flags outright (`chunks_mut`), so per-round computation needs no
//!   locks at all.
//! * **Slot delivery.** Message delivery uses a flat slot buffer with one
//!   slot per *directed* edge (`offsets[u] + q` for receiver `u`, port
//!   `q`). The model allows at most one message per directed edge per
//!   round and each slot has exactly one writer (the unique peer of that
//!   port), so delivery is plain unsynchronized writes — workers never
//!   contend on a lock to deliver. Two buffers alternate by round parity:
//!   round `r` reads `bufs[r % 2]` and writes `bufs[(r + 1) % 2]`; every
//!   node drains all its slots every round (halted nodes too), so a
//!   buffer is clean by the time its parity comes round again.
//! * **Determinism.** A node's behaviour depends only on its private RNG
//!   and its port-ordered inbox; fault injections are drawn from RNGs
//!   keyed on the message coordinates ([`crate::rng::fault_rng`]) and
//!   churn presence is evaluated through `RunPlan::present_seen`, so no
//!   observable quantity depends on thread scheduling.
//! * **Coordination.** Two barriers per round. Between them, worker 0
//!   exclusively runs the round-boundary logic the sequential engine runs
//!   between node sweeps: error collection, round accounting, the
//!   all-halted / quiescence / round-limit checks, and the application of
//!   scheduled edge-churn events.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Barrier;

use dam_graph::{NodeId, Topology};
use parking_lot::Mutex;

use crate::engine::{ChurnPlan, FaultPlan, Network, RunOutcome, RunPlan};
use crate::error::SimError;
use crate::message::{BitSize, CorruptKind, MsgClass};
use crate::model::{Model, SimConfig, ViolationPolicy};
use crate::node::{Context, Port, Protocol};
use crate::rng;
use crate::stats::{Integrity, RunStats};
use crate::trace::{ChurnKind, FaultKind, Trace, TraceEvent};

/// One message slot per directed edge, written without locks.
///
/// Slot `offsets[u] + q` carries the message arriving at node `u` over
/// port `q`. Within any round it has exactly one writer (the unique
/// sender behind that port, during its flush) and exactly one reader
/// (`u`, in the *next* round, after a barrier) — so plain unsynchronized
/// access through [`UnsafeCell`] is sound.
struct SlotBuf<M> {
    slots: Vec<UnsafeCell<Option<M>>>,
}

// SAFETY: every slot is accessed by at most one thread at a time — the
// unique sender while a round's messages are flushed, the unique receiver
// after the next round barrier, and worker 0 only between barriers. The
// round barriers establish the necessary happens-before edges.
unsafe impl<M: Send> Sync for SlotBuf<M> {}

impl<M> SlotBuf<M> {
    fn new(len: usize) -> SlotBuf<M> {
        SlotBuf { slots: (0..len).map(|_| UnsafeCell::new(None)).collect() }
    }

    /// # Safety
    /// The caller must be the slot's unique accessor for this phase (see
    /// the type-level invariant).
    unsafe fn put(&self, idx: usize, msg: M) {
        unsafe { *self.slots[idx].get() = Some(msg) };
    }

    /// # Safety
    /// As [`SlotBuf::put`].
    unsafe fn take(&self, idx: usize) -> Option<M> {
        unsafe { (*self.slots[idx].get()).take() }
    }

    /// # Safety
    /// As [`SlotBuf::put`].
    unsafe fn occupied(&self, idx: usize) -> bool {
        unsafe { (*self.slots[idx].get()).is_some() }
    }
}

/// Why a run stopped early: the first (round, node)-ordered incident, so
/// the parallel engine reports exactly the failure the sequential engine
/// would have hit first.
enum Incident {
    /// A protocol error (today always [`SimError::DuplicateSend`]) or an
    /// engine limit.
    Error(SimError),
    /// A panic out of protocol code (or an oversize message under
    /// [`ViolationPolicy::Panic`]); resumed on the caller's thread.
    Panic(Box<dyn std::any::Any + Send + 'static>),
}

/// Cumulative telemetry counters shared across workers, present only
/// when a [`crate::telemetry::StatsSink`] is attached. Workers publish
/// their per-round deltas before the first barrier; worker 0 reads the
/// totals between the barriers and streams one sample per round. The
/// counters are observation-only — nothing in the round pipeline reads
/// them back — so the sharded run's outputs/stats/trace stay
/// bit-identical with or without a sink.
struct TeleShared {
    messages: AtomicU64,
    retransmissions: AtomicU64,
    heartbeats: AtomicU64,
    maintenance: AtomicU64,
    churn_events: AtomicU64,
    churn_drops: AtomicU64,
    rejected: AtomicU64,
    quarantined: AtomicU64,
    suspected: AtomicU64,
    outstanding: AtomicU64,
}

/// One worker's view of its own cumulative counters at its last
/// publication — the subtrahend that turns cumulative locals into
/// per-round deltas.
#[derive(Clone, Copy, Default)]
struct TeleSnapshot {
    messages: u64,
    retransmissions: u64,
    heartbeats: u64,
    maintenance: u64,
    churn_events: u64,
    churn_drops: u64,
    rejected: u64,
    quarantined: u64,
    suspected: u64,
    outstanding: u64,
}

impl TeleSnapshot {
    fn of(stats: &RunStats, integrity: &Integrity) -> TeleSnapshot {
        TeleSnapshot {
            messages: stats.messages,
            retransmissions: stats.retransmissions,
            heartbeats: stats.heartbeats,
            maintenance: stats.maintenance,
            churn_events: stats.churn_events,
            churn_drops: stats.churn_drops,
            rejected: integrity.rejected,
            quarantined: integrity.quarantined,
            suspected: integrity.suspected,
            outstanding: integrity.outstanding,
        }
    }
}

impl TeleShared {
    fn new() -> TeleShared {
        TeleShared {
            messages: AtomicU64::new(0),
            retransmissions: AtomicU64::new(0),
            heartbeats: AtomicU64::new(0),
            maintenance: AtomicU64::new(0),
            churn_events: AtomicU64::new(0),
            churn_drops: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            suspected: AtomicU64::new(0),
            outstanding: AtomicU64::new(0),
        }
    }

    /// Adds the delta between `cur` and `prev` into the shared totals
    /// and advances `prev`. Local counters are monotone (saturating
    /// adds only), so plain subtraction is safe.
    fn publish(&self, cur: TeleSnapshot, prev: &mut TeleSnapshot) {
        self.messages.fetch_add(cur.messages - prev.messages, Ordering::SeqCst);
        self.retransmissions
            .fetch_add(cur.retransmissions - prev.retransmissions, Ordering::SeqCst);
        self.heartbeats.fetch_add(cur.heartbeats - prev.heartbeats, Ordering::SeqCst);
        self.maintenance.fetch_add(cur.maintenance - prev.maintenance, Ordering::SeqCst);
        self.churn_events.fetch_add(cur.churn_events - prev.churn_events, Ordering::SeqCst);
        self.churn_drops.fetch_add(cur.churn_drops - prev.churn_drops, Ordering::SeqCst);
        self.rejected.fetch_add(cur.rejected - prev.rejected, Ordering::SeqCst);
        self.quarantined.fetch_add(cur.quarantined - prev.quarantined, Ordering::SeqCst);
        self.suspected.fetch_add(cur.suspected - prev.suspected, Ordering::SeqCst);
        self.outstanding.fetch_add(cur.outstanding - prev.outstanding, Ordering::SeqCst);
        *prev = cur;
    }
}

/// State only worker 0 touches, between the two round barriers.
struct Coord {
    rounds: u64,
    charged: u64,
    churn_events: u64,
    quiet: usize,
    edge_event_idx: usize,
    failure: Option<Incident>,
    trace: Vec<TraceEvent>,
}

/// Immutable-or-synchronized state every worker sees.
struct Shared<'a, M> {
    graph: &'a dyn Topology,
    config: SimConfig,
    plan: &'a RunPlan,
    run_id: u64,
    n: usize,
    /// Slot-index base per node: slot `(u, q)` lives at `offsets[u] + q`.
    offsets: Vec<usize>,
    /// `(neighbour, remote port)` behind `offsets[v] + p` — a flat copy
    /// of the network's port-translation table.
    peers: Vec<(NodeId, Port)>,
    /// Per-directed-edge FIFO of `(delivery_round, payload)` for
    /// duplicated/reordered messages. Single producer (the edge's
    /// sender), single consumer (the receiver), mutexed because they can
    /// touch it in the same round.
    fifos: Vec<Mutex<Vec<(usize, M)>>>,
    /// Edge presence under churn; written only by worker 0 between
    /// barriers, mirroring the sequential engine's round prologue.
    edge_present: Vec<AtomicBool>,
    /// Which nodes ended round 0 halted — feeds the coordinator's
    /// round-0 quiescence scan.
    halted_pub: Vec<AtomicBool>,
    /// In-flight duplicated/reordered messages (the sequential engine's
    /// `pending.len()`), for the quiescence check.
    pending_count: AtomicI64,
    /// Frames flushed this round, summed over workers.
    round_frames: AtomicU64,
    /// Widest message this round, for pipelined round charging.
    round_max_bits: AtomicUsize,
    /// Currently halted nodes (updated on every halt/unhalt transition).
    halted_count: AtomicUsize,
    /// Shared telemetry totals; `Some` only when a sink is attached.
    telemetry: Option<TeleShared>,
}

impl<M> Shared<'_, M> {
    fn peer_of(&self, v: NodeId, port: Port) -> (NodeId, Port) {
        self.peers[self.offsets[v] + port]
    }
}

/// One shard's node state, owned outright by its worker.
///
/// Each worker gets its own contiguous allocations (protocol state,
/// RNGs, halted flags for its ascending node range `base..base + len`)
/// instead of a `chunks_mut` slice of one global vector — so shard
/// workers never share an allocation, never touch a neighbouring
/// shard's cache lines, and the arena can be built/dropped per shard.
/// Shards cover `0..n` contiguously in worker order, which keeps the
/// flattened output order equal to node order (bit-identity with the
/// sequential engine).
struct ShardArena<P> {
    /// First node id of this shard.
    base: NodeId,
    protos: Vec<P>,
    rngs: Vec<rand::rngs::StdRng>,
    halted: Vec<bool>,
}

/// A worker's private scratch state.
struct WorkerLocal<M> {
    stats: RunStats,
    trace: Option<Vec<TraceEvent>>,
    round_frames: u64,
    round_max_bits: usize,
    outbox: Vec<(Port, M)>,
    sent: Vec<bool>,
    inbox: Vec<(Port, M)>,
    fault: Option<SimError>,
    integrity: Integrity,
    /// Counters as of this worker's last telemetry publication.
    tele_prev: TeleSnapshot,
}

/// Drains node `v`'s current-buffer slots and due pending messages for
/// `round`. With `out` set, collects them as the port-ordered inbox
/// (slot message first, then due duplicates/reorders in arrival order —
/// exactly the sequential engine's stably-sorted inbox); without, they
/// are discarded, mirroring the sequential `inbox.clear()` on
/// halted/leaving/joining/recovering nodes. Every node must be drained
/// every round so the parity buffer is clean for reuse and the pending
/// count stays exact.
fn drain_node<M>(
    sh: &Shared<'_, M>,
    cur: &SlotBuf<M>,
    v: NodeId,
    round: usize,
    mut out: Option<&mut Vec<(Port, M)>>,
) {
    let base = sh.offsets[v];
    for q in 0..sh.graph.degree(v) {
        // SAFETY: `v`'s worker is the unique reader of slot `(v, q)` in
        // the round-`round` buffer; its writer finished last round
        // (barrier-separated).
        if let Some(msg) = unsafe { cur.take(base + q) } {
            if let Some(inbox) = out.as_deref_mut() {
                inbox.push((q, msg));
            }
        }
        if sh.plan.any_dup_or_reorder {
            let mut fifo = sh.fifos[base + q].lock();
            let mut i = 0;
            while i < fifo.len() {
                if fifo[i].0 == round {
                    let (_, msg) = fifo.remove(i);
                    sh.pending_count.fetch_sub(1, Ordering::Relaxed);
                    if let Some(inbox) = out.as_deref_mut() {
                        inbox.push((q, msg));
                    }
                } else {
                    i += 1;
                }
            }
        }
    }
}

/// Delivers `v`'s outbox for `round`: the per-message statistics, CONGEST
/// accounting, churn/partition gates, keyed fault draws and the final
/// lock-free slot write. Line-for-line the sequential engine's `flush`,
/// against worker-local statistics and the shared slot/FIFO structures.
fn flush_worker<M: BitSize + Clone>(
    v: NodeId,
    round: usize,
    local: &mut WorkerLocal<M>,
    sh: &Shared<'_, M>,
    nxt: &SlotBuf<M>,
) {
    let mut outbox = std::mem::take(&mut local.outbox);
    for (port, msg) in outbox.drain(..) {
        local.sent[port] = false;
        let bits = msg.bit_size();
        match msg.class() {
            MsgClass::Protocol => local.stats.messages = local.stats.messages.saturating_add(1),
            MsgClass::Retransmission => {
                local.stats.retransmissions = local.stats.retransmissions.saturating_add(1);
            }
            MsgClass::Heartbeat => {
                local.stats.heartbeats = local.stats.heartbeats.saturating_add(1)
            }
            MsgClass::Maintenance => {
                local.stats.maintenance = local.stats.maintenance.saturating_add(1);
            }
        }
        local.stats.total_bits = local.stats.total_bits.saturating_add(bits as u64);
        local.stats.max_message_bits = local.stats.max_message_bits.max(bits);
        local.round_max_bits = local.round_max_bits.max(bits);
        local.round_frames += 1;
        let mut oversize = false;
        if let Model::Congest { bits: budget } = sh.config.model {
            if bits > budget {
                oversize = true;
                match sh.config.violation {
                    ViolationPolicy::Panic => panic!(
                        "CONGEST violation: node {v} sent {bits} bits over port {port} (budget {budget})"
                    ),
                    ViolationPolicy::Record => {
                        local.stats.violations = local.stats.violations.saturating_add(1);
                    }
                }
            }
        }
        let (u, q) = sh.peer_of(v, port);
        if let Some(tr) = local.trace.as_mut() {
            tr.push(TraceEvent::Send { round, from: v, port, to: u, bits, oversize });
        }
        let e = sh.graph.port(v, port).1;
        if !sh.edge_present[e].load(Ordering::Relaxed) || !sh.plan.present_seen(u, round, v) {
            local.stats.churn_drops = local.stats.churn_drops.saturating_add(1);
            continue;
        }
        if sh.plan.partitioned(round, v, u) {
            if let Some(tr) = local.trace.as_mut() {
                tr.push(TraceEvent::Fault {
                    round,
                    kind: FaultKind::Partition,
                    node: v,
                    peer: Some(u),
                });
            }
            continue;
        }
        let fate = sh.plan.message_fate(sh.config.seed, sh.run_id, round, v, port);
        if fate.lost {
            if let Some(tr) = local.trace.as_mut() {
                tr.push(TraceEvent::Fault { round, kind: FaultKind::Loss, node: v, peer: Some(u) });
            }
            continue;
        }
        // Byzantine equivocation: a listed sender tampers with every
        // outgoing copy, independently per port, before the channel
        // applies its own faults. Draws come from the dedicated
        // byz stream keyed on the message coordinates.
        let mut msg = msg;
        if sh.plan.equivocator[v] {
            let mut brng = rng::byz_rng(sh.config.seed, sh.run_id, round, v, port);
            let kind = CorruptKind::draw(&mut brng);
            local.stats.equivocations = local.stats.equivocations.saturating_add(1);
            if let Some(tr) = local.trace.as_mut() {
                tr.push(TraceEvent::Fault {
                    round,
                    kind: FaultKind::Equivocate { kind },
                    node: v,
                    peer: Some(u),
                });
            }
            match msg.corrupted(kind, &mut brng) {
                Some(m) => msg = m,
                // Tampering destroyed decodability: the frame never
                // reaches the receiver (counted and traced above).
                None => continue,
            }
        }
        // Channel corruption drawn by the fault plan: the damaged
        // value replaces the original (duplicates carry the damage
        // too — the channel corrupted the frame, not one copy).
        if let Some(kind) = fate.corrupt {
            let mut crng = rng::corrupt_rng(sh.config.seed, sh.run_id, round, v, port);
            local.stats.corruptions = local.stats.corruptions.saturating_add(1);
            if let Some(tr) = local.trace.as_mut() {
                tr.push(TraceEvent::Fault {
                    round,
                    kind: FaultKind::Corrupt { kind },
                    node: v,
                    peer: Some(u),
                });
            }
            match msg.corrupted(kind, &mut crng) {
                Some(m) => msg = m,
                None => continue,
            }
        }
        let slot = sh.offsets[u] + q;
        if fate.duplicated {
            if let Some(tr) = local.trace.as_mut() {
                tr.push(TraceEvent::Fault {
                    round,
                    kind: FaultKind::Duplicate,
                    node: v,
                    peer: Some(u),
                });
            }
            sh.fifos[slot].lock().push((round + 2, msg.clone()));
            sh.pending_count.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(delay) = fate.delayed {
            if let Some(tr) = local.trace.as_mut() {
                tr.push(TraceEvent::Fault {
                    round,
                    kind: FaultKind::Reorder { delay },
                    node: v,
                    peer: Some(u),
                });
            }
            sh.fifos[slot].lock().push((round + 1 + delay, msg));
            sh.pending_count.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        // The sequential engine gates immediate delivery on the
        // receiver's halted flag *at the sender's flush moment*. That
        // snapshot differs from the receiver-side discard (drain) only
        // when the receiver un-halts mid-round — a crash recovery, the
        // one transition that flips halted back off. Senders swept
        // before the recovering node (`v < u`) saw the flag still up,
        // so their messages were dropped; recovery rounds are static
        // plan data, so the sweep replays exactly. (Joins are already
        // ordered by `present_seen` above, and *halting* transitions
        // need no gate: the receiver discards on drain either way.)
        if sh.plan.recovery_round[u] == Some(round) && v < u {
            continue;
        }
        // SAFETY: `v` is the unique sender over `(u, q)` and sends at
        // most one message per round (double sends fail earlier), so
        // this is the slot's only writer until `u` drains it next round.
        unsafe { nxt.put(slot, msg) };
    }
    local.outbox = outbox;
}

/// Interleaves per-round event buffers into `out` in the sequential
/// engine's order: for each round, worker 0's coordinator prologue
/// (edge-churn events) first, then each worker's events — workers own
/// contiguous ascending node ranges, so buffer order is node order.
fn merge_traces(buffers: &[Vec<TraceEvent>], out: &mut Trace) {
    let total: usize = buffers.iter().map(Vec::len).sum();
    let mut cursors = vec![0usize; buffers.len()];
    let mut merged = 0usize;
    let mut round = 0usize;
    while merged < total {
        for (b, buf) in buffers.iter().enumerate() {
            while cursors[b] < buf.len() && buf[cursors[b]].round() == round {
                out.record(buf[cursors[b]].clone());
                cursors[b] += 1;
                merged += 1;
            }
        }
        round += 1;
    }
}

impl Network<'_> {
    /// Executes one protocol run on `threads` worker threads.
    ///
    /// Bit-identical to [`Network::run`]: same outputs, same statistics.
    /// Use it when the per-round computation is heavy enough to amortize
    /// two barriers per round (large `n`, expensive local steps).
    ///
    /// Unlike the sequential engine, the node factory is shared across
    /// workers and therefore must be `Fn + Sync` rather than `FnMut`.
    ///
    /// # Errors
    /// As for [`Network::run`].
    ///
    /// # Panics
    /// Panics if `threads == 0`, on oversize messages under
    /// [`ViolationPolicy::Panic`], or if protocol code panics (worker
    /// panics are resumed on the calling thread).
    pub fn run_parallel<P, F>(
        &mut self,
        make: F,
        threads: usize,
    ) -> Result<RunOutcome<P::Output>, SimError>
    where
        P: Protocol + Send,
        F: Fn(NodeId, &dyn Topology) -> P + Sync,
    {
        self.run_parallel_impl(make, None, &FaultPlan::default(), &ChurnPlan::default(), threads)
    }

    /// As [`Network::run_parallel`], additionally collecting a [`Trace`]
    /// byte-equal to the one [`Network::run_traced`] collects.
    ///
    /// # Errors
    /// As for [`Network::run_parallel`].
    pub fn run_parallel_traced<P, F>(
        &mut self,
        make: F,
        threads: usize,
    ) -> Result<(RunOutcome<P::Output>, Trace), SimError>
    where
        P: Protocol + Send,
        F: Fn(NodeId, &dyn Topology) -> P + Sync,
    {
        let mut trace = Trace::new();
        let outcome = self.run_parallel_impl(
            make,
            Some(&mut trace),
            &FaultPlan::default(),
            &ChurnPlan::default(),
            threads,
        )?;
        Ok((outcome, trace))
    }

    /// As [`Network::run_faulty`], on `threads` worker threads.
    ///
    /// # Errors
    /// As for [`Network::run_faulty`].
    pub fn run_parallel_faulty<P, F>(
        &mut self,
        make: F,
        faults: &FaultPlan,
        threads: usize,
    ) -> Result<RunOutcome<P::Output>, SimError>
    where
        P: Protocol + Send,
        F: Fn(NodeId, &dyn Topology) -> P + Sync,
    {
        self.run_parallel_impl(make, None, faults, &ChurnPlan::default(), threads)
    }

    /// As [`Network::run_faulty_traced`], on `threads` worker threads.
    ///
    /// # Errors
    /// As for [`Network::run_faulty`].
    pub fn run_parallel_faulty_traced<P, F>(
        &mut self,
        make: F,
        faults: &FaultPlan,
        threads: usize,
    ) -> Result<(RunOutcome<P::Output>, Trace), SimError>
    where
        P: Protocol + Send,
        F: Fn(NodeId, &dyn Topology) -> P + Sync,
    {
        let mut trace = Trace::new();
        let outcome =
            self.run_parallel_impl(make, Some(&mut trace), faults, &ChurnPlan::default(), threads)?;
        Ok((outcome, trace))
    }

    /// As [`Network::run_churned`], on `threads` worker threads.
    ///
    /// # Errors
    /// As for [`Network::run_churned`].
    pub fn run_parallel_churned<P, F>(
        &mut self,
        make: F,
        faults: &FaultPlan,
        churn: &ChurnPlan,
        threads: usize,
    ) -> Result<RunOutcome<P::Output>, SimError>
    where
        P: Protocol + Send,
        F: Fn(NodeId, &dyn Topology) -> P + Sync,
    {
        self.run_parallel_impl(make, None, faults, churn, threads)
    }

    /// As [`Network::run_churned_traced`], on `threads` worker threads.
    ///
    /// # Errors
    /// As for [`Network::run_churned`].
    pub fn run_parallel_churned_traced<P, F>(
        &mut self,
        make: F,
        faults: &FaultPlan,
        churn: &ChurnPlan,
        threads: usize,
    ) -> Result<(RunOutcome<P::Output>, Trace), SimError>
    where
        P: Protocol + Send,
        F: Fn(NodeId, &dyn Topology) -> P + Sync,
    {
        let mut trace = Trace::new();
        let outcome = self.run_parallel_impl(make, Some(&mut trace), faults, churn, threads)?;
        Ok((outcome, trace))
    }

    /// Runs via the engine [`SimConfig::threads`] selects: sequential for
    /// `threads <= 1`, the sharded parallel executor otherwise. Results
    /// are bit-identical either way, so drivers can expose the knob
    /// without re-validating their algorithms.
    ///
    /// # Errors
    /// As for [`Network::run`].
    pub fn execute<P, F>(&mut self, make: F) -> Result<RunOutcome<P::Output>, SimError>
    where
        P: Protocol + Send,
        F: Fn(NodeId, &dyn Topology) -> P + Sync,
    {
        self.execute_plan(make, &FaultPlan::default(), &ChurnPlan::default())
    }

    /// The runtime-facing entry point: one call consuming
    /// [`SimConfig::effective_backend`], a [`FaultPlan`] and a
    /// [`ChurnPlan`] together. Sequential by default (bit-identical to
    /// [`Network::run_churned`]), the sharded parallel executor for
    /// [`crate::Backend::Sharded`] or `threads > 1` (bit-identical to
    /// [`Network::run_parallel_churned`]), the asynchronous engine for
    /// [`crate::Backend::Async`] (bit-identical too, unless a
    /// [`SimConfig::patience`] budget admits timing drops). Every
    /// plan-driven driver should go through this method instead of
    /// choosing a `run_*` variant per call site.
    ///
    /// # Errors
    /// As for [`Network::run_churned`].
    pub fn execute_plan<P, F>(
        &mut self,
        make: F,
        faults: &FaultPlan,
        churn: &ChurnPlan,
    ) -> Result<RunOutcome<P::Output>, SimError>
    where
        P: Protocol + Send,
        F: Fn(NodeId, &dyn Topology) -> P + Sync,
    {
        match self.config().effective_backend() {
            crate::Backend::Async => self.run_async_churned(make, faults, churn),
            crate::Backend::Sharded => {
                let threads = self.config().threads.max(2);
                self.run_parallel_churned(make, faults, churn, threads)
            }
            crate::Backend::Sequential => self.run_churned(make, faults, churn),
        }
    }

    /// As [`Network::execute_plan`], additionally collecting a [`Trace`]
    /// byte-equal to the sequential engine's regardless of the thread
    /// count.
    ///
    /// # Errors
    /// As for [`Network::execute_plan`].
    pub fn execute_plan_traced<P, F>(
        &mut self,
        make: F,
        faults: &FaultPlan,
        churn: &ChurnPlan,
    ) -> Result<(RunOutcome<P::Output>, Trace), SimError>
    where
        P: Protocol + Send,
        F: Fn(NodeId, &dyn Topology) -> P + Sync,
    {
        match self.config().effective_backend() {
            crate::Backend::Async => self.run_async_churned_traced(make, faults, churn),
            crate::Backend::Sharded => {
                let threads = self.config().threads.max(2);
                self.run_parallel_churned_traced(make, faults, churn, threads)
            }
            crate::Backend::Sequential => self.run_churned_traced(make, faults, churn),
        }
    }

    fn run_parallel_impl<P, F>(
        &mut self,
        make: F,
        trace: Option<&mut Trace>,
        faults: &FaultPlan,
        churn: &ChurnPlan,
        threads: usize,
    ) -> Result<RunOutcome<P::Output>, SimError>
    where
        P: Protocol + Send,
        F: Fn(NodeId, &dyn Topology) -> P + Sync,
    {
        assert!(threads > 0, "need at least one worker thread");
        let graph = self.graph();
        let config = self.config();
        let n = graph.node_count();
        if threads.min(n) <= 1 {
            // One worker (or a trivial graph): the sequential engine IS
            // the semantics; no need to spin up a pool.
            return self.run_sequential_for_parallel(make, trace, faults, churn);
        }
        let plan = RunPlan::build(graph, faults, churn)?;
        let run_id = self.next_run_id();

        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        for v in 0..n {
            offsets.push(acc);
            acc += graph.degree(v);
        }
        offsets.push(acc);
        let total_slots = acc;
        let mut peers = Vec::with_capacity(total_slots);
        for v in 0..n {
            for p in 0..graph.degree(v) {
                peers.push(self.peer(v, p));
            }
        }

        let bufs = [SlotBuf::<P::Msg>::new(total_slots), SlotBuf::<P::Msg>::new(total_slots)];
        let sh = Shared {
            graph,
            config,
            plan: &plan,
            run_id,
            n,
            offsets,
            peers,
            fifos: (0..total_slots).map(|_| Mutex::new(Vec::new())).collect(),
            edge_present: plan.edge_present0.iter().map(AtomicBool::new).collect(),
            halted_pub: (0..n).map(|_| AtomicBool::new(false)).collect(),
            pending_count: AtomicI64::new(0),
            round_frames: AtomicU64::new(0),
            round_max_bits: AtomicUsize::new(0),
            halted_count: AtomicUsize::new(0),
            telemetry: self.stats_sink().is_some().then(TeleShared::new),
        };

        let chunk = n.div_ceil(threads.min(n));
        let workers = n.div_ceil(chunk);
        // One arena per shard: contiguous per-shard allocations in
        // ascending node order, so flattening them back restores the
        // sequential engine's node-indexed vectors exactly.
        let mut arenas: Vec<ShardArena<P>> = (0..workers)
            .map(|t| {
                let base = t * chunk;
                let end = n.min(base + chunk);
                ShardArena {
                    base,
                    protos: (base..end).map(|v| make(v, graph)).collect(),
                    rngs: (base..end).map(|v| rng::node_rng(config.seed, run_id, v)).collect(),
                    halted: vec![false; end - base],
                }
            })
            .collect();
        let barrier = Barrier::new(workers);
        let done = AtomicBool::new(false);
        let coord = Mutex::new(Coord {
            rounds: 0,
            charged: 0,
            churn_events: 0,
            quiet: 0,
            edge_event_idx: 0,
            failure: None,
            trace: Vec::new(),
        });
        let incidents: Mutex<Vec<(NodeId, Incident)>> = Mutex::new(Vec::new());
        let trace_on = trace.is_some();
        let make = &make;
        let net: &Network<'_> = self;

        let results = {
            let joined = crossbeam::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for (t, arena) in arenas.iter_mut().enumerate() {
                    let sh = &sh;
                    let bufs = &bufs;
                    let barrier = &barrier;
                    let done = &done;
                    let coord = &coord;
                    let incidents = &incidents;
                    handles.push(scope.spawn(move |_| {
                        run_worker(
                            t, arena, sh, bufs, barrier, done, coord, incidents, net, make,
                            trace_on,
                        )
                    }));
                }
                let mut results = Vec::with_capacity(workers);
                for h in handles {
                    match h.join() {
                        Ok(r) => results.push(r),
                        Err(p) => std::panic::resume_unwind(p),
                    }
                }
                results
            });
            match joined {
                Ok(r) => r,
                Err(p) => std::panic::resume_unwind(p),
            }
        };

        let coord = coord.into_inner();
        match coord.failure {
            Some(Incident::Panic(p)) => std::panic::resume_unwind(p),
            Some(Incident::Error(e)) => return Err(e),
            None => {}
        }

        let mut stats = RunStats::default();
        for (ws, _) in &results {
            stats.absorb(ws);
        }
        stats.rounds = coord.rounds;
        stats.charged_rounds = coord.charged;
        stats.churn_events = stats.churn_events.saturating_add(coord.churn_events);
        if let Some(out) = trace {
            let mut buffers = Vec::with_capacity(results.len() + 1);
            buffers.push(coord.trace);
            for (_, tr) in results {
                buffers.push(tr.unwrap_or_default());
            }
            merge_traces(&buffers, out);
        }
        self.record_run(&stats);
        let sessions = arenas.iter().flat_map(|a| a.protos.iter().map(Protocol::session)).collect();
        Ok(RunOutcome {
            outputs: arenas
                .into_iter()
                .flat_map(|a| a.protos.into_iter().map(Protocol::into_output))
                .collect(),
            stats,
            sessions,
        })
    }

    /// The `threads <= 1` fall-through of [`Network::run_parallel_impl`]:
    /// dispatches to the matching sequential entry point so the trace
    /// plumbing stays identical.
    fn run_sequential_for_parallel<P, F>(
        &mut self,
        make: F,
        trace: Option<&mut Trace>,
        faults: &FaultPlan,
        churn: &ChurnPlan,
    ) -> Result<RunOutcome<P::Output>, SimError>
    where
        P: Protocol,
        F: Fn(NodeId, &dyn Topology) -> P,
    {
        match trace {
            None => self.run_churned(make, faults, churn),
            Some(out) => {
                let (outcome, tr) = self.run_churned_traced(make, faults, churn)?;
                *out = tr;
                Ok(outcome)
            }
        }
    }
}

/// One worker's whole run: computes its shard every round, then
/// synchronizes on the two round barriers (worker 0 coordinating in
/// between). Returns the worker's statistics partial and trace buffer.
#[allow(clippy::too_many_arguments)]
fn run_worker<'g, P, F>(
    t: usize,
    arena: &mut ShardArena<P>,
    sh: &Shared<'_, P::Msg>,
    bufs: &[SlotBuf<P::Msg>; 2],
    barrier: &Barrier,
    done: &AtomicBool,
    coord: &Mutex<Coord>,
    incidents: &Mutex<Vec<(NodeId, Incident)>>,
    net: &Network<'g>,
    make: &F,
    trace_on: bool,
) -> (RunStats, Option<Vec<TraceEvent>>)
where
    P: Protocol + Send,
    F: Fn(NodeId, &dyn Topology) -> P + Sync,
{
    let ShardArena { base, protos: protos_t, rngs: rngs_t, halted: halted_t } = arena;
    let base = *base;
    let mut local = WorkerLocal {
        stats: RunStats::default(),
        trace: trace_on.then(Vec::new),
        round_frames: 0,
        round_max_bits: 0,
        outbox: Vec::new(),
        sent: vec![false; sh.graph.max_degree()],
        inbox: Vec::new(),
        fault: None,
        integrity: Integrity::default(),
        tele_prev: TeleSnapshot::default(),
    };
    let mut round = 0usize;
    loop {
        let cur = &bufs[round % 2];
        let nxt = &bufs[(round + 1) % 2];
        let mut aborted = false;
        for i in 0..protos_t.len() {
            let v = base + i;
            if round == 0 {
                if !sh.plan.node_present0[v] {
                    // Absent at round 0: silent until it joins (if ever).
                    halted_t[i] = true;
                    sh.halted_count.fetch_add(1, Ordering::SeqCst);
                    sh.halted_pub[v].store(true, Ordering::Relaxed);
                    continue;
                }
                let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut ctx = Context {
                        node: v,
                        round,
                        graph: sh.graph,
                        rng: &mut rngs_t[i],
                        outbox: &mut local.outbox,
                        sent: &mut local.sent,
                        halted: &mut halted_t[i],
                        fault: &mut local.fault,
                        integrity: &mut local.integrity,
                    };
                    protos_t[i].on_start(&mut ctx);
                    flush_worker(v, round, &mut local, sh, nxt);
                    if halted_t[i] {
                        if let Some(tr) = local.trace.as_mut() {
                            tr.push(TraceEvent::Halt { round, node: v });
                        }
                        sh.halted_count.fetch_add(1, Ordering::SeqCst);
                        sh.halted_pub[v].store(true, Ordering::Relaxed);
                    }
                }));
                aborted = report_incident(v, res, &mut local.fault, incidents);
            } else if sh.plan.leave_round[v] == Some(round) {
                // Permanent leave: silent, like a crash that never
                // recovers — but also absent from the topology.
                drain_node(sh, cur, v, round, None);
                if !halted_t[i] {
                    sh.halted_count.fetch_add(1, Ordering::SeqCst);
                }
                halted_t[i] = true;
                local.stats.churn_events = local.stats.churn_events.saturating_add(1);
                if let Some(tr) = local.trace.as_mut() {
                    tr.push(TraceEvent::Churn { round, kind: ChurnKind::Leave { node: v } });
                }
            } else if sh.plan.join_round[v] == Some(round) {
                drain_node(sh, cur, v, round, None);
                let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    // Join: fresh ports, empty registers, a randomness
                    // stream distinct from both boots and reboots.
                    protos_t[i] = make(v, sh.graph);
                    rngs_t[i] = rng::node_rng(sh.config.seed ^ 0x1099, sh.run_id, v);
                    if halted_t[i] {
                        sh.halted_count.fetch_sub(1, Ordering::SeqCst);
                    }
                    halted_t[i] = false;
                    local.stats.churn_events = local.stats.churn_events.saturating_add(1);
                    if let Some(tr) = local.trace.as_mut() {
                        tr.push(TraceEvent::Churn { round, kind: ChurnKind::Join { node: v } });
                    }
                    let mut ctx = Context {
                        node: v,
                        round,
                        graph: sh.graph,
                        rng: &mut rngs_t[i],
                        outbox: &mut local.outbox,
                        sent: &mut local.sent,
                        halted: &mut halted_t[i],
                        fault: &mut local.fault,
                        integrity: &mut local.integrity,
                    };
                    protos_t[i].on_start(&mut ctx);
                    flush_worker(v, round, &mut local, sh, nxt);
                    if halted_t[i] {
                        // Halted again straight out of on_start; the
                        // sequential join branch records no Halt event.
                        sh.halted_count.fetch_add(1, Ordering::SeqCst);
                    }
                }));
                aborted = report_incident(v, res, &mut local.fault, incidents);
            } else {
                if sh.plan.crash_round[v] == Some(round) && !halted_t[i] {
                    halted_t[i] = true; // crash-stop: silent, mid-protocol
                    sh.halted_count.fetch_add(1, Ordering::SeqCst);
                    if let Some(tr) = local.trace.as_mut() {
                        tr.push(TraceEvent::Fault {
                            round,
                            kind: FaultKind::Crash,
                            node: v,
                            peer: None,
                        });
                    }
                }
                if sh.plan.recovery_round[v] == Some(round) {
                    drain_node(sh, cur, v, round, None);
                    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        // Crash-recover: wiped state, fresh randomness,
                        // on_start as a cold boot.
                        protos_t[i] = make(v, sh.graph);
                        rngs_t[i] = rng::node_rng(sh.config.seed ^ 0xB007, sh.run_id, v);
                        if halted_t[i] {
                            sh.halted_count.fetch_sub(1, Ordering::SeqCst);
                        }
                        halted_t[i] = false;
                        if let Some(tr) = local.trace.as_mut() {
                            tr.push(TraceEvent::Fault {
                                round,
                                kind: FaultKind::Recover,
                                node: v,
                                peer: None,
                            });
                        }
                        let mut ctx = Context {
                            node: v,
                            round,
                            graph: sh.graph,
                            rng: &mut rngs_t[i],
                            outbox: &mut local.outbox,
                            sent: &mut local.sent,
                            halted: &mut halted_t[i],
                            fault: &mut local.fault,
                            integrity: &mut local.integrity,
                        };
                        protos_t[i].on_start(&mut ctx);
                        flush_worker(v, round, &mut local, sh, nxt);
                        if halted_t[i] {
                            sh.halted_count.fetch_add(1, Ordering::SeqCst);
                        }
                    }));
                    aborted = report_incident(v, res, &mut local.fault, incidents);
                } else if halted_t[i] {
                    drain_node(sh, cur, v, round, None);
                } else {
                    local.inbox.clear();
                    let mut inbox = std::mem::take(&mut local.inbox);
                    drain_node(sh, cur, v, round, Some(&mut inbox));
                    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut ctx = Context {
                            node: v,
                            round,
                            graph: sh.graph,
                            rng: &mut rngs_t[i],
                            outbox: &mut local.outbox,
                            sent: &mut local.sent,
                            halted: &mut halted_t[i],
                            fault: &mut local.fault,
                            integrity: &mut local.integrity,
                        };
                        protos_t[i].on_round(&mut ctx, &inbox);
                        flush_worker(v, round, &mut local, sh, nxt);
                        if halted_t[i] {
                            if let Some(tr) = local.trace.as_mut() {
                                tr.push(TraceEvent::Halt { round, node: v });
                            }
                            sh.halted_count.fetch_add(1, Ordering::SeqCst);
                        }
                    }));
                    inbox.clear();
                    local.inbox = inbox;
                    aborted = report_incident(v, res, &mut local.fault, incidents);
                }
            }
            if aborted {
                break; // the coordinator ends the run at this barrier
            }
        }
        sh.round_frames.fetch_add(local.round_frames, Ordering::SeqCst);
        local.round_frames = 0;
        sh.round_max_bits.fetch_max(local.round_max_bits, Ordering::SeqCst);
        local.round_max_bits = 0;
        if let Some(tele) = &sh.telemetry {
            tele.publish(TeleSnapshot::of(&local.stats, &local.integrity), &mut local.tele_prev);
        }
        barrier.wait();
        if t == 0 {
            coordinate(round, sh, nxt, coord, incidents, done, net, trace_on);
        }
        barrier.wait();
        if done.load(Ordering::SeqCst) {
            break;
        }
        round += 1;
    }
    // Integrity reports fold into the worker's stats partial; the sums
    // commute across workers, so the merged totals equal the sequential
    // engine's single-accumulator fold.
    local.integrity.fold_into(&mut local.stats);
    (local.stats, local.trace)
}

/// Files a per-node incident: a panic out of protocol code, or the
/// protocol error the node's context recorded. Returns whether the
/// worker should stop processing its shard this round.
fn report_incident(
    v: NodeId,
    res: Result<(), Box<dyn std::any::Any + Send + 'static>>,
    fault: &mut Option<SimError>,
    incidents: &Mutex<Vec<(NodeId, Incident)>>,
) -> bool {
    match res {
        Ok(()) => {
            if let Some(err) = fault.take() {
                incidents.lock().push((v, Incident::Error(err)));
                true
            } else {
                false
            }
        }
        Err(p) => {
            incidents.lock().push((v, Incident::Panic(p)));
            true
        }
    }
}

/// Worker 0's exclusive round-boundary window (between the two
/// barriers): reproduces the sequential engine's loop head — incident
/// collection, round accounting, the all-halted / quiescence /
/// round-limit checks — and applies the next round's edge-churn events.
#[allow(clippy::too_many_arguments)]
fn coordinate<M>(
    round: usize,
    sh: &Shared<'_, M>,
    nxt: &SlotBuf<M>,
    coord: &Mutex<Coord>,
    incidents: &Mutex<Vec<(NodeId, Incident)>>,
    done: &AtomicBool,
    net: &Network<'_>,
    trace_on: bool,
) {
    let mut c = coord.lock();
    let mut inc = incidents.lock();
    if !inc.is_empty() {
        // The sequential engine stops at the first incident in node
        // order; with one incident per node and per-round collection,
        // that is the minimum node id of this (earliest) round.
        inc.sort_by_key(|&(v, _)| v);
        let (_, first) = inc.remove(0);
        c.failure = Some(first);
        done.store(true, Ordering::SeqCst);
        return;
    }
    drop(inc);
    c.rounds += 1;
    let rmb = sh.round_max_bits.swap(0, Ordering::SeqCst);
    c.charged = c.charged.saturating_add(net.charge(rmb));
    let frames = sh.round_frames.swap(0, Ordering::SeqCst);
    // Stream this round's cumulative sample before any end-of-run
    // decision: the sequential engine samples at the end of every
    // executed round, and checks the stop conditions only at the head of
    // the next one. Worker deltas happened-before via the first barrier;
    // edge-churn events live in `c.churn_events` and are counted here
    // *before* round r+1's events are applied below — exactly the
    // counter state the sequential engine samples after round r.
    if let Some(tele) = &sh.telemetry {
        let stats = RunStats {
            messages: tele.messages.load(Ordering::SeqCst),
            retransmissions: tele.retransmissions.load(Ordering::SeqCst),
            heartbeats: tele.heartbeats.load(Ordering::SeqCst),
            maintenance: tele.maintenance.load(Ordering::SeqCst),
            churn_events: tele.churn_events.load(Ordering::SeqCst).saturating_add(c.churn_events),
            churn_drops: tele.churn_drops.load(Ordering::SeqCst),
            ..RunStats::default()
        };
        let integrity = Integrity {
            rejected: tele.rejected.load(Ordering::SeqCst),
            quarantined: tele.quarantined.load(Ordering::SeqCst),
            suspected: tele.suspected.load(Ordering::SeqCst),
            outstanding: tele.outstanding.load(Ordering::SeqCst),
        };
        net.sample_round(sh.run_id, round, &stats, &integrity);
    }
    let hc = sh.halted_count.load(Ordering::SeqCst);
    if hc == sh.n && round >= sh.plan.last_wake {
        done.store(true, Ordering::SeqCst);
        return;
    }
    if let Some(k) = sh.config.quiescence {
        let quiet_now = if round == 0 {
            // The sequential loop head after round 0 trivially passes its
            // frames check (the baseline was just initialized), so the
            // binding condition is "nothing in flight": no pending
            // duplicates/reorders and no *delivered* slot. A slot written
            // to a node that halted during round 0 counts as delivered
            // only if the sender ran before the halt (sender id < node) —
            // exactly what the sequential halted-receiver gate saw.
            let mut next_empty = true;
            'scan: for u in 0..sh.n {
                let b = sh.offsets[u];
                for q in 0..sh.graph.degree(u) {
                    // SAFETY: between the barriers no worker touches the
                    // buffers; worker 0 is the sole accessor.
                    if unsafe { nxt.occupied(b + q) } {
                        let (s, _) = sh.peers[b + q];
                        if !sh.halted_pub[u].load(Ordering::Relaxed) || u > s {
                            next_empty = false;
                            break 'scan;
                        }
                    }
                }
            }
            next_empty && sh.pending_count.load(Ordering::SeqCst) == 0
        } else {
            frames == 0 && sh.pending_count.load(Ordering::SeqCst) == 0
        };
        if quiet_now {
            c.quiet += 1;
            if c.quiet >= k && round >= sh.plan.last_wake {
                done.store(true, Ordering::SeqCst); // message-driven protocols are done
                return;
            }
        } else {
            c.quiet = 0;
        }
    }
    if round >= sh.config.max_rounds {
        c.failure = Some(Incident::Error(SimError::RoundLimitExceeded {
            limit: sh.config.max_rounds,
            running: sh.n - hc,
        }));
        done.store(true, Ordering::SeqCst);
        return;
    }
    // Apply round r+1's edge events before anyone executes it — the
    // sequential engine's round prologue, hoisted into the barrier
    // window.
    while c.edge_event_idx < sh.plan.edge_events.len()
        && sh.plan.edge_events[c.edge_event_idx].round == round + 1
    {
        let ev = sh.plan.edge_events[c.edge_event_idx];
        c.edge_event_idx += 1;
        match ev.kind {
            ChurnKind::EdgeUp { edge } => sh.edge_present[edge].store(true, Ordering::Relaxed),
            ChurnKind::EdgeDown { edge } => sh.edge_present[edge].store(false, Ordering::Relaxed),
            ChurnKind::Join { .. } | ChurnKind::Leave { .. } => unreachable!(),
        }
        c.churn_events += 1;
        if trace_on {
            c.trace.push(TraceEvent::Churn { round: round + 1, kind: ev.kind });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SimConfig;
    use dam_graph::generators;
    use rand::{RngExt, SeedableRng};

    /// A protocol exercising randomness, message flow and variable halting:
    /// nodes gossip random values for `rounds` rounds and remember the sum.
    struct Gossip {
        acc: u64,
        rounds: usize,
    }

    impl Protocol for Gossip {
        type Msg = u64;
        type Output = u64;

        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            let x: u64 = ctx.rng().random_range(0..1000);
            self.acc = x;
            ctx.broadcast(x);
        }

        fn on_round(&mut self, ctx: &mut Context<'_, u64>, inbox: &[(Port, u64)]) {
            for &(_, x) in inbox {
                self.acc = self.acc.wrapping_mul(31).wrapping_add(x);
            }
            if ctx.round() >= self.rounds + ctx.id() % 3 {
                ctx.halt();
            } else {
                ctx.broadcast(self.acc % 1000);
            }
        }

        fn into_output(self) -> u64 {
            self.acc
        }
    }

    #[test]
    fn parallel_sink_stream_matches_sequential() {
        use crate::engine::Squall;
        use crate::telemetry::{RecordingSink, SinkHandle};
        use std::sync::Arc;
        let mut seed_rng = rand::rngs::StdRng::seed_from_u64(77);
        let g = generators::gnp(40, 0.15, &mut seed_rng);
        let plan = FaultPlan::lossy(0.1).with_squall(Squall {
            from_round: 2,
            until_round: 5,
            loss: 0.4,
            corrupt: 0.0,
        });
        let record = |threads: Option<usize>| {
            let sink = Arc::new(RecordingSink::new());
            let mut net = Network::new(&g, SimConfig::local().seed(3).max_rounds(5_000));
            net.set_stats_sink(Some(SinkHandle::from(Arc::clone(&sink))));
            let out = match threads {
                None => net.run_faulty(|_, _| Gossip { acc: 0, rounds: 6 }, &plan).unwrap(),
                Some(t) => {
                    net.run_parallel_faulty(|_, _| Gossip { acc: 0, rounds: 6 }, &plan, t).unwrap()
                }
            };
            (out, sink.samples())
        };
        let (seq_out, seq_samples) = record(None);
        assert_eq!(seq_samples.len() as u64, seq_out.stats.rounds);
        for t in [2, 4, 7] {
            let (par_out, par_samples) = record(Some(t));
            assert_eq!(par_out.outputs, seq_out.outputs);
            assert_eq!(par_out.stats, seq_out.stats);
            assert_eq!(par_samples, seq_samples, "telemetry stream diverges at {t} threads");
        }
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let mut seed_rng = rand::rngs::StdRng::seed_from_u64(10);
        for trial in 0..5 {
            let g = generators::gnp(40, 0.15, &mut seed_rng);
            let run_seq = {
                let mut net = Network::new(&g, SimConfig::local().seed(trial));
                net.run(|_, _| Gossip { acc: 0, rounds: 6 }).unwrap()
            };
            for threads in [1, 2, 4, 7] {
                let mut net = Network::new(&g, SimConfig::local().seed(trial));
                let run_par =
                    net.run_parallel(|_, _| Gossip { acc: 0, rounds: 6 }, threads).unwrap();
                assert_eq!(run_seq.outputs, run_par.outputs, "trial {trial}, {threads} threads");
                assert_eq!(run_seq.stats, run_par.stats, "trial {trial}, {threads} threads");
            }
        }
    }

    #[test]
    fn parallel_traces_match_sequential() {
        let mut seed_rng = rand::rngs::StdRng::seed_from_u64(77);
        let g = generators::gnp(24, 0.2, &mut seed_rng);
        let (seq, seq_trace) = {
            let mut net = Network::new(&g, SimConfig::congest(64).seed(5));
            net.run_traced(|_, _| Gossip { acc: 0, rounds: 5 }).unwrap()
        };
        let mut net = Network::new(&g, SimConfig::congest(64).seed(5));
        let (par, par_trace) =
            net.run_parallel_traced(|_, _| Gossip { acc: 0, rounds: 5 }, 4).unwrap();
        assert_eq!(seq.outputs, par.outputs);
        assert_eq!(seq.stats, par.stats);
        assert_eq!(seq_trace.events(), par_trace.events());
    }

    #[test]
    fn parallel_round_limit() {
        struct Forever;
        impl Protocol for Forever {
            type Msg = ();
            type Output = ();
            fn on_round(&mut self, _: &mut Context<'_, ()>, _: &[(Port, ())]) {}
            fn into_output(self) {}
        }
        let g = generators::path(6);
        let mut net = Network::new(&g, SimConfig::local().max_rounds(8));
        let err = net.run_parallel(|_, _| Forever, 3).unwrap_err();
        assert!(matches!(err, SimError::RoundLimitExceeded { limit: 8, .. }));
    }

    #[test]
    fn parallel_duplicate_send_reports_first_node() {
        struct DoubleSend;
        impl Protocol for DoubleSend {
            type Msg = u8;
            type Output = ();
            fn on_round(&mut self, ctx: &mut Context<'_, u8>, _: &[(Port, u8)]) {
                if ctx.round() == 2 && ctx.id() >= 3 {
                    ctx.send(0, 1);
                    ctx.send(0, 2);
                }
            }
            fn into_output(self) {}
        }
        let g = generators::cycle(9);
        let seq_err = {
            let mut net = Network::new(&g, SimConfig::local());
            net.run(|_, _| DoubleSend).unwrap_err()
        };
        let mut net = Network::new(&g, SimConfig::local());
        let par_err = net.run_parallel(|_, _| DoubleSend, 4).unwrap_err();
        assert_eq!(format!("{seq_err:?}"), format!("{par_err:?}"));
        assert!(matches!(par_err, SimError::DuplicateSend { node: 3, port: 0, round: 2 }));
    }

    #[test]
    fn execute_dispatches_on_config_threads() {
        let g = generators::cycle(12);
        let seq = {
            let mut net = Network::new(&g, SimConfig::local().seed(2));
            net.run(|_, _| Gossip { acc: 0, rounds: 4 }).unwrap()
        };
        let mut net = Network::new(&g, SimConfig::local().seed(2).threads(3));
        let par = net.execute(|_, _| Gossip { acc: 0, rounds: 4 }).unwrap();
        assert_eq!(seq.outputs, par.outputs);
        assert_eq!(seq.stats, par.stats);
    }

    #[test]
    fn parallel_quiescence_matches_sequential() {
        /// Message-driven: forwards until a hop budget is spent, never
        /// halts voluntarily — only quiescence can end the run.
        struct Relay;
        impl Protocol for Relay {
            type Msg = u32;
            type Output = ();
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                if ctx.id() == 0 {
                    ctx.send(0, 6);
                }
            }
            fn on_round(&mut self, ctx: &mut Context<'_, u32>, inbox: &[(Port, u32)]) {
                for &(port, ttl) in inbox {
                    if ttl > 0 {
                        let out = if port == 0 { 1 } else { 0 };
                        ctx.send(out, ttl - 1);
                    }
                }
            }
            fn into_output(self) {}
        }
        let g = generators::cycle(8);
        let seq = {
            let mut net = Network::new(&g, SimConfig::local().quiesce_after(2));
            net.run(|_, _| Relay).unwrap()
        };
        let mut net = Network::new(&g, SimConfig::local().quiesce_after(2));
        let par = net.run_parallel(|_, _| Relay, 3).unwrap();
        assert_eq!(seq.stats, par.stats);
    }
}
