//! The multi-threaded engine.
//!
//! Executes the same synchronous semantics as [`crate::Network::run`]
//! across worker threads (crossbeam scoped threads, one barrier per round
//! half-step). Determinism is preserved because a node's behaviour depends
//! only on its private RNG and its inbox sorted by port — never on thread
//! scheduling — so `run` and `run_parallel` produce bit-identical outputs
//! and statistics (a property the test suite checks).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Barrier;

use dam_graph::{Graph, NodeId};
use parking_lot::Mutex;

use crate::engine::{Network, RunOutcome};
use crate::error::SimError;
use crate::message::BitSize;
use crate::model::{CostModel, Model, ViolationPolicy};
use crate::node::{Context, Port, Protocol};
use crate::rng;
use crate::stats::RunStats;

/// One lock-guarded inbox per node (double-buffered across round parity).
type InboxBuf<M> = Vec<Mutex<Vec<(Port, M)>>>;

impl Network<'_> {
    /// Executes one protocol run on `threads` worker threads.
    ///
    /// Semantically identical to [`Network::run`] (same outputs, same
    /// statistics); use it when the per-round computation is heavy enough
    /// to amortize synchronization (large `n`, expensive local steps).
    ///
    /// # Errors
    /// As for [`Network::run`].
    ///
    /// # Panics
    /// Panics if `threads == 0`, on oversize messages under
    /// [`ViolationPolicy::Panic`], or if a worker thread panics.
    pub fn run_parallel<P, F>(
        &mut self,
        make: F,
        threads: usize,
    ) -> Result<RunOutcome<P::Output>, SimError>
    where
        P: Protocol + Send,
        P::Output: Send,
        F: FnMut(NodeId, &Graph) -> P,
    {
        assert!(threads > 0, "need at least one worker thread");
        let graph = self.graph();
        let config = self.config();
        let n = graph.node_count();
        if n == 0 {
            return self.run(make);
        }
        let run_id = self.next_run_id();

        let mut make = make;
        let mut protos: Vec<P> = (0..n).map(|v| make(v, graph)).collect();
        let mut rngs: Vec<_> = (0..n).map(|v| rng::node_rng(config.seed, run_id, v)).collect();
        let mut halted: Vec<bool> = vec![false; n];

        // Double-buffered inboxes, indexed by round parity.
        let buf_a: InboxBuf<P::Msg> = (0..n).map(|_| Mutex::new(Vec::new())).collect();
        let buf_b: InboxBuf<P::Msg> = (0..n).map(|_| Mutex::new(Vec::new())).collect();

        let workers = threads.min(n);
        let chunk = n.div_ceil(workers);
        // chunks_mut(chunk) yields exactly this many disjoint slices.
        let num_chunks = n.div_ceil(chunk);
        let barrier = Barrier::new(num_chunks);

        let done = AtomicBool::new(false);
        let halted_count = AtomicUsize::new(0);
        let round_max_bits = AtomicUsize::new(0);
        let charged_total = AtomicUsize::new(0);
        let rounds_total = AtomicUsize::new(0);
        let fault: Mutex<Option<SimError>> = Mutex::new(None);
        let _ = workers;
        // Message/bit totals are easier as atomics (u64).
        let messages = AtomicU64::new(0);
        let total_bits = AtomicU64::new(0);
        let violations = AtomicU64::new(0);
        let max_msg_bits = AtomicUsize::new(0);

        let charge = |max_bits: usize| -> usize {
            match (config.cost, config.model) {
                (CostModel::Pipelined, Model::Congest { bits }) if max_bits > 0 => {
                    max_bits.div_ceil(bits).max(1)
                }
                _ => 1,
            }
        };

        {
            // Split node-owned state into disjoint per-thread chunks.
            let proto_chunks: Vec<&mut [P]> = protos.chunks_mut(chunk).collect();
            let rng_chunks: Vec<_> = rngs.chunks_mut(chunk).collect();
            let halted_chunks: Vec<&mut [bool]> = halted.chunks_mut(chunk).collect();

            crossbeam::thread::scope(|scope| {
                for (t, ((protos_t, rngs_t), halted_t)) in proto_chunks
                    .into_iter()
                    .zip(rng_chunks)
                    .zip(halted_chunks)
                    .enumerate()
                {
                    let barrier = &barrier;
                    let done = &done;
                    let halted_count = &halted_count;
                    let round_max_bits = &round_max_bits;
                    let charged_total = &charged_total;
                    let rounds_total = &rounds_total;
                    let fault = &fault;
                    let buf_a = &buf_a;
                    let buf_b = &buf_b;
                    let messages = &messages;
                    let total_bits = &total_bits;
                    let violations = &violations;
                    let max_msg_bits = &max_msg_bits;
                    let net: &Network<'_> = self;
                    scope.spawn(move |_| {
                        let base = t * chunk;
                        let mut outbox: Vec<(Port, P::Msg)> = Vec::new();
                        let mut sent = vec![false; graph.max_degree()];
                        let mut local_fault: Option<SimError> = None;
                        let mut inbox_buf: Vec<(Port, P::Msg)> = Vec::new();
                        let mut round = 0usize;
                        loop {
                            barrier.wait();
                            if done.load(Ordering::SeqCst) {
                                break;
                            }
                            // Receiving buffer for this round's deliveries;
                            // processing buffer holds last round's.
                            let (cur, nxt) = if round.is_multiple_of(2) { (buf_a, buf_b) } else { (buf_b, buf_a) };
                            for (i, proto) in protos_t.iter_mut().enumerate() {
                                let v = base + i;
                                if halted_t[i] {
                                    cur[v].lock().clear();
                                    continue;
                                }
                                inbox_buf.clear();
                                {
                                    let mut locked = cur[v].lock();
                                    std::mem::swap(&mut *locked, &mut inbox_buf);
                                }
                                inbox_buf.sort_by_key(|&(p, _)| p);
                                let was_halted = halted_t[i];
                                let mut ctx = Context {
                                    node: v,
                                    round,
                                    graph,
                                    rng: &mut rngs_t[i],
                                    outbox: &mut outbox,
                                    sent: &mut sent,
                                    halted: &mut halted_t[i],
                                    fault: &mut local_fault,
                                };
                                if round == 0 {
                                    proto.on_start(&mut ctx);
                                } else {
                                    proto.on_round(&mut ctx, &inbox_buf);
                                }
                                if halted_t[i] && !was_halted {
                                    halted_count.fetch_add(1, Ordering::SeqCst);
                                }
                                // Deliver.
                                for (port, msg) in outbox.drain(..) {
                                    sent[port] = false;
                                    let bits = msg.bit_size();
                                    messages.fetch_add(1, Ordering::Relaxed);
                                    total_bits.fetch_add(bits as u64, Ordering::Relaxed);
                                    max_msg_bits.fetch_max(bits, Ordering::Relaxed);
                                    round_max_bits.fetch_max(bits, Ordering::Relaxed);
                                    if let Model::Congest { bits: budget } = config.model {
                                        if bits > budget {
                                            match config.violation {
                                                ViolationPolicy::Panic => panic!(
                                                    "CONGEST violation: node {v} sent {bits} bits (budget {budget})"
                                                ),
                                                ViolationPolicy::Record => {
                                                    violations.fetch_add(1, Ordering::Relaxed);
                                                }
                                            }
                                        }
                                    }
                                    let (u, q) = net.peer(v, port);
                                    nxt[u].lock().push((q, msg));
                                }
                                if let Some(err) = local_fault.take() {
                                    let mut f = fault.lock();
                                    if f.is_none() {
                                        *f = Some(err);
                                    }
                                }
                            }
                            let res = barrier.wait();
                            if res.is_leader() {
                                rounds_total.fetch_add(1, Ordering::SeqCst);
                                let rmb = round_max_bits.swap(0, Ordering::SeqCst);
                                charged_total.fetch_add(charge(rmb), Ordering::SeqCst);
                                let all_halted = halted_count.load(Ordering::SeqCst) == n;
                                let faulted = fault.lock().is_some();
                                if all_halted || faulted {
                                    done.store(true, Ordering::SeqCst);
                                } else if round >= config.max_rounds {
                                    let mut f = fault.lock();
                                    if f.is_none() {
                                        *f = Some(SimError::RoundLimitExceeded {
                                            limit: config.max_rounds,
                                            running: n - halted_count.load(Ordering::SeqCst),
                                        });
                                    }
                                    done.store(true, Ordering::SeqCst);
                                }
                            }
                            round += 1;
                        }
                        let _ = t;
                    });
                }
            })
            .expect("worker thread panicked");
        }

        if let Some(err) = fault.lock().take() {
            return Err(err);
        }

        let stats = RunStats {
            rounds: rounds_total.load(Ordering::SeqCst),
            charged_rounds: charged_total.load(Ordering::SeqCst),
            messages: messages.load(Ordering::SeqCst),
            total_bits: total_bits.load(Ordering::SeqCst),
            max_message_bits: max_msg_bits.load(Ordering::SeqCst),
            violations: violations.load(Ordering::SeqCst),
            ..RunStats::default()
        };
        self.record_run(&stats);
        Ok(RunOutcome { outputs: protos.into_iter().map(Protocol::into_output).collect(), stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SimConfig;
    use dam_graph::generators;
    use rand::RngExt;

    /// A protocol exercising randomness, message flow and variable halting:
    /// nodes gossip random values for `rounds` rounds and remember the sum.
    struct Gossip {
        acc: u64,
        rounds: usize,
    }

    impl Protocol for Gossip {
        type Msg = u64;
        type Output = u64;

        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            let x: u64 = ctx.rng().random_range(0..1000);
            self.acc = x;
            ctx.broadcast(x);
        }

        fn on_round(&mut self, ctx: &mut Context<'_, u64>, inbox: &[(Port, u64)]) {
            for &(_, x) in inbox {
                self.acc = self.acc.wrapping_mul(31).wrapping_add(x);
            }
            if ctx.round() >= self.rounds + ctx.id() % 3 {
                ctx.halt();
            } else {
                ctx.broadcast(self.acc % 1000);
            }
        }

        fn into_output(self) -> u64 {
            self.acc
        }
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let mut seed_rng = rand::rngs::StdRng::seed_from_u64(10);
        for trial in 0..5 {
            let g = generators::gnp(40, 0.15, &mut seed_rng);
            let run_seq = {
                let mut net = Network::new(&g, SimConfig::local().seed(trial));
                net.run(|_, _| Gossip { acc: 0, rounds: 6 }).unwrap()
            };
            for threads in [1, 2, 4, 7] {
                let mut net = Network::new(&g, SimConfig::local().seed(trial));
                let run_par =
                    net.run_parallel(|_, _| Gossip { acc: 0, rounds: 6 }, threads).unwrap();
                assert_eq!(run_seq.outputs, run_par.outputs, "trial {trial}, {threads} threads");
                assert_eq!(run_seq.stats, run_par.stats, "trial {trial}, {threads} threads");
            }
        }
    }

    #[test]
    fn parallel_round_limit() {
        struct Forever;
        impl Protocol for Forever {
            type Msg = ();
            type Output = ();
            fn on_round(&mut self, _: &mut Context<'_, ()>, _: &[(Port, ())]) {}
            fn into_output(self) {}
        }
        let g = generators::path(6);
        let mut net = Network::new(&g, SimConfig::local().max_rounds(8));
        let err = net.run_parallel(|_, _| Forever, 3).unwrap_err();
        assert!(matches!(err, SimError::RoundLimitExceeded { limit: 8, .. }));
    }

    use rand::SeedableRng;
}
