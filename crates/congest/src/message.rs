//! The [`BitSize`] trait: message width accounting.
//!
//! The CONGEST model bounds the number of **bits** per message per edge
//! per round. Every message type reports its width through [`BitSize`];
//! the engine records the widths and enforces the model's budget.
//!
//! Primitive widths are their machine widths (`u32` = 32 bits, `f64` = 64,
//! `bool` = 1, …). Containers sum their elements. Protocols whose paper
//! analysis uses tighter encodings (e.g. `⌈log₂ n⌉`-bit identifiers or the
//! `O(ℓ log Δ)`-bit path counts of Lemma 3.8) implement [`BitSize`]
//! manually on their message enums with the analytical formula; the
//! built-in impls are the honest default for machine representations.

use rand::rngs::StdRng;

/// The shape of a message-corruption fault drawn from a
/// [`crate::FaultPlan`] (or inflicted by a Byzantine equivocator).
///
/// In-memory simulator messages have no byte encoding, so corruption is
/// modelled *semantically*: each kind names a class of wire damage and
/// [`BitSize::corrupted`] maps it onto the message type's value space.
/// A type that does not override `corrupted` treats every kind as
/// destroying the message beyond decodability (the frame is dropped at
/// the receiver's NIC), which is the honest default for types without a
/// defensive decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptKind {
    /// One or a few flipped payload bits: the message decodes, but to a
    /// *different valid-looking* value.
    BitFlip,
    /// The tail of the frame is cut off: optional fields read as
    /// absent, trailing payloads vanish.
    Truncate,
    /// The payload is random noise with no relation to the original.
    Garbage,
    /// A stale copy of an earlier frame is injected (replay attack).
    Replay,
    /// A syntactically plausible frame forged by the adversary —
    /// internally consistent, but not sent by the claimed origin.
    Forge,
}

impl CorruptKind {
    /// All corruption kinds, in draw order (index-stable: the keyed
    /// fault RNG picks by index, so reordering this list would change
    /// every seeded corruption schedule).
    pub const ALL: [CorruptKind; 5] = [
        CorruptKind::BitFlip,
        CorruptKind::Truncate,
        CorruptKind::Garbage,
        CorruptKind::Replay,
        CorruptKind::Forge,
    ];

    /// Draws a kind uniformly from [`CorruptKind::ALL`] using `rng`.
    #[must_use]
    pub fn draw(rng: &mut StdRng) -> CorruptKind {
        use rand::RngExt;
        Self::ALL[rng.random_range(0..Self::ALL.len())]
    }
}

/// Accounting class of a message, used to separate a fault-tolerant
/// transport's overhead (retransmitted frames, failure-detector
/// heartbeats) from genuine protocol traffic in
/// [`crate::RunStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MsgClass {
    /// Ordinary protocol payload — counted in `RunStats::messages`.
    #[default]
    Protocol,
    /// A frame resent by a reliable transport — counted in
    /// `RunStats::retransmissions`.
    Retransmission,
    /// A failure-detector heartbeat — counted in `RunStats::heartbeats`.
    Heartbeat,
    /// Matching-maintenance traffic (repair after churn) — counted in
    /// `RunStats::maintenance` so steady-state upkeep is billed
    /// separately from the algorithm proper.
    Maintenance,
}

/// Number of bits a message occupies on the wire.
pub trait BitSize {
    /// The width of this value in bits.
    fn bit_size(&self) -> usize;

    /// The accounting class of this message. Default:
    /// [`MsgClass::Protocol`]; only transport wrappers override it.
    fn class(&self) -> MsgClass {
        MsgClass::Protocol
    }

    /// The value this message decodes to after suffering a `kind`
    /// corruption fault, or `None` if the damage makes the frame
    /// undecodable (it is then dropped before delivery, like a failed
    /// link-layer CRC).
    ///
    /// The default treats every corruption as destroying the message —
    /// correct for any type without an explicit defensive decoder.
    /// Types that model partial damage (the transport's
    /// [`crate::transport::Frame`], protocol enums like Israeli–Itai's
    /// messages) override this to return tampered-but-decodable values,
    /// which is what exercises receiver-side validation. `rng` is the
    /// keyed corruption stream for this message; implementations must
    /// draw all randomness from it so both engines corrupt identically.
    fn corrupted(&self, kind: CorruptKind, rng: &mut StdRng) -> Option<Self>
    where
        Self: Sized,
    {
        let _ = (kind, rng);
        None
    }
}

macro_rules! fixed_width {
    ($($t:ty => $bits:expr),* $(,)?) => {
        $(impl BitSize for $t {
            fn bit_size(&self) -> usize { $bits }
        })*
    };
}

fixed_width! {
    u8 => 8, u16 => 16, u32 => 32, u64 => 64, u128 => 128,
    i8 => 8, i16 => 16, i32 => 32, i64 => 64, i128 => 128,
    f32 => 32, f64 => 64,
    usize => usize::BITS as usize, isize => isize::BITS as usize,
    bool => 1,
}

impl BitSize for () {
    fn bit_size(&self) -> usize {
        0
    }
}

impl<T: BitSize> BitSize for Option<T> {
    /// One presence bit plus the payload.
    fn bit_size(&self) -> usize {
        1 + self.as_ref().map_or(0, BitSize::bit_size)
    }
}

impl<T: BitSize> BitSize for Vec<T> {
    /// Sum of element widths (no framing overhead).
    fn bit_size(&self) -> usize {
        self.iter().map(BitSize::bit_size).sum()
    }
}

impl<T: BitSize> BitSize for Box<T> {
    fn bit_size(&self) -> usize {
        (**self).bit_size()
    }
}

impl<A: BitSize, B: BitSize> BitSize for (A, B) {
    fn bit_size(&self) -> usize {
        self.0.bit_size() + self.1.bit_size()
    }
}

impl<A: BitSize, B: BitSize, C: BitSize> BitSize for (A, B, C) {
    fn bit_size(&self) -> usize {
        self.0.bit_size() + self.1.bit_size() + self.2.bit_size()
    }
}

/// The number of bits needed to address one of `n` distinct values —
/// `⌈log₂ n⌉`, with a minimum of 1.
///
/// Used by protocols that account node identifiers analytically (the
/// paper's `O(log n)`-bit ids).
#[must_use]
pub fn id_bits(n: usize) -> usize {
    (usize::BITS - (n.max(2) - 1).leading_zeros()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_widths() {
        assert_eq!(5u32.bit_size(), 32);
        assert_eq!(5u64.bit_size(), 64);
        assert_eq!(true.bit_size(), 1);
        assert_eq!(1.5f64.bit_size(), 64);
        assert_eq!(().bit_size(), 0);
    }

    #[test]
    fn container_widths() {
        assert_eq!(Some(1u8).bit_size(), 9);
        assert_eq!(None::<u8>.bit_size(), 1);
        assert_eq!(vec![1u16, 2, 3].bit_size(), 48);
        assert_eq!((1u8, 2u8).bit_size(), 16);
        assert_eq!((1u8, 2u8, true).bit_size(), 17);
        assert_eq!(Box::new(7u32).bit_size(), 32);
    }

    #[test]
    fn id_bits_formula() {
        assert_eq!(id_bits(1), 1);
        assert_eq!(id_bits(2), 1);
        assert_eq!(id_bits(3), 2);
        assert_eq!(id_bits(4), 2);
        assert_eq!(id_bits(5), 3);
        assert_eq!(id_bits(1024), 10);
        assert_eq!(id_bits(1025), 11);
    }
}
