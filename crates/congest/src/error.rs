//! Simulator error types.

use std::error::Error;
use std::fmt;

/// Errors produced by a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The round guard (`SimConfig::max_rounds`) fired before every node
    /// halted.
    RoundLimitExceeded {
        /// The configured limit.
        limit: usize,
        /// Nodes still running when the guard fired.
        running: usize,
    },
    /// A node sent two messages over the same port in one round —
    /// disallowed by the model (one message per edge per direction per
    /// round).
    DuplicateSend {
        /// The sending node.
        node: usize,
        /// The port used twice.
        port: usize,
        /// The round in which it happened.
        round: usize,
    },
    /// A [`crate::FaultPlan`] failed validation (probability outside
    /// `[0, 1]`, duplicate crash entries, recovery without a prior crash,
    /// out-of-range nodes, …). Rejected before the run starts.
    InvalidFaultPlan {
        /// What was wrong with the plan.
        reason: String,
    },
    /// A [`crate::ChurnPlan`] failed validation (out-of-range ids,
    /// joining a present node, events on permanently-left nodes, overlap
    /// with the fault plan's crash set, …). Rejected before the run
    /// starts.
    InvalidChurnPlan {
        /// What was wrong with the plan.
        reason: String,
    },
    /// A [`crate::TransportCfg`] failed validation (zero window,
    /// retransmission cap below the base, suspicion window inside the
    /// heartbeat period, …) — see [`crate::TransportCfg::validate`].
    /// Rejected before the transport is built.
    InvalidTransportCfg {
        /// What was wrong with the configuration.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RoundLimitExceeded { limit, running } => {
                write!(f, "round limit {limit} exceeded with {running} nodes still running")
            }
            SimError::DuplicateSend { node, port, round } => {
                write!(f, "node {node} sent twice over port {port} in round {round}")
            }
            SimError::InvalidFaultPlan { reason } => {
                write!(f, "invalid fault plan: {reason}")
            }
            SimError::InvalidChurnPlan { reason } => {
                write!(f, "invalid churn plan: {reason}")
            }
            SimError::InvalidTransportCfg { reason } => {
                write!(f, "invalid transport config: {reason}")
            }
        }
    }
}

impl Error for SimError {}
