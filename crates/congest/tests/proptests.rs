//! Property tests for the engine: determinism, sequential/parallel
//! equivalence, accounting invariants under randomized protocols, and
//! decode robustness of the transport wire format under arbitrary
//! corruption chains.

use dam_congest::{
    AsyncNetwork, BitSize, Context, CorruptKind, DelayModel, FaultPlan, Frame, FrameKind, Network,
    Port, Protocol, Resilient, SimConfig, SimError, TraceEvent, TransportCfg,
};
use dam_graph::{Graph, GraphBuilder, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A protocol with data-dependent randomized behaviour: each round every
/// live node sends a random subset of ports a mixed-width message and
/// halts with some probability after a minimum number of rounds.
struct Chaos {
    min_rounds: usize,
    halt_prob: f64,
    acc: u64,
}

#[derive(Debug, Clone, PartialEq)]
enum ChaosMsg {
    Small(u8),
    Big(Vec<u64>),
}

impl dam_congest::BitSize for ChaosMsg {
    fn bit_size(&self) -> usize {
        match self {
            ChaosMsg::Small(_) => 8,
            ChaosMsg::Big(v) => 64 * v.len(),
        }
    }
}

impl Protocol for Chaos {
    type Msg = ChaosMsg;
    type Output = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, ChaosMsg>) {
        for p in ctx.ports() {
            if ctx.rng().random_bool(0.5) {
                ctx.send(p, ChaosMsg::Small(p as u8));
            }
        }
    }

    fn on_round(&mut self, ctx: &mut Context<'_, ChaosMsg>, inbox: &[(Port, ChaosMsg)]) {
        for (_, msg) in inbox {
            match msg {
                ChaosMsg::Small(x) => self.acc = self.acc.wrapping_add(u64::from(*x)),
                ChaosMsg::Big(v) => {
                    self.acc = v.iter().fold(self.acc, |a, &x| a.wrapping_add(x));
                }
            }
        }
        if ctx.round() >= self.min_rounds && ctx.rng().random_bool(self.halt_prob) {
            ctx.halt();
            return;
        }
        for p in ctx.ports() {
            if ctx.rng().random_bool(0.3) {
                let msg = if ctx.rng().random_bool(0.2) {
                    ChaosMsg::Big(vec![ctx.rng().random(); 3])
                } else {
                    ChaosMsg::Small(1)
                };
                ctx.send(p, msg);
            }
        }
    }

    fn into_output(self) -> u64 {
        self.acc
    }
}

/// An arbitrary sealed transport frame (`u64` payloads).
fn arb_frame() -> impl Strategy<Value = Frame<u64>> {
    let kind = (
        (any::<bool>(), any::<u32>()),
        (any::<bool>(), any::<u64>()),
        (any::<bool>(), any::<bool>()),
    )
        .prop_map(|((control, seq), (has_payload, pv), (last, retx))| {
            if control {
                FrameKind::Control
            } else {
                FrameKind::Data { seq, payload: has_payload.then_some(pv), last, retx }
            }
        });
    ((any::<u16>(), any::<bool>(), any::<u16>()), any::<u32>(), kind).prop_map(
        |((boot, has_dst, dst), ack, kind)| Frame::sealed(boot, has_dst.then_some(dst), ack, kind),
    )
}

fn arb_corrupt_kind() -> impl Strategy<Value = CorruptKind> {
    (0usize..CorruptKind::ALL.len()).prop_map(|i| CorruptKind::ALL[i])
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..20).prop_flat_map(|n| {
        let all: Vec<(usize, usize)> =
            (0..n).flat_map(|u| (u + 1..n).map(move |v| (u, v))).collect();
        let m = all.len();
        proptest::collection::vec(0..m, 0..40.min(m)).prop_map(move |picks| {
            let mut b = GraphBuilder::new(n);
            let mut seen = std::collections::HashSet::new();
            for i in picks {
                if seen.insert(i) {
                    b.edge(all[i].0, all[i].1);
                }
            }
            b.build().expect("simple graph")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Parallel and sequential engines produce identical outputs and
    /// statistics for arbitrary topologies, seeds, and thread counts.
    #[test]
    fn parallel_equals_sequential(g in arb_graph(), seed in 0u64..1000, threads in 1usize..6) {
        let make = |_: usize, _: &dyn Topology| Chaos { min_rounds: 3, halt_prob: 0.4, acc: 0 };
        let seq = Network::new(&g, SimConfig::local().seed(seed)).run(make).unwrap();
        let par = Network::new(&g, SimConfig::local().seed(seed))
            .run_parallel(make, threads)
            .unwrap();
        prop_assert_eq!(&seq.outputs, &par.outputs);
        prop_assert_eq!(seq.stats, par.stats);
    }

    /// Accounting invariants: bit totals bracket message counts; the
    /// trace agrees with the statistics; charged rounds >= rounds under
    /// pipelining and == rounds under unit cost.
    #[test]
    fn accounting_invariants(g in arb_graph(), seed in 0u64..1000) {
        let make = |_: usize, _: &dyn Topology| Chaos { min_rounds: 2, halt_prob: 0.5, acc: 0 };
        let mut net = Network::new(&g, SimConfig::congest(16).seed(seed));
        let (out, trace) = net.run_traced(make).unwrap();
        let s = out.stats;
        prop_assert!(s.rounds >= 1);
        prop_assert_eq!(s.charged_rounds, s.rounds, "unit cost charges 1:1");
        prop_assert!(s.total_bits >= 8 * s.messages || s.messages == 0);
        prop_assert!(u64::from(s.max_message_bits as u32) <= s.total_bits || s.messages == 0);
        let traced_sends = trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Send { .. }))
            .count() as u64;
        prop_assert_eq!(traced_sends, s.messages);
        let traced_oversize = trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Send { oversize: true, .. }))
            .count() as u64;
        prop_assert_eq!(traced_oversize, s.violations);
        // Every node halted and the trace knows it.
        for v in g.nodes() {
            prop_assert!(trace.halt_round(v).is_some());
        }
    }

    /// Replaying the same seed gives identical traces; different seeds
    /// (generally) differ.
    #[test]
    fn determinism_of_traces(g in arb_graph(), seed in 0u64..1000) {
        let make = |_: usize, _: &dyn Topology| Chaos { min_rounds: 2, halt_prob: 0.5, acc: 0 };
        let (_, t1) = Network::new(&g, SimConfig::local().seed(seed)).run_traced(make).unwrap();
        let (_, t2) = Network::new(&g, SimConfig::local().seed(seed)).run_traced(make).unwrap();
        prop_assert_eq!(t1.events(), t2.events());
    }

    /// Footnote 2 materialized: the asynchronous executor with an
    /// α-synchronizer matches the synchronous engine bit for bit, for
    /// arbitrary topologies, seeds, and delay models.
    #[test]
    fn alpha_synchronizer_equivalence(
        g in arb_graph(),
        seed in 0u64..1000,
        max_delay in 1u64..30,
    ) {
        let make = |_: usize, _: &dyn Topology| Chaos { min_rounds: 3, halt_prob: 0.4, acc: 0 };
        let sync = Network::new(&g, SimConfig::local().seed(seed)).run(make).unwrap();
        for delays in [
            DelayModel::Unit,
            DelayModel::UniformRandom { max: max_delay },
            DelayModel::LinkSkew { spread: max_delay },
        ] {
            let (outputs, _) = AsyncNetwork::new(&g, seed).run_async(make, delays).unwrap();
            prop_assert_eq!(&outputs, &sync.outputs, "{:?}", delays);
        }
    }

    /// Decode robustness: applying an arbitrary chain of corruption
    /// kinds to an arbitrary sealed frame never panics, and each step
    /// damages the frame exactly as the wire model documents — header
    /// damage leaves the checksum stale, replays and forgeries reseal,
    /// and only control-frame truncation destroys a frame outright.
    #[test]
    fn frame_corruption_chains_never_panic_and_are_classified(
        frame in arb_frame(),
        chain in proptest::collection::vec(arb_corrupt_kind(), 1..6),
        rng_seed in any::<u64>(),
    ) {
        prop_assert!(frame.valid(), "sealed frames must carry a matching checksum");
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let mut cur = frame;
        for kind in chain {
            let was_data = matches!(cur.kind, FrameKind::Data { .. });
            let Some(next) = cur.corrupted(kind, &mut rng) else {
                // Only truncating an all-header control frame destroys
                // the frame before it reaches the receiver.
                prop_assert_eq!(kind, CorruptKind::Truncate);
                prop_assert!(!was_data);
                break;
            };
            match kind {
                CorruptKind::BitFlip => {
                    // Exactly one header field changes; the payload part
                    // is untouched, so validation can expose the damage.
                    let changed = usize::from(next.boot != cur.boot)
                        + usize::from(next.ack != cur.ack)
                        + usize::from(next.sum != cur.sum);
                    prop_assert_eq!(changed, 1);
                    prop_assert_eq!(&next.kind, &cur.kind);
                }
                CorruptKind::Truncate => {
                    prop_assert!(was_data);
                    prop_assert!(
                        matches!(next.kind, FrameKind::Data { payload: None, .. }),
                        "truncation strips the payload, keeping the data framing"
                    );
                }
                CorruptKind::Garbage => {
                    prop_assert!(
                        matches!(next.kind, FrameKind::Control),
                        "noise carries no coherent payload slot"
                    );
                }
                CorruptKind::Replay => {
                    prop_assert!(next.valid(), "replays are internally consistent");
                    if was_data {
                        prop_assert!(
                            matches!(next.kind, FrameKind::Data { retx: true, .. }),
                            "a replayed data frame reads as a retransmission"
                        );
                    }
                }
                CorruptKind::Forge => {
                    prop_assert!(next.valid(), "forgeries are internally consistent");
                    prop_assert!(
                        matches!(next.kind, FrameKind::Control),
                        "forgeries are all-header control frames"
                    );
                    prop_assert_eq!(next.dst, None, "a forger knows no session nonce");
                }
            }
            cur = next;
        }
    }

    /// A resilient run over an arbitrarily corrupted (and possibly
    /// equivocating) channel never panics: it either completes or hits
    /// the round guard cleanly. With the integrity faults switched off,
    /// a merely lossy channel is fully masked — outputs match the
    /// fault-free run and no frame is ever rejected.
    #[test]
    fn corrupted_runs_never_panic(
        g in arb_graph(),
        seed in 0u64..1000,
        corrupt in (any::<bool>(), 0.01f64..0.4).prop_map(|(z, c)| if z { 0.0 } else { c }),
        loss in 0.0f64..0.2,
        equivocate in any::<bool>(),
    ) {
        let make = |_: usize, _: &dyn Topology| {
            Resilient::new(Chaos { min_rounds: 2, halt_prob: 0.5, acc: 0 }, TransportCfg::default())
        };
        let cfg = SimConfig::local().seed(seed).max_rounds(20_000);
        let base = Network::new(&g, cfg).run(make).unwrap();
        let equivocators = if equivocate { vec![1 % g.node_count()] } else { vec![] };
        let plan =
            FaultPlan::lossy(loss).with_corrupt(corrupt).with_equivocators(equivocators.clone());
        match Network::new(&g, cfg).run_faulty(make, &plan) {
            Ok(out) => {
                if corrupt == 0.0 && equivocators.is_empty() {
                    prop_assert_eq!(&out.outputs, &base.outputs, "loss alone must be masked");
                    prop_assert_eq!(out.stats.corruptions, 0);
                    prop_assert_eq!(out.stats.rejected, 0);
                    prop_assert_eq!(out.stats.quarantined, 0);
                }
            }
            Err(e) => {
                prop_assert!(
                    matches!(e, SimError::RoundLimitExceeded { .. }),
                    "only the round guard may end a corrupted run: {e:?}"
                );
            }
        }
    }
}
