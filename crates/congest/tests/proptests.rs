//! Property tests for the engine: determinism, sequential/parallel
//! equivalence, and accounting invariants under randomized protocols.

use dam_congest::{
    AsyncNetwork, Context, DelayModel, Network, Port, Protocol, SimConfig, TraceEvent,
};
use dam_graph::{Graph, GraphBuilder};
use proptest::prelude::*;
use rand::RngExt;

/// A protocol with data-dependent randomized behaviour: each round every
/// live node sends a random subset of ports a mixed-width message and
/// halts with some probability after a minimum number of rounds.
struct Chaos {
    min_rounds: usize,
    halt_prob: f64,
    acc: u64,
}

#[derive(Debug, Clone, PartialEq)]
enum ChaosMsg {
    Small(u8),
    Big(Vec<u64>),
}

impl dam_congest::BitSize for ChaosMsg {
    fn bit_size(&self) -> usize {
        match self {
            ChaosMsg::Small(_) => 8,
            ChaosMsg::Big(v) => 64 * v.len(),
        }
    }
}

impl Protocol for Chaos {
    type Msg = ChaosMsg;
    type Output = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, ChaosMsg>) {
        for p in ctx.ports() {
            if ctx.rng().random_bool(0.5) {
                ctx.send(p, ChaosMsg::Small(p as u8));
            }
        }
    }

    fn on_round(&mut self, ctx: &mut Context<'_, ChaosMsg>, inbox: &[(Port, ChaosMsg)]) {
        for (_, msg) in inbox {
            match msg {
                ChaosMsg::Small(x) => self.acc = self.acc.wrapping_add(u64::from(*x)),
                ChaosMsg::Big(v) => {
                    self.acc = v.iter().fold(self.acc, |a, &x| a.wrapping_add(x));
                }
            }
        }
        if ctx.round() >= self.min_rounds && ctx.rng().random_bool(self.halt_prob) {
            ctx.halt();
            return;
        }
        for p in ctx.ports() {
            if ctx.rng().random_bool(0.3) {
                let msg = if ctx.rng().random_bool(0.2) {
                    ChaosMsg::Big(vec![ctx.rng().random(); 3])
                } else {
                    ChaosMsg::Small(1)
                };
                ctx.send(p, msg);
            }
        }
    }

    fn into_output(self) -> u64 {
        self.acc
    }
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..20).prop_flat_map(|n| {
        let all: Vec<(usize, usize)> =
            (0..n).flat_map(|u| (u + 1..n).map(move |v| (u, v))).collect();
        let m = all.len();
        proptest::collection::vec(0..m, 0..40.min(m)).prop_map(move |picks| {
            let mut b = GraphBuilder::new(n);
            let mut seen = std::collections::HashSet::new();
            for i in picks {
                if seen.insert(i) {
                    b.edge(all[i].0, all[i].1);
                }
            }
            b.build().expect("simple graph")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Parallel and sequential engines produce identical outputs and
    /// statistics for arbitrary topologies, seeds, and thread counts.
    #[test]
    fn parallel_equals_sequential(g in arb_graph(), seed in 0u64..1000, threads in 1usize..6) {
        let make = |_: usize, _: &Graph| Chaos { min_rounds: 3, halt_prob: 0.4, acc: 0 };
        let seq = Network::new(&g, SimConfig::local().seed(seed)).run(make).unwrap();
        let par = Network::new(&g, SimConfig::local().seed(seed))
            .run_parallel(make, threads)
            .unwrap();
        prop_assert_eq!(&seq.outputs, &par.outputs);
        prop_assert_eq!(seq.stats, par.stats);
    }

    /// Accounting invariants: bit totals bracket message counts; the
    /// trace agrees with the statistics; charged rounds >= rounds under
    /// pipelining and == rounds under unit cost.
    #[test]
    fn accounting_invariants(g in arb_graph(), seed in 0u64..1000) {
        let make = |_: usize, _: &Graph| Chaos { min_rounds: 2, halt_prob: 0.5, acc: 0 };
        let mut net = Network::new(&g, SimConfig::congest(16).seed(seed));
        let (out, trace) = net.run_traced(make).unwrap();
        let s = out.stats;
        prop_assert!(s.rounds >= 1);
        prop_assert_eq!(s.charged_rounds, s.rounds, "unit cost charges 1:1");
        prop_assert!(s.total_bits >= 8 * s.messages || s.messages == 0);
        prop_assert!(u64::from(s.max_message_bits as u32) <= s.total_bits || s.messages == 0);
        let traced_sends = trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Send { .. }))
            .count() as u64;
        prop_assert_eq!(traced_sends, s.messages);
        let traced_oversize = trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Send { oversize: true, .. }))
            .count() as u64;
        prop_assert_eq!(traced_oversize, s.violations);
        // Every node halted and the trace knows it.
        for v in g.nodes() {
            prop_assert!(trace.halt_round(v).is_some());
        }
    }

    /// Replaying the same seed gives identical traces; different seeds
    /// (generally) differ.
    #[test]
    fn determinism_of_traces(g in arb_graph(), seed in 0u64..1000) {
        let make = |_: usize, _: &Graph| Chaos { min_rounds: 2, halt_prob: 0.5, acc: 0 };
        let (_, t1) = Network::new(&g, SimConfig::local().seed(seed)).run_traced(make).unwrap();
        let (_, t2) = Network::new(&g, SimConfig::local().seed(seed)).run_traced(make).unwrap();
        prop_assert_eq!(t1.events(), t2.events());
    }

    /// Footnote 2 materialized: the asynchronous executor with an
    /// α-synchronizer matches the synchronous engine bit for bit, for
    /// arbitrary topologies, seeds, and delay models.
    #[test]
    fn alpha_synchronizer_equivalence(
        g in arb_graph(),
        seed in 0u64..1000,
        max_delay in 1u64..30,
    ) {
        let make = |_: usize, _: &Graph| Chaos { min_rounds: 3, halt_prob: 0.4, acc: 0 };
        let sync = Network::new(&g, SimConfig::local().seed(seed)).run(make).unwrap();
        for delays in [
            DelayModel::Unit,
            DelayModel::UniformRandom { max: max_delay },
            DelayModel::LinkSkew { spread: max_delay },
        ] {
            let (outputs, _) = AsyncNetwork::new(&g, seed).run_async(make, delays).unwrap();
            prop_assert_eq!(&outputs, &sync.outputs, "{:?}", delays);
        }
    }
}
