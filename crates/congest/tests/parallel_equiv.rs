//! Differential suite: the sharded parallel engine must reproduce the
//! sequential engine **bit-identically** — outputs, statistics and trace
//! streams, event for event — for every algorithm, across seeds, across
//! fault and churn schedules, at every thread count.
//!
//! This is the proof obligation behind [`dam_congest::SimConfig::threads`]:
//! drivers may flip the knob without re-validating their algorithms.

use std::sync::Arc;

use dam_congest::{
    AdaptivePolicy, ChurnKind, ChurnPlan, Context, FaultPlan, Network, Port, Protocol,
    RecordingSink, Resilient, SimConfig, SinkHandle, Trace, TransportCfg,
};
use dam_core::israeli_itai::IiNode;
use dam_core::luby::LubyNode;
use dam_graph::{generators, Graph, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEEDS: u64 = 16;
const THREADS: [usize; 3] = [2, 4, 7];

/// E15-style hostile schedule: background message faults plus crash /
/// recovery, scaled to a ~40-node graph.
fn fault_plan() -> FaultPlan {
    FaultPlan {
        loss: 0.12,
        dup: 0.06,
        reorder: 0.1,
        crashes: vec![(3, 2), (11, 4)],
        recoveries: vec![(11, 9)],
        ..FaultPlan::default()
    }
}

/// E16-style churn schedule: absent joiner, a leaver, edge flaps — with
/// mild background loss riding along.
fn churn_plan() -> ChurnPlan {
    ChurnPlan::default()
        .with_absent_nodes(vec![7])
        .with_event(2, ChurnKind::EdgeDown { edge: 1 })
        .with_event(3, ChurnKind::Join { node: 7 })
        .with_event(5, ChurnKind::Leave { node: 9 })
        .with_event(6, ChurnKind::EdgeUp { edge: 1 })
}

/// Mild message faults that are valid alongside [`churn_plan`] (its
/// churned nodes must not appear in the fault plan).
fn churn_faults() -> FaultPlan {
    FaultPlan { loss: 0.08, dup: 0.04, reorder: 0.05, ..FaultPlan::default() }
}

/// Runs `make` on both engines under one `(faults, churn)` schedule and
/// asserts bit-identical results for every thread count in [`THREADS`]:
/// identical outputs, stats and trace streams on success, the identical
/// error when the schedule makes the protocol non-terminating (e.g. a
/// partner crash-stops and the round guard fires) — the error path is
/// part of the engine contract too.
fn assert_equivalent<P, F>(
    g: &Graph,
    config: SimConfig,
    faults: &FaultPlan,
    churn: &ChurnPlan,
    make: F,
) where
    P: Protocol + Send,
    P::Output: PartialEq + std::fmt::Debug,
    F: Fn(usize, &dyn Topology) -> P + Sync + Copy,
{
    let seq = {
        let mut net = Network::new(g, config);
        net.run_churned_traced(make, faults, churn)
    };
    for threads in THREADS {
        let mut net = Network::new(g, config);
        let par: Result<(_, Trace), _> =
            net.run_parallel_churned_traced(make, faults, churn, threads);
        match (&seq, &par) {
            (Ok((so, st)), Ok((po, pt))) => {
                assert_eq!(so.outputs, po.outputs, "outputs diverge at {threads} threads");
                assert_eq!(so.stats, po.stats, "stats diverge at {threads} threads");
                assert_eq!(st.events(), pt.events(), "trace streams diverge at {threads} threads");
            }
            (Err(se), Err(pe)) => {
                assert_eq!(
                    format!("{se:?}"),
                    format!("{pe:?}"),
                    "errors diverge at {threads} threads"
                );
            }
            (s, p) => panic!(
                "termination diverges at {threads} threads: sequential {}, parallel {}",
                if s.is_ok() { "succeeded" } else { "failed" },
                if p.is_ok() { "succeeded" } else { "failed" },
            ),
        }
    }
}

fn graph_for(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
    generators::gnp(40, 0.15, &mut rng)
}

#[test]
fn israeli_itai_fault_free() {
    for seed in 0..SEEDS {
        let g = graph_for(seed);
        let cfg = SimConfig::congest_for(g.node_count(), 4).seed(seed);
        assert_equivalent(&g, cfg, &FaultPlan::default(), &ChurnPlan::default(), |v, graph| {
            IiNode::new(graph.degree(v))
        });
    }
}

/// Israeli–Itai assumes reliable channels (its handshake asserts that
/// every proposal is answered), so under message faults it rides the
/// resilient transport — exactly the E15 self-healing pipeline.
#[test]
fn israeli_itai_under_faults() {
    for seed in 0..SEEDS {
        let g = graph_for(seed);
        let cfg = SimConfig::congest_for(g.node_count(), 8).seed(seed).max_rounds(2_000);
        assert_equivalent(&g, cfg, &fault_plan(), &ChurnPlan::default(), |v, graph| {
            Resilient::new(IiNode::new(graph.degree(v)), TransportCfg::default())
        });
    }
}

/// E17-style integrity schedule: message corruption plus Byzantine
/// equivocators layered on the background faults — the corruption and
/// tamper draws come from keyed per-(round, node, port) streams, so both
/// engines must replay them identically.
fn integrity_plan() -> FaultPlan {
    FaultPlan {
        loss: 0.08,
        dup: 0.04,
        reorder: 0.06,
        corrupt: 0.1,
        crashes: vec![(3, 2)],
        equivocators: vec![6, 17],
        liars: vec![9], // engine-validated; applied by output-aware callers
        ..FaultPlan::default()
    }
}

#[test]
fn israeli_itai_under_corruption_and_equivocation() {
    for seed in 0..SEEDS {
        let g = graph_for(seed);
        let cfg = SimConfig::congest_for(g.node_count(), 8).seed(seed).max_rounds(2_000);
        assert_equivalent(&g, cfg, &integrity_plan(), &ChurnPlan::default(), |v, graph| {
            Resilient::new(IiNode::new(graph.degree(v)), TransportCfg::default())
        });
    }
}

#[test]
fn chatter_under_corruption_and_churn() {
    for seed in 0..SEEDS {
        let g = graph_for(seed);
        let cfg = SimConfig::congest_for(g.node_count(), 4).seed(seed).max_rounds(300);
        let faults = FaultPlan { corrupt: 0.15, equivocators: vec![3], ..churn_faults() };
        assert_equivalent(&g, cfg, &faults, &churn_plan(), |v, _g| Chatter {
            acc: 0,
            halt_round: 6 + v % 5,
        });
    }
}

#[test]
fn israeli_itai_under_churn() {
    for seed in 0..SEEDS {
        let g = graph_for(seed);
        let cfg = SimConfig::congest_for(g.node_count(), 8).seed(seed).max_rounds(2_000);
        assert_equivalent(&g, cfg, &churn_faults(), &churn_plan(), |v, graph| {
            Resilient::new(IiNode::new(graph.degree(v)), TransportCfg::default())
        });
    }
}

#[test]
fn luby_mis_fault_free() {
    for seed in 0..SEEDS {
        let g = graph_for(seed);
        let cfg = SimConfig::congest_for(g.node_count(), 4).seed(seed);
        assert_equivalent(&g, cfg, &FaultPlan::default(), &ChurnPlan::default(), |v, graph| {
            LubyNode::new(graph.degree(v))
        });
    }
}

#[test]
fn luby_mis_under_faults() {
    for seed in 0..SEEDS {
        let g = graph_for(seed);
        let cfg = SimConfig::congest_for(g.node_count(), 4).seed(seed).max_rounds(400);
        assert_equivalent(&g, cfg, &fault_plan(), &ChurnPlan::default(), |v, graph| {
            LubyNode::new(graph.degree(v))
        });
    }
}

#[test]
fn luby_mis_under_churn() {
    for seed in 0..SEEDS {
        let g = graph_for(seed);
        let cfg = SimConfig::congest_for(g.node_count(), 4).seed(seed).max_rounds(400);
        assert_equivalent(&g, cfg, &churn_faults(), &churn_plan(), |v, graph| {
            LubyNode::new(graph.degree(v))
        });
    }
}

/// Driver-level equivalence: the full multi-phase bipartite Algorithm 2
/// produces the identical matching and identical cumulative statistics
/// whether its phases run sequentially or sharded.
#[test]
fn bipartite_mcm_driver_equivalence() {
    use dam_core::bipartite::{bipartite_mcm, BipartiteMcmConfig};
    let mut rng = StdRng::seed_from_u64(1234);
    for seed in 0..SEEDS {
        let g = generators::bipartite_gnp(18, 18, 0.2, &mut rng);
        for k in [2usize, 3] {
            let base = BipartiteMcmConfig { k, seed, ..Default::default() };
            let seq = bipartite_mcm(&g, &base).expect("sequential driver failed");
            let par = bipartite_mcm(&g, &BipartiteMcmConfig { threads: 4, ..base })
                .expect("parallel driver failed");
            assert_eq!(seq.matching, par.matching, "matching diverges (seed {seed}, k {k})");
            assert_eq!(seq.stats, par.stats, "stats diverge (seed {seed}, k {k})");
            assert_eq!(seq.iterations, par.iterations);
        }
    }
}

/// Driver-level equivalence for the weighted Algorithm 5 (gain rounds,
/// black-box δ-MWM, wrap application — three protocols per iteration).
#[test]
fn weighted_mwm_driver_equivalence() {
    use dam_core::weighted::{weighted_mwm, WeightedMwmConfig};
    use dam_graph::weights::{randomize_weights, WeightDist};
    let mut rng = StdRng::seed_from_u64(4321);
    for seed in 0..SEEDS {
        let base_g = generators::gnp(30, 0.15, &mut rng);
        let g = randomize_weights(&base_g, WeightDist::Uniform { lo: 0.1, hi: 10.0 }, &mut rng);
        let base = WeightedMwmConfig { eps: 0.1, seed, ..Default::default() };
        let seq = weighted_mwm(&g, &base).expect("sequential driver failed");
        let par = weighted_mwm(&g, &WeightedMwmConfig { threads: 4, ..base })
            .expect("parallel driver failed");
        assert_eq!(seq.matching, par.matching, "matching diverges (seed {seed})");
        assert_eq!(seq.stats, par.stats, "stats diverge (seed {seed})");
    }
}

/// A chatty protocol with staggered voluntary halts: stresses the
/// round-0 asymmetry, late joiners re-running `on_start`, and pending
/// FIFO ordering under a heavy combined fault + churn schedule.
struct Chatter {
    acc: u64,
    halt_round: usize,
}

impl Protocol for Chatter {
    type Msg = u64;
    type Output = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        self.acc = ctx.id() as u64;
        if ctx.id().is_multiple_of(4) {
            ctx.halt(); // halts during round 0: the hardest quiescence case
        } else {
            ctx.broadcast(self.acc);
        }
    }

    fn on_round(&mut self, ctx: &mut Context<'_, u64>, inbox: &[(Port, u64)]) {
        for &(p, x) in inbox {
            self.acc = self.acc.wrapping_mul(37).wrapping_add(x ^ p as u64);
        }
        if ctx.round() >= self.halt_round {
            ctx.halt();
        } else {
            ctx.broadcast(self.acc & 0xFFFF);
        }
    }

    fn into_output(self) -> u64 {
        self.acc
    }
}

#[test]
fn chatter_under_heavy_combined_schedule() {
    for seed in 0..SEEDS {
        let g = graph_for(seed);
        let cfg = SimConfig::congest_for(g.node_count(), 4).seed(seed).max_rounds(200);
        let faults = FaultPlan {
            loss: 0.2,
            dup: 0.1,
            reorder: 0.15,
            crashes: vec![(2, 3), (5, 5)],
            recoveries: vec![(2, 8)],
            ..FaultPlan::default()
        };
        let churn = ChurnPlan::default()
            .with_absent_nodes(vec![12])
            .with_event(2, ChurnKind::EdgeDown { edge: 0 })
            .with_event(4, ChurnKind::Join { node: 12 })
            .with_event(6, ChurnKind::Leave { node: 17 })
            .with_event(7, ChurnKind::EdgeUp { edge: 0 });
        assert_equivalent(&g, cfg, &faults, &churn, |v, _g| Chatter {
            acc: 0,
            halt_round: 6 + v % 5,
        });
    }
}

/// Telemetry non-perturbation on the sharded engine: attaching a
/// recording sink leaves outputs, statistics and trace streams
/// bit-identical at every thread count, and the recorded series matches
/// the sequential engine's sample for sample (the coordinator merges
/// per-worker deltas into the same cumulative stream).
#[test]
fn sharded_sink_observes_without_perturbing() {
    for seed in 0..SEEDS {
        let g = graph_for(seed);
        let cfg = SimConfig::congest_for(g.node_count(), 8).seed(seed).max_rounds(2_000);
        let make = |v: usize, graph: &dyn Topology| {
            Resilient::new(IiNode::new(graph.degree(v)), TransportCfg::default())
        };
        let (seq, seq_samples) = {
            let sink = Arc::new(RecordingSink::new());
            let mut net = Network::new(&g, cfg);
            net.set_stats_sink(Some(SinkHandle::from(Arc::clone(&sink))));
            let out = net.run_churned_traced(make, &fault_plan(), &ChurnPlan::default());
            (out, sink.samples())
        };
        if let Ok((so, _)) = &seq {
            assert_eq!(seq_samples.len() as u64, so.stats.rounds, "one sample per round");
        }
        for threads in THREADS {
            let bare = {
                let mut net = Network::new(&g, cfg);
                net.run_parallel_churned_traced(make, &fault_plan(), &ChurnPlan::default(), threads)
            };
            let sink = Arc::new(RecordingSink::new());
            let tapped = {
                let mut net = Network::new(&g, cfg);
                net.set_stats_sink(Some(SinkHandle::from(Arc::clone(&sink))));
                net.run_parallel_churned_traced(make, &fault_plan(), &ChurnPlan::default(), threads)
            };
            match (&bare, &tapped) {
                (Ok((bo, bt)), Ok((to, tt))) => {
                    assert_eq!(bo.outputs, to.outputs, "sink perturbed outputs ({threads}t)");
                    assert_eq!(bo.stats, to.stats, "sink perturbed stats ({threads}t)");
                    assert_eq!(bt.events(), tt.events(), "sink perturbed trace ({threads}t)");
                }
                (Err(be), Err(te)) => {
                    assert_eq!(format!("{be:?}"), format!("{te:?}"), "sink perturbed the error");
                }
                _ => panic!("attaching a sink changed termination ({threads} threads)"),
            }
            // The recorded series is engine-independent either way: the
            // coordinator's merged stream must equal the sequential one.
            assert_eq!(
                seq_samples,
                sink.samples(),
                "sharded sample stream diverges from sequential ({threads} threads, seed {seed})"
            );
        }
    }
}

/// The adaptive transport on the sharded engine: escalation decisions
/// are node-local, so thread scheduling must not leak into them.
#[test]
fn adaptive_transport_parallel_equivalence() {
    for seed in 0..SEEDS {
        let g = graph_for(seed);
        let cfg = SimConfig::congest_for(g.node_count(), 8).seed(seed).max_rounds(2_000);
        assert_equivalent(&g, cfg, &fault_plan(), &ChurnPlan::default(), |v, graph| {
            Resilient::with_policy(IiNode::new(graph.degree(v)), AdaptivePolicy::default())
        });
    }
}

/// Quiescence-terminated message-driven protocol under churn: exercises
/// the coordinator's round-0 delivered-slot scan and the `frames == 0`
/// fast path on every later round.
#[test]
fn quiescent_relay_equivalence() {
    struct Relay;
    impl Protocol for Relay {
        type Msg = u32;
        type Output = u32;
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if ctx.id().is_multiple_of(5) {
                ctx.broadcast(8);
            }
        }
        fn on_round(&mut self, ctx: &mut Context<'_, u32>, inbox: &[(Port, u32)]) {
            for &(p, ttl) in inbox {
                if ttl > 0 {
                    let next = (p + 1) % ctx.degree();
                    ctx.send(next, ttl - 1);
                }
            }
        }
        fn into_output(self) -> u32 {
            0
        }
    }
    for seed in 0..SEEDS {
        let g = graph_for(seed);
        let cfg = SimConfig::local().seed(seed).quiesce_after(2).max_rounds(500);
        assert_equivalent(&g, cfg, &churn_faults(), &churn_plan(), |_, _g| Relay);
    }
}
