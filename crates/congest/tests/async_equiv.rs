//! Differential suite: the asynchronous engine backend must reproduce
//! the sequential engine **bit-identically** — outputs, statistics and
//! trace streams, event for event — for every algorithm, across seeds,
//! across fault and churn schedules, under every adversarial delay
//! model.
//!
//! This is the proof obligation behind the α-synchronizer contract
//! ([`dam_congest::Backend::Async`]): with an unbounded patience budget
//! the virtual-time schedule reorders *when* messages arrive but never
//! *what* arrives, so drivers may flip the backend knob without
//! re-validating their algorithms. The only permitted divergence is
//! [`dam_congest::RunStats::markers`] — synchronizer control traffic the
//! synchronous engines never emit.

use std::sync::Arc;

use dam_congest::{
    AdaptivePolicy, Backend, ChurnKind, ChurnPlan, Context, DelayModel, FaultPlan, Network, Port,
    Protocol, RecordingSink, Resilient, SimConfig, SinkHandle, Trace, TransportCfg,
};
use dam_core::israeli_itai::IiNode;
use dam_core::luby::LubyNode;
use dam_graph::{generators, Graph, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEEDS: u64 = 16;

/// One delay model per adversarial shape: the degenerate synchronous
/// schedule, i.i.d. jitter, per-direction link skew, a single straggler
/// node, and heartbeat-aligned delay bursts.
const DELAYS: [DelayModel; 5] = [
    DelayModel::Unit,
    DelayModel::UniformRandom { max: 7 },
    DelayModel::LinkSkew { spread: 5 },
    DelayModel::Straggler { node: 5, slow: 9 },
    DelayModel::Burst { period: 4, width: 2, extra: 6 },
];

/// E15-style hostile schedule: background message faults plus crash /
/// recovery, scaled to a ~40-node graph (mirrors `parallel_equiv.rs`).
fn fault_plan() -> FaultPlan {
    FaultPlan {
        loss: 0.12,
        dup: 0.06,
        reorder: 0.1,
        crashes: vec![(3, 2), (11, 4)],
        recoveries: vec![(11, 9)],
        ..FaultPlan::default()
    }
}

/// E16-style churn schedule: absent joiner, a leaver, edge flaps.
fn churn_plan() -> ChurnPlan {
    ChurnPlan::default()
        .with_absent_nodes(vec![7])
        .with_event(2, ChurnKind::EdgeDown { edge: 1 })
        .with_event(3, ChurnKind::Join { node: 7 })
        .with_event(5, ChurnKind::Leave { node: 9 })
        .with_event(6, ChurnKind::EdgeUp { edge: 1 })
}

/// Mild message faults that are valid alongside [`churn_plan`].
fn churn_faults() -> FaultPlan {
    FaultPlan { loss: 0.08, dup: 0.04, reorder: 0.05, ..FaultPlan::default() }
}

/// Runs `make` on both engines under one `(faults, churn)` schedule and
/// asserts bit-identical results for every delay model in [`DELAYS`]:
/// identical outputs, stats (modulo the async engine's marker counter)
/// and trace streams on success, the identical error when the schedule
/// makes the protocol non-terminating — the error path is part of the
/// backend contract too. The patience budget stays unbounded here, so
/// the delay model must be *inert* on payloads: it only stretches the
/// virtual clock.
fn assert_equivalent<P, F>(
    g: &Graph,
    config: SimConfig,
    faults: &FaultPlan,
    churn: &ChurnPlan,
    make: F,
) where
    P: Protocol + Send,
    P::Output: PartialEq + std::fmt::Debug,
    F: Fn(usize, &dyn Topology) -> P + Sync + Copy,
{
    let seq = {
        let mut net = Network::new(g, config);
        net.run_churned_traced(make, faults, churn)
    };
    for delay in DELAYS {
        let mut net = Network::new(g, config.backend(Backend::Async).delay(delay));
        let asy: Result<(_, Trace), _> = net.run_async_churned_traced(make, faults, churn);
        match (&seq, &asy) {
            (Ok((so, st)), Ok((ao, at))) => {
                assert_eq!(so.outputs, ao.outputs, "outputs diverge under {delay:?}");
                let mut stats = ao.stats;
                assert!(stats.markers > 0, "async run must account synchronizer markers");
                stats.markers = 0;
                assert_eq!(so.stats, stats, "stats diverge under {delay:?}");
                assert_eq!(st.events(), at.events(), "trace streams diverge under {delay:?}");
                let info = net.async_info().expect("async run records timing info");
                assert_eq!(info.timing_drops, 0, "unbounded patience must never drop");
                assert!(
                    info.makespan >= ao.stats.rounds,
                    "virtual time cannot run ahead of the round clock"
                );
            }
            (Err(se), Err(ae)) => {
                assert_eq!(format!("{se:?}"), format!("{ae:?}"), "errors diverge under {delay:?}");
            }
            (s, a) => panic!(
                "termination diverges under {delay:?}: sequential {}, async {}",
                if s.is_ok() { "succeeded" } else { "failed" },
                if a.is_ok() { "succeeded" } else { "failed" },
            ),
        }
    }
}

fn graph_for(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
    generators::gnp(40, 0.15, &mut rng)
}

#[test]
fn israeli_itai_fault_free() {
    for seed in 0..SEEDS {
        let g = graph_for(seed);
        let cfg = SimConfig::congest_for(g.node_count(), 4).seed(seed);
        assert_equivalent(&g, cfg, &FaultPlan::default(), &ChurnPlan::default(), |v, graph| {
            IiNode::new(graph.degree(v))
        });
    }
}

/// Israeli–Itai over the resilient transport under the E15 schedule:
/// the transport's silence timers (backoff, heartbeats, suspicion) run
/// on the round clock, so the synchronizer must keep them honest even
/// when virtual link delays stretch the schedule.
#[test]
fn israeli_itai_under_faults() {
    for seed in 0..SEEDS {
        let g = graph_for(seed);
        let cfg = SimConfig::congest_for(g.node_count(), 8).seed(seed).max_rounds(2_000);
        assert_equivalent(&g, cfg, &fault_plan(), &ChurnPlan::default(), |v, graph| {
            Resilient::new(IiNode::new(graph.degree(v)), TransportCfg::default())
        });
    }
}

/// E17-style integrity schedule: corruption plus Byzantine equivocators
/// — the keyed tamper streams must replay identically off the barrier.
fn integrity_plan() -> FaultPlan {
    FaultPlan {
        loss: 0.08,
        dup: 0.04,
        reorder: 0.06,
        corrupt: 0.1,
        crashes: vec![(3, 2)],
        equivocators: vec![6, 17],
        liars: vec![9], // engine-validated; applied by output-aware callers
        ..FaultPlan::default()
    }
}

#[test]
fn israeli_itai_under_corruption_and_equivocation() {
    for seed in 0..SEEDS {
        let g = graph_for(seed);
        let cfg = SimConfig::congest_for(g.node_count(), 8).seed(seed).max_rounds(2_000);
        assert_equivalent(&g, cfg, &integrity_plan(), &ChurnPlan::default(), |v, graph| {
            Resilient::new(IiNode::new(graph.degree(v)), TransportCfg::default())
        });
    }
}

#[test]
fn israeli_itai_under_churn() {
    for seed in 0..SEEDS {
        let g = graph_for(seed);
        let cfg = SimConfig::congest_for(g.node_count(), 8).seed(seed).max_rounds(2_000);
        assert_equivalent(&g, cfg, &churn_faults(), &churn_plan(), |v, graph| {
            Resilient::new(IiNode::new(graph.degree(v)), TransportCfg::default())
        });
    }
}

#[test]
fn luby_mis_fault_free() {
    for seed in 0..SEEDS {
        let g = graph_for(seed);
        let cfg = SimConfig::congest_for(g.node_count(), 4).seed(seed);
        assert_equivalent(&g, cfg, &FaultPlan::default(), &ChurnPlan::default(), |v, graph| {
            LubyNode::new(graph.degree(v))
        });
    }
}

#[test]
fn luby_mis_under_faults() {
    for seed in 0..SEEDS {
        let g = graph_for(seed);
        let cfg = SimConfig::congest_for(g.node_count(), 4).seed(seed).max_rounds(400);
        assert_equivalent(&g, cfg, &fault_plan(), &ChurnPlan::default(), |v, graph| {
            LubyNode::new(graph.degree(v))
        });
    }
}

#[test]
fn luby_mis_under_churn() {
    for seed in 0..SEEDS {
        let g = graph_for(seed);
        let cfg = SimConfig::congest_for(g.node_count(), 4).seed(seed).max_rounds(400);
        assert_equivalent(&g, cfg, &churn_faults(), &churn_plan(), |v, graph| {
            LubyNode::new(graph.degree(v))
        });
    }
}

/// Driver-level equivalence: the full multi-phase bipartite Algorithm 2
/// produces the identical matching and identical cumulative statistics
/// (modulo markers) whether its phases run on the sequential or the
/// asynchronous engine.
#[test]
fn bipartite_mcm_driver_equivalence() {
    use dam_core::bipartite::{bipartite_mcm, BipartiteMcmConfig};
    let mut rng = StdRng::seed_from_u64(1234);
    for seed in 0..SEEDS {
        let g = generators::bipartite_gnp(18, 18, 0.2, &mut rng);
        for k in [2usize, 3] {
            let base = BipartiteMcmConfig { k, seed, ..Default::default() };
            let seq = bipartite_mcm(&g, &base).expect("sequential driver failed");
            let asy = bipartite_mcm(&g, &BipartiteMcmConfig { backend: Backend::Async, ..base })
                .expect("async driver failed");
            assert_eq!(seq.matching, asy.matching, "matching diverges (seed {seed}, k {k})");
            let mut stats = asy.stats;
            assert!(stats.stats.markers > 0);
            stats.stats.markers = 0;
            assert_eq!(seq.stats, stats, "stats diverge (seed {seed}, k {k})");
            assert_eq!(seq.iterations, asy.iterations);
        }
    }
}

/// Driver-level equivalence for the weighted Algorithm 5 (gain rounds,
/// black-box δ-MWM, wrap application — three protocols per iteration).
#[test]
fn weighted_mwm_driver_equivalence() {
    use dam_core::weighted::{weighted_mwm, WeightedMwmConfig};
    use dam_graph::weights::{randomize_weights, WeightDist};
    let mut rng = StdRng::seed_from_u64(4321);
    for seed in 0..SEEDS {
        let base_g = generators::gnp(30, 0.15, &mut rng);
        let g = randomize_weights(&base_g, WeightDist::Uniform { lo: 0.1, hi: 10.0 }, &mut rng);
        let base = WeightedMwmConfig { eps: 0.1, seed, ..Default::default() };
        let seq = weighted_mwm(&g, &base).expect("sequential driver failed");
        let asy = weighted_mwm(&g, &WeightedMwmConfig { backend: Backend::Async, ..base })
            .expect("async driver failed");
        assert_eq!(seq.matching, asy.matching, "matching diverges (seed {seed})");
        let mut stats = asy.stats;
        assert!(stats.stats.markers > 0);
        stats.stats.markers = 0;
        assert_eq!(seq.stats, stats, "stats diverge (seed {seed})");
    }
}

/// A chatty protocol with staggered voluntary halts: stresses the
/// round-0 asymmetry, late joiners re-running `on_start`, and pending
/// FIFO ordering under a heavy combined fault + churn schedule.
struct Chatter {
    acc: u64,
    halt_round: usize,
}

impl Protocol for Chatter {
    type Msg = u64;
    type Output = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        self.acc = ctx.id() as u64;
        if ctx.id().is_multiple_of(4) {
            ctx.halt(); // halts during round 0: the hardest quiescence case
        } else {
            ctx.broadcast(self.acc);
        }
    }

    fn on_round(&mut self, ctx: &mut Context<'_, u64>, inbox: &[(Port, u64)]) {
        for &(p, x) in inbox {
            self.acc = self.acc.wrapping_mul(37).wrapping_add(x ^ p as u64);
        }
        if ctx.round() >= self.halt_round {
            ctx.halt();
        } else {
            ctx.broadcast(self.acc & 0xFFFF);
        }
    }

    fn into_output(self) -> u64 {
        self.acc
    }
}

#[test]
fn chatter_under_heavy_combined_schedule() {
    for seed in 0..SEEDS {
        let g = graph_for(seed);
        let cfg = SimConfig::congest_for(g.node_count(), 4).seed(seed).max_rounds(200);
        let faults = FaultPlan {
            loss: 0.2,
            dup: 0.1,
            reorder: 0.15,
            crashes: vec![(2, 3), (5, 5)],
            recoveries: vec![(2, 8)],
            ..FaultPlan::default()
        };
        let churn = ChurnPlan::default()
            .with_absent_nodes(vec![12])
            .with_event(2, ChurnKind::EdgeDown { edge: 0 })
            .with_event(4, ChurnKind::Join { node: 12 })
            .with_event(6, ChurnKind::Leave { node: 17 })
            .with_event(7, ChurnKind::EdgeUp { edge: 0 });
        assert_equivalent(&g, cfg, &faults, &churn, |v, _g| Chatter {
            acc: 0,
            halt_round: 6 + v % 5,
        });
    }
}

/// Quiescence-terminated message-driven protocol under churn: the
/// marker stream is control plane, so it must not keep a quiescent
/// network awake ([`dam_congest::RunStats::frames`] excludes markers).
#[test]
fn quiescent_relay_equivalence() {
    struct Relay;
    impl Protocol for Relay {
        type Msg = u32;
        type Output = u32;
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if ctx.id().is_multiple_of(5) {
                ctx.broadcast(8);
            }
        }
        fn on_round(&mut self, ctx: &mut Context<'_, u32>, inbox: &[(Port, u32)]) {
            for &(p, ttl) in inbox {
                if ttl > 0 {
                    let next = (p + 1) % ctx.degree();
                    ctx.send(next, ttl - 1);
                }
            }
        }
        fn into_output(self) -> u32 {
            0
        }
    }
    for seed in 0..SEEDS {
        let g = graph_for(seed);
        let cfg = SimConfig::local().seed(seed).quiesce_after(2).max_rounds(500);
        assert_equivalent(&g, cfg, &churn_faults(), &churn_plan(), |_, _g| Relay);
    }
}

/// Telemetry non-perturbation on the asynchronous engine: attaching a
/// recording sink must leave outputs, statistics and trace streams
/// bit-identical, while the recorded series tracks the engine's round
/// clock (one cumulative sample per executed round).
#[test]
fn async_sink_observes_without_perturbing() {
    for seed in 0..SEEDS {
        let g = graph_for(seed);
        let cfg = SimConfig::congest_for(g.node_count(), 8)
            .seed(seed)
            .max_rounds(2_000)
            .backend(Backend::Async)
            .delay(DelayModel::UniformRandom { max: 5 });
        let make = |v: usize, graph: &dyn Topology| {
            Resilient::new(IiNode::new(graph.degree(v)), TransportCfg::default())
        };
        let bare = {
            let mut net = Network::new(&g, cfg);
            net.execute_plan_traced(make, &fault_plan(), &ChurnPlan::default())
        };
        let sink = Arc::new(RecordingSink::new());
        let tapped = {
            let mut net = Network::new(&g, cfg);
            net.set_stats_sink(Some(SinkHandle::from(Arc::clone(&sink))));
            net.execute_plan_traced(make, &fault_plan(), &ChurnPlan::default())
        };
        match (&bare, &tapped) {
            (Ok((bo, bt)), Ok((to, tt))) => {
                assert_eq!(bo.outputs, to.outputs, "sink perturbed outputs (seed {seed})");
                assert_eq!(bo.stats, to.stats, "sink perturbed stats (seed {seed})");
                assert_eq!(bt.events(), tt.events(), "sink perturbed trace (seed {seed})");
                let samples = sink.samples();
                assert_eq!(samples.len() as u64, to.stats.rounds, "one sample per round");
                let last = samples.last().unwrap();
                assert_eq!(last.messages, to.stats.messages);
                assert_eq!(last.retransmissions, to.stats.retransmissions);
                assert!(
                    samples.windows(2).all(|w| w[0].messages <= w[1].messages),
                    "monotone series"
                );
            }
            (Err(be), Err(te)) => {
                // The error path must be untouched too, and the sink
                // still streamed every executed round.
                assert_eq!(format!("{be:?}"), format!("{te:?}"), "sink perturbed the error");
                assert!(sink.len() >= cfg.max_rounds, "the aborted run still streamed rounds");
            }
            _ => panic!("attaching a sink changed termination (seed {seed})"),
        }
    }
}

/// The adaptive transport on the asynchronous backend: the controller's
/// observations are node-local counters of a deterministic run, so
/// sequential and async engines must agree bit-for-bit (modulo markers)
/// exactly as they do for the static transport.
#[test]
fn adaptive_transport_async_equivalence() {
    for seed in 0..SEEDS {
        let g = graph_for(seed);
        let cfg = SimConfig::congest_for(g.node_count(), 8).seed(seed).max_rounds(2_000);
        assert_equivalent(&g, cfg, &fault_plan(), &ChurnPlan::default(), |v, graph| {
            Resilient::with_policy(IiNode::new(graph.degree(v)), AdaptivePolicy::default())
        });
    }
}

/// The backend dispatcher itself: `execute_plan_traced` with
/// `Backend::Async` must route to the asynchronous engine (markers
/// appear) and still agree with an explicit sequential call.
#[test]
fn execute_plan_dispatches_to_async() {
    let g = graph_for(3);
    let cfg = SimConfig::congest_for(g.node_count(), 8).seed(3).max_rounds(2_000);
    let make = |v: usize, graph: &dyn Topology| {
        Resilient::new(IiNode::new(graph.degree(v)), TransportCfg::default())
    };
    let (so, st) = {
        let mut net = Network::new(&g, cfg);
        net.run_churned_traced(make, &fault_plan(), &ChurnPlan::default()).unwrap()
    };
    let mut net =
        Network::new(&g, cfg.backend(Backend::Async).delay(DelayModel::UniformRandom { max: 4 }));
    let (ao, at) = net.execute_plan_traced(make, &fault_plan(), &ChurnPlan::default()).unwrap();
    assert_eq!(so.outputs, ao.outputs);
    assert_eq!(st.events(), at.events());
    assert!(ao.stats.markers > 0, "dispatch must reach the async engine");
    assert!(net.async_info().is_some());
}
