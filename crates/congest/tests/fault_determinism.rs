//! Regression: identical seeds and fault plans must reproduce runs
//! **bit-identically** — same outputs, same statistics, same trace,
//! event for event. Every experiment and shrunken proptest failure in
//! the workspace relies on this.

use dam_congest::{
    ChurnKind, ChurnPlan, Context, FaultKind, FaultPlan, Network, Port, Protocol, Resilient,
    RunStats, SimConfig, TraceEvent, TransportCfg,
};
use dam_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small flood whose accumulator is sensitive to message order and
/// provenance, so any divergence between two runs shows up in the
/// outputs.
struct SumFlood {
    acc: u64,
    rounds: usize,
}

impl Protocol for SumFlood {
    type Msg = u64;
    type Output = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        self.acc = ctx.id() as u64 + 1;
        ctx.broadcast(self.acc);
    }

    fn on_round(&mut self, ctx: &mut Context<'_, u64>, inbox: &[(Port, u64)]) {
        for &(p, v) in inbox {
            self.acc = self.acc.wrapping_mul(31).wrapping_add(v ^ p as u64);
        }
        if ctx.round() >= self.rounds {
            ctx.halt();
        } else {
            ctx.broadcast(self.acc);
        }
    }

    fn into_output(self) -> u64 {
        self.acc
    }
}

fn hostile_plan() -> FaultPlan {
    FaultPlan {
        loss: 0.15,
        dup: 0.05,
        reorder: 0.2,
        corrupt: 0.08,
        crashes: vec![(2, 6), (7, 11)],
        recoveries: vec![(7, 40)],
        equivocators: vec![5],
        ..FaultPlan::default()
    }
}

fn run_once(engine_seed: u64) -> (Vec<u64>, RunStats, Vec<TraceEvent>) {
    let mut rng = StdRng::seed_from_u64(99);
    let g = generators::gnp(24, 0.2, &mut rng);
    let mut net = Network::new(&g, SimConfig::local().seed(engine_seed));
    let (out, trace) = net
        .run_faulty_traced(
            |_, _| Resilient::new(SumFlood { acc: 0, rounds: 6 }, TransportCfg::default()),
            &hostile_plan(),
        )
        .expect("faulty run");
    (out.outputs, out.stats, trace.events().to_vec())
}

#[test]
fn identical_seed_and_plan_reproduce_bit_identically() {
    let (out_a, stats_a, trace_a) = run_once(7);
    let (out_b, stats_b, trace_b) = run_once(7);
    assert_eq!(out_a, out_b, "outputs must be bit-identical");
    assert_eq!(stats_a, stats_b, "statistics must be bit-identical");
    assert_eq!(trace_a.len(), trace_b.len(), "traces must have equal length");
    assert_eq!(trace_a, trace_b, "traces must match event for event");
}

#[test]
fn different_seeds_actually_diverge() {
    // Sanity check that the determinism test is not vacuous: a different
    // engine seed draws different fault coins, so the traces differ.
    let (_, _, trace_a) = run_once(7);
    let (_, _, trace_b) = run_once(8);
    assert_ne!(trace_a, trace_b);
}

/// Churned nodes stay disjoint from the fault plan's crash set {2, 7}
/// (the engine validates exactly that).
fn churn_plan() -> ChurnPlan {
    ChurnPlan::default()
        .with_absent_nodes(vec![21])
        .with_event(4, ChurnKind::EdgeDown { edge: 1 })
        .with_event(9, ChurnKind::Leave { node: 13 })
        .with_event(14, ChurnKind::Join { node: 21 })
        .with_event(18, ChurnKind::EdgeUp { edge: 1 })
}

fn run_churned_once(engine_seed: u64) -> (Vec<u64>, RunStats, Vec<TraceEvent>) {
    let mut rng = StdRng::seed_from_u64(99);
    let g = generators::gnp(24, 0.2, &mut rng);
    let mut net = Network::new(&g, SimConfig::local().seed(engine_seed));
    let (out, trace) = net
        .run_churned_traced(
            |_, _| Resilient::new(SumFlood { acc: 0, rounds: 6 }, TransportCfg::default()),
            &hostile_plan(),
            &churn_plan(),
        )
        .expect("churned run");
    (out.outputs, out.stats, trace.events().to_vec())
}

#[test]
fn identical_seed_and_plans_reproduce_churned_runs_bit_identically() {
    let (out_a, stats_a, trace_a) = run_churned_once(7);
    let (out_b, stats_b, trace_b) = run_churned_once(7);
    assert_eq!(out_a, out_b, "outputs must be bit-identical");
    assert_eq!(stats_a, stats_b, "statistics must be bit-identical");
    assert_eq!(trace_a, trace_b, "traces must match event for event");
}

#[test]
fn churned_runs_diverge_across_seeds() {
    let (_, _, trace_a) = run_churned_once(7);
    let (_, _, trace_b) = run_churned_once(8);
    assert_ne!(trace_a, trace_b);
}

#[test]
fn churned_trace_records_every_topology_event() {
    let (_, stats, trace) = run_churned_once(7);
    let churns: Vec<ChurnKind> = trace
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Churn { kind, .. } => Some(*kind),
            _ => None,
        })
        .collect();
    assert_eq!(
        churns,
        vec![
            ChurnKind::EdgeDown { edge: 1 },
            ChurnKind::Leave { node: 13 },
            ChurnKind::Join { node: 21 },
            ChurnKind::EdgeUp { edge: 1 },
        ],
        "every planned topology event must be traced, in order"
    );
    assert_eq!(stats.churn_events, 4, "stats must count the planned events");
}

#[test]
fn faulty_trace_records_faults_and_stats_separate_overhead() {
    let (_, stats, trace) = run_once(7);
    let kind_count = |k: FaultKind| {
        trace.iter().filter(|e| matches!(e, TraceEvent::Fault { kind, .. } if *kind == k)).count()
    };
    assert!(kind_count(FaultKind::Loss) > 0, "losses must be traced");
    assert_eq!(kind_count(FaultKind::Crash), 2, "both crashes must be traced");
    assert_eq!(kind_count(FaultKind::Recover), 1, "the recovery must be traced");
    assert!(stats.retransmissions > 0, "loss must force retransmissions");
    assert!(stats.heartbeats > 0, "the failure detector must emit heartbeats");
    assert!(stats.messages > 0, "protocol payloads are accounted in their own class");
}

#[test]
fn integrity_faults_are_traced_and_counted() {
    let (_, stats, trace) = run_once(7);
    let corrupts = trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::Fault { kind: FaultKind::Corrupt { .. }, .. }))
        .count() as u64;
    let equivs = trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::Fault { kind: FaultKind::Equivocate { .. }, .. }))
        .count() as u64;
    assert!(corrupts > 0, "the corruption channel must fire under an 8% rate");
    assert!(equivs > 0, "the equivocator must tamper its outgoing frames");
    assert_eq!(stats.corruptions, corrupts, "stats and trace must agree on corruptions");
    assert_eq!(stats.equivocations, equivs, "stats and trace must agree on equivocations");
    assert!(stats.rejected > 0, "damaged frames must be rejected by receiver validation");
}
