//! Bandwidth conformance: every message of the CONGEST algorithms must
//! fit the Lemma 3.9 `O(log n)`-bit budget, as re-derived from the trace
//! by [`Trace::check_bandwidth`] — not just trusted from the engine's
//! violation counter. LOCAL-model runs are flagged *exempt*, never
//! silently passed. Property-tested over random graphs and seeds.

use dam_congest::{
    Bandwidth, BitSize, Context, Network, Port, Protocol, SimConfig, Trace, TraceEvent,
};
use dam_core::israeli_itai::IiNode;
use dam_core::luby::LubyNode;
use dam_graph::{generators, Graph, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Traces one sequential run and returns it with its configured model.
fn traced_run<P, F>(g: &Graph, config: SimConfig, make: F) -> Trace
where
    P: Protocol,
    F: FnMut(usize, &dyn Topology) -> P,
{
    let mut net = Network::new(g, config);
    let (_, trace) = net.run_traced(make).expect("run failed");
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Israeli–Itai's handshake fits CONGEST(4 log n) on arbitrary
    /// random graphs — the width claim behind its Theorem 1 round bound.
    #[test]
    fn israeli_itai_fits_congest_budget(n in 4usize..48, p in 0.05f64..0.4, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5);
        let g = generators::gnp(n, p, &mut rng);
        let config = SimConfig::congest_for(g.node_count(), 4).seed(seed);
        let trace = traced_run(&g, config, |v, graph| IiNode::new(graph.degree(v)));
        let verdict = trace.check_bandwidth(config.model);
        prop_assert!(verdict.conforms(), "II exceeded its budget: {verdict}");
    }

    /// Luby's MIS exchanges (priority, status) pairs that likewise fit
    /// CONGEST(4 log n).
    #[test]
    fn luby_fits_congest_budget(n in 4usize..48, p in 0.05f64..0.4, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5A5A);
        let g = generators::gnp(n, p, &mut rng);
        let config = SimConfig::congest_for(g.node_count(), 4).seed(seed);
        let trace = traced_run(&g, config, |v, graph| LubyNode::new(graph.degree(v)));
        let verdict = trace.check_bandwidth(config.model);
        prop_assert!(verdict.conforms(), "Luby exceeded its budget: {verdict}");
    }

    /// The parallel engine's trace validates exactly like the
    /// sequential one (it is byte-equal, so this must hold — checked
    /// end-to-end anyway).
    #[test]
    fn parallel_trace_validates_identically(n in 4usize..40, seed in 0u64..500, threads in 2usize..6) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0DD5);
        let g = generators::gnp(n, 0.2, &mut rng);
        let config = SimConfig::congest_for(g.node_count(), 4).seed(seed);
        let seq = traced_run(&g, config, |v, graph| IiNode::new(graph.degree(v)));
        let mut net = Network::new(&g, config);
        let (_, par) = net
            .run_parallel_traced(|v, graph| IiNode::new(graph.degree(v)), threads)
            .expect("parallel run failed");
        prop_assert_eq!(seq.check_bandwidth(config.model), par.check_bandwidth(config.model));
    }

    /// LOCAL runs must come back exempt — a LOCAL trace passing for
    /// "conformant" would let unbounded-width algorithms masquerade as
    /// CONGEST results.
    #[test]
    fn local_runs_are_exempt(n in 4usize..40, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x10CA);
        let g = generators::gnp(n, 0.2, &mut rng);
        let config = SimConfig::local().seed(seed);
        let trace = traced_run(&g, config, |v, graph| IiNode::new(graph.degree(v)));
        let verdict = trace.check_bandwidth(config.model);
        prop_assert!(verdict.is_exempt() && !verdict.conforms());
        let exempt = matches!(verdict, Bandwidth::Exempt { .. });
        prop_assert!(exempt);
    }
}

/// A protocol sending mixed-width messages, some deliberately oversize.
struct Mixed {
    rounds: usize,
}

#[derive(Debug, Clone, PartialEq)]
struct WideMsg(usize);

impl BitSize for WideMsg {
    fn bit_size(&self) -> usize {
        self.0
    }
}

impl Protocol for Mixed {
    type Msg = WideMsg;
    type Output = ();

    fn on_start(&mut self, ctx: &mut Context<'_, WideMsg>) {
        for p in ctx.ports() {
            ctx.send(p, WideMsg(8));
        }
    }

    fn on_round(&mut self, ctx: &mut Context<'_, WideMsg>, _inbox: &[(Port, WideMsg)]) {
        if ctx.round() >= self.rounds {
            ctx.halt();
            return;
        }
        for p in ctx.ports() {
            let wide = ctx.rng().random_bool(0.3);
            ctx.send(p, WideMsg(if wide { 128 } else { 8 }));
        }
    }

    fn into_output(self) {}
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The validator's violation count equals the engine's own `oversize`
    /// stamps and the `violations` statistic — three independently
    /// derived counts of the same events.
    #[test]
    fn validator_agrees_with_engine_accounting(n in 3usize..30, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let g = generators::gnp(n, 0.25, &mut rng);
        let config = SimConfig::congest(16).seed(seed);
        let mut net = Network::new(&g, config);
        let (out, trace) = net
            .run_traced(|_, _| Mixed { rounds: 4 })
            .expect("run failed");
        let verdict = trace.check_bandwidth(config.model);
        let Bandwidth::Checked { sends, widest, ref violations, .. } = verdict else {
            panic!("CONGEST run must be checked");
        };
        let stamped = trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Send { oversize: true, .. }))
            .count();
        prop_assert_eq!(violations.len(), stamped);
        prop_assert_eq!(violations.len() as u64, out.stats.violations);
        prop_assert_eq!(sends as u64, out.stats.messages);
        prop_assert_eq!(widest, out.stats.max_message_bits);
    }
}
