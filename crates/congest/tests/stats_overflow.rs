//! Regression for the counter-overflow audit: the hot [`RunStats`]
//! counters are 64-bit and saturating, so marathon runs (chaos
//! campaigns, churn soaks) accumulate correctly instead of wrapping.
//! Exercises a real 10⁵-round engine run plus fold-in of near-`u64::MAX`
//! partials, on both engines.

use dam_congest::{BitSize, Context, Network, Port, Protocol, RunStats, SimConfig, TotalStats};
use dam_graph::generators;

/// Broadcasts a 32-bit beacon every round until a fixed horizon.
struct Beacon {
    horizon: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Tick(u32);

impl BitSize for Tick {
    fn bit_size(&self) -> usize {
        32
    }
}

impl Protocol for Beacon {
    type Msg = Tick;
    type Output = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, Tick>) {
        ctx.broadcast(Tick(0));
    }

    fn on_round(&mut self, ctx: &mut Context<'_, Tick>, _inbox: &[(Port, Tick)]) {
        if ctx.round() >= self.horizon {
            ctx.halt();
        } else {
            ctx.broadcast(Tick(ctx.round() as u32));
        }
    }

    fn into_output(self) -> u64 {
        0
    }
}

const HORIZON: usize = 100_000;

fn expected(rounds: u64) -> (u64, u64) {
    // path(2): each node has 1 port; both broadcast every non-final
    // round (round 0 through HORIZON-1), so 2 messages and 64 bits per
    // sending round.
    let sending_rounds = rounds - 1;
    (2 * sending_rounds, 64 * sending_rounds)
}

#[test]
fn hundred_thousand_round_run_accumulates_exactly() {
    let g = generators::path(2);
    let mut net = Network::new(&g, SimConfig::local().max_rounds(200_000));
    let out = net.run(|_, _| Beacon { horizon: HORIZON }).unwrap();
    let s = out.stats;
    assert_eq!(s.rounds, HORIZON as u64 + 1, "round 0 through the halt round");
    let (messages, bits) = expected(s.rounds);
    assert_eq!(s.messages, messages);
    assert_eq!(s.total_bits, bits);
    assert_eq!(s.charged_rounds, s.rounds);
    assert_eq!(s.max_message_bits, 32);
    assert_eq!(s.violations, 0);
}

#[test]
fn parallel_engine_accumulates_identically() {
    let g = generators::path(2);
    let seq = {
        let mut net = Network::new(&g, SimConfig::local().max_rounds(200_000));
        net.run(|_, _| Beacon { horizon: HORIZON }).unwrap()
    };
    let mut net = Network::new(&g, SimConfig::local().max_rounds(200_000));
    let par = net.run_parallel(|_, _| Beacon { horizon: HORIZON }, 2).unwrap();
    assert_eq!(seq.stats, par.stats);
    assert_eq!(seq.outputs, par.outputs);
}

/// Folding a marathon run's stats into near-saturated totals must pin
/// at `u64::MAX`, not wrap — a wrapped `total_bits` silently corrupts
/// every downstream ratio in the experiment tables.
#[test]
fn totals_saturate_when_folding_marathon_partials() {
    let g = generators::path(2);
    let mut net = Network::new(&g, SimConfig::local().max_rounds(200_000));
    let out = net.run(|_, _| Beacon { horizon: HORIZON }).unwrap();

    let mut totals = TotalStats::default();
    totals.record(&RunStats {
        rounds: u64::MAX - 10,
        messages: u64::MAX - 10,
        total_bits: u64::MAX - 10,
        ..RunStats::default()
    });
    totals.record(&out.stats);
    assert_eq!(totals.runs, 2);
    assert_eq!(totals.stats.rounds, u64::MAX);
    assert_eq!(totals.stats.messages, u64::MAX);
    assert_eq!(totals.stats.total_bits, u64::MAX);
    // frames() over pinned counters stays pinned.
    assert_eq!(totals.stats.frames(), u64::MAX);
}
