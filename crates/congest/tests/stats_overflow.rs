//! Regression for the counter-overflow audit: the hot [`RunStats`]
//! counters are 64-bit and saturating, so marathon runs (chaos
//! campaigns, churn soaks) accumulate correctly instead of wrapping.
//! Exercises a real 10⁵-round engine run plus fold-in of near-`u64::MAX`
//! partials, on both engines.

use dam_congest::{
    Backend, BitSize, Context, Network, Port, Protocol, RunStats, SimConfig, TotalStats,
};
use dam_graph::generators;

/// Broadcasts a 32-bit beacon every round until a fixed horizon.
struct Beacon {
    horizon: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Tick(u32);

impl BitSize for Tick {
    fn bit_size(&self) -> usize {
        32
    }
}

impl Protocol for Beacon {
    type Msg = Tick;
    type Output = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, Tick>) {
        ctx.broadcast(Tick(0));
    }

    fn on_round(&mut self, ctx: &mut Context<'_, Tick>, _inbox: &[(Port, Tick)]) {
        if ctx.round() >= self.horizon {
            ctx.halt();
        } else {
            ctx.broadcast(Tick(ctx.round() as u32));
        }
    }

    fn into_output(self) -> u64 {
        0
    }
}

/// Broadcasts on even rounds only; every odd round is silent, so on
/// the asynchronous backend the α-synchronizer must cover each
/// (node, port) of those rounds with an empty marker.
struct HalfBeacon {
    horizon: usize,
}

impl Protocol for HalfBeacon {
    type Msg = Tick;
    type Output = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, Tick>) {
        ctx.broadcast(Tick(0));
    }

    fn on_round(&mut self, ctx: &mut Context<'_, Tick>, _inbox: &[(Port, Tick)]) {
        if ctx.round() >= self.horizon {
            ctx.halt();
        } else if ctx.round() % 2 == 0 {
            ctx.broadcast(Tick(ctx.round() as u32));
        }
    }

    fn into_output(self) -> u64 {
        0
    }
}

const HORIZON: usize = 100_000;

fn expected(rounds: u64) -> (u64, u64) {
    // path(2): each node has 1 port; both broadcast every non-final
    // round (round 0 through HORIZON-1), so 2 messages and 64 bits per
    // sending round.
    let sending_rounds = rounds - 1;
    (2 * sending_rounds, 64 * sending_rounds)
}

#[test]
fn hundred_thousand_round_run_accumulates_exactly() {
    let g = generators::path(2);
    let mut net = Network::new(&g, SimConfig::local().max_rounds(200_000));
    let out = net.run(|_, _| Beacon { horizon: HORIZON }).unwrap();
    let s = out.stats;
    assert_eq!(s.rounds, HORIZON as u64 + 1, "round 0 through the halt round");
    let (messages, bits) = expected(s.rounds);
    assert_eq!(s.messages, messages);
    assert_eq!(s.total_bits, bits);
    assert_eq!(s.charged_rounds, s.rounds);
    assert_eq!(s.max_message_bits, 32);
    assert_eq!(s.violations, 0);
}

#[test]
fn parallel_engine_accumulates_identically() {
    let g = generators::path(2);
    let seq = {
        let mut net = Network::new(&g, SimConfig::local().max_rounds(200_000));
        net.run(|_, _| Beacon { horizon: HORIZON }).unwrap()
    };
    let mut net = Network::new(&g, SimConfig::local().max_rounds(200_000));
    let par = net.run_parallel(|_, _| Beacon { horizon: HORIZON }, 2).unwrap();
    assert_eq!(seq.stats, par.stats);
    assert_eq!(seq.outputs, par.outputs);
}

/// A 10⁵-round marathon on the asynchronous backend accumulates the
/// synchronizer's marker counter exactly: one marker per (node, port)
/// of every silent round, while the payload counters match the
/// synchronous run bit for bit.
#[test]
fn async_marathon_counts_markers_exactly() {
    let g = generators::path(2);
    let seq = {
        let mut net = Network::new(&g, SimConfig::local().max_rounds(200_000));
        net.run(|_, _| HalfBeacon { horizon: HORIZON }).unwrap()
    };
    let mut net = Network::new(&g, SimConfig::local().max_rounds(200_000).backend(Backend::Async));
    let asy = net.execute(|_, _| HalfBeacon { horizon: HORIZON }).unwrap();
    assert_eq!(asy.outputs, seq.outputs);
    // Odd rounds 1, 3, …, HORIZON−1 are silent, and so is the final
    // halt round: HORIZON/2 + 1 rounds, two nodes, one port each.
    assert_eq!(asy.stats.markers, 2 * (HORIZON as u64 / 2 + 1));
    let info = net.async_info().expect("async run records its timing");
    assert_eq!(info.markers, asy.stats.markers);
    // Markers are control plane: zeroing them recovers the synchronous
    // ledger exactly (frames, bits, rounds — everything).
    let mut scrubbed = asy.stats;
    scrubbed.markers = 0;
    assert_eq!(scrubbed, seq.stats);
}

/// The control-plane counters (`markers`, `suspected`) saturate like
/// the hot ones and never leak into `frames()`.
#[test]
fn control_plane_counters_saturate_and_stay_out_of_frames() {
    let mut totals = TotalStats::default();
    totals.record(&RunStats {
        markers: u64::MAX - 10,
        suspected: u64::MAX - 10,
        ..RunStats::default()
    });
    totals.record(&RunStats { markers: 1_000, suspected: 1_000, ..RunStats::default() });
    assert_eq!(totals.stats.markers, u64::MAX);
    assert_eq!(totals.stats.suspected, u64::MAX);
    assert_eq!(totals.stats.frames(), 0);
}

/// Folding a marathon run's stats into near-saturated totals must pin
/// at `u64::MAX`, not wrap — a wrapped `total_bits` silently corrupts
/// every downstream ratio in the experiment tables.
#[test]
fn totals_saturate_when_folding_marathon_partials() {
    let g = generators::path(2);
    let mut net = Network::new(&g, SimConfig::local().max_rounds(200_000));
    let out = net.run(|_, _| Beacon { horizon: HORIZON }).unwrap();

    let mut totals = TotalStats::default();
    totals.record(&RunStats {
        rounds: u64::MAX - 10,
        messages: u64::MAX - 10,
        total_bits: u64::MAX - 10,
        ..RunStats::default()
    });
    totals.record(&out.stats);
    assert_eq!(totals.runs, 2);
    assert_eq!(totals.stats.rounds, u64::MAX);
    assert_eq!(totals.stats.messages, u64::MAX);
    assert_eq!(totals.stats.total_bits, u64::MAX);
    // frames() over pinned counters stays pinned.
    assert_eq!(totals.stats.frames(), u64::MAX);
}
