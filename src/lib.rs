#![warn(missing_docs)]

//! # dam — Distributed Approximate Matching
//!
//! A reproduction of *“Improved Distributed Approximate Matching”*
//! (Lotker, Patt-Shamir & Pettie; SPAA 2008 / J. ACM 2015), together with
//! the CONGEST-model network simulator, graph substrate, exact reference
//! algorithms and switch-scheduling application it needs.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`congest`] — the synchronous LOCAL/CONGEST network simulator;
//! * [`graph`] — graphs, matchings, generators, exact oracles;
//! * [`core`] — the paper's distributed algorithms;
//! * [`switch`] — the input-queued switch application from the paper's §1.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use dam_congest as congest;
pub use dam_core as core;
pub use dam_graph as graph;
pub use dam_switch as switch;
