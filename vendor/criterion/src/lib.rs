//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the workspace's `harness = false` benchmarks compiling and
//! runnable without network access. There are no statistics: each
//! registered closure runs exactly once when the binary is invoked with
//! `--bench` (as `cargo bench` does), and is skipped otherwise so that
//! `cargo test` builds of bench targets stay fast.

use std::fmt::Display;
use std::time::Instant;

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.into() }
    }
}

/// A named set of benchmarks (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'c> {
    _c: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim always runs one iteration.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs `f` once against `input`, timing the single pass.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { elapsed_nanos: 0 };
        f(&mut b, input);
        println!("{}/{}: {} ns (single pass)", self.name, id.0, b.elapsed_nanos);
        self
    }

    /// Runs `f` once with no input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { elapsed_nanos: 0 };
        f(&mut b);
        println!("{}/{}: {} ns (single pass)", self.name, id, b.elapsed_nanos);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    elapsed_nanos: u128,
}

impl Bencher {
    /// Times one invocation of `routine` (real criterion runs many).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed_nanos = start.elapsed().as_nanos();
        drop(out);
    }
}

/// A `group/parameter` benchmark label.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    #[must_use]
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Declares a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench binary. The groups run
/// only under `--bench` (i.e. `cargo bench`); a plain test-build
/// invocation exits immediately.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--bench") {
                $($group();)+
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closure_once() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut calls = 0;
        group.sample_size(10).bench_with_input(BenchmarkId::new("f", 1), &3usize, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            });
        });
        group.finish();
        assert_eq!(calls, 1);
    }
}
