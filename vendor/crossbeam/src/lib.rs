//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `thread::scope` API the workspace uses, implemented over
//! `std::thread::scope` (available since Rust 1.63). Crossbeam's scope
//! returns `Result` and passes the scope handle to each spawned closure;
//! both behaviours are preserved here.

pub mod thread {
    use std::any::Any;

    /// Scoped-thread handle passed to [`scope`] closures and spawns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so it
        /// can spawn further threads, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Handle to a thread spawned via [`Scope::spawn`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its panic payload
        /// as `Err` like crossbeam does.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Runs `f` with a scope in which borrowing locals across spawned
    /// threads is allowed; joins all unjoined threads on exit.
    ///
    /// Unlike `std::thread::scope`, a panic in an unjoined child is
    /// returned as `Err` rather than resurfaced, matching crossbeam.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scope_joins_and_returns() {
            let data = [1u64, 2, 3];
            let sum = super::scope(|s| {
                let h = s.spawn(|_| data.iter().sum::<u64>());
                h.join().expect("child panicked")
            })
            .expect("scope failed");
            assert_eq!(sum, 6);
        }

        #[test]
        fn child_panic_becomes_err() {
            let r = super::scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }

        #[test]
        fn nested_spawn_via_scope_handle() {
            let n = super::scope(|s| {
                s.spawn(|s2| s2.spawn(|_| 41).join().expect("inner") + 1).join().expect("outer")
            })
            .expect("scope failed");
            assert_eq!(n, 42);
        }
    }
}
