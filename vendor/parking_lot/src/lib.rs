//! Offline stand-in for the `parking_lot` crate.
//!
//! A `Mutex` over `std::sync::Mutex` exposing parking_lot's unpoisoning
//! `lock()` signature (no `Result`). If a holder panicked, the poison is
//! cleared and the guard returned, which matches parking_lot's
//! no-poisoning semantics closely enough for this workspace.

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A mutual-exclusion lock whose `lock()` never returns `Err`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// Guard returned by [`Mutex::lock`]; unlocks on drop.
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: StdMutex::new(value) }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (exclusive borrow proves safety).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 400);
    }
}
