//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) slice of the `rand` API the workspace
//! actually uses: a deterministic [`rngs::StdRng`] (xoshiro256++ seeded
//! through splitmix64), the [`Rng`]/[`RngExt`]/[`SeedableRng`] traits,
//! and [`seq::SliceRandom`]. Determinism per seed is the only contract
//! the workspace relies on; stream values differ from upstream `rand`.

pub mod rngs;
pub mod seq;

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngExt, SeedableRng};
}

/// A source of random bits.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly over their full value range.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i128 {
    #[allow(clippy::cast_possible_wrap)]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[allow(clippy::cast_precision_loss)]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }
}

impl Standard for f32 {
    #[allow(clippy::cast_precision_loss)]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / 16_777_216.0)
    }
}

/// Types with a uniform sampler over sub-ranges.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_lossless)]
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample from empty range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u128;
                let off = (u128::from(rng.next_u64()) * span) >> 64;
                (lo as i128 + off as i128) as $t
            }

            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_lossless)]
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample from empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = if span > u128::from(u64::MAX) {
                    u128::from(rng.next_u64())
                } else {
                    (u128::from(rng.next_u64()) * span) >> 64
                };
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample from empty range {lo}..{hi}");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }

            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample from empty range {lo}..={hi}");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Range forms accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Clone> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A uniformly distributed value over `T`'s full range.
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// `true` with probability `p` (clamped into `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        f64::sample_standard(self) < p
    }

    /// A uniform draw from `range` (half-open or inclusive).
    fn random_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: i32 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let z: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&z));
            let w: usize = rng.random_range(0..1);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn bool_probability_is_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
