//! RNG implementations; only [`StdRng`] is provided.

use crate::{Rng, SeedableRng};

/// splitmix64 finalizer, used to expand the 64-bit seed into state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator.
///
/// Not cryptographically secure; statistically solid and fast, which is
/// all the simulator needs. The name mirrors `rand::rngs::StdRng` so the
/// workspace compiles unchanged against this vendored stand-in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; splitmix of any seed
        // cannot produce four zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        StdRng { s }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_seeds_diverge() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn clone_preserves_stream() {
        let mut r = StdRng::seed_from_u64(3);
        r.next_u64();
        let mut c = r.clone();
        assert_eq!(r.next_u64(), c.next_u64());
    }
}
