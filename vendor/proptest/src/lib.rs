//! Offline stand-in for the `proptest` crate.
//!
//! Provides deterministic random-input testing with the same surface the
//! workspace uses — the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`/`prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], [`any`], and the `prop_assert*` macros — but no
//! shrinking: a failing case reports its case index and message and the
//! whole test fails. Each `(test name, case index)` pair derives a fixed
//! RNG seed, so failures are reproducible run-to-run.

use std::fmt;

use rand::rngs::StdRng;
use rand::{RngExt, SampleUniform, SeedableRng};

pub mod collection;

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Per-block test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

/// A failed test case (carried by `prop_assert*`).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic RNG for one `(test, case)` pair.
#[must_use]
pub fn case_rng(name: &str, case: u32) -> StdRng {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut h);
    case.hash(&mut h);
    StdRng::seed_from_u64(h.finish())
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl<T: SampleUniform + Clone> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T: SampleUniform + Clone> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

/// A strategy always yielding clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_via_random {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random()
            }
        }
    )*};
}

impl_arbitrary_via_random!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

/// The full-range strategy for `T` (mirrors `proptest::arbitrary::any`).
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng =
                    $crate::case_rng(concat!(module_path!(), "::", stringify!($name)), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                // The immediately-invoked closure gives `$body` a `?`
                // boundary; expansion sites must not trip clippy.
                #[allow(clippy::redundant_closure_call)]
                let __result: $crate::TestCaseResult = (|| -> $crate::TestCaseResult {
                    $body
                    Ok(())
                })();
                if let Err(e) = __result {
                    panic!(
                        "proptest {} failed at case {}: {}",
                        stringify!($name),
                        __case,
                        e
                    );
                }
            }
        }
    )*};
}

/// `assert!` that fails the current proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that fails the current proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// `assert_ne!` that fails the current proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                left, right
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in 0u64..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn combinators_compose(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn flat_map_threads_values(pair in (1usize..5).prop_flat_map(|n| (Just(n), 0usize..n))) {
            let (n, k) = pair;
            prop_assert!(k < n, "k={} must stay below n={}", k, n);
        }

        #[test]
        fn any_generates(b in any::<bool>(), s in any::<u64>()) {
            let _ = (b, s);
        }
    }

    use crate::{Just, Strategy};

    #[test]
    fn cases_are_deterministic() {
        let a: u64 = crate::Strategy::generate(&(0u64..1000), &mut crate::case_rng("t", 0));
        let b: u64 = crate::Strategy::generate(&(0u64..1000), &mut crate::case_rng("t", 0));
        assert_eq!(a, b);
    }

    #[test]
    fn just_yields_constant() {
        assert_eq!(Just(17).generate(&mut crate::case_rng("j", 0)), 17);
    }
}
