//! Collection strategies (`vec`).

use rand::rngs::StdRng;
use rand::RngExt;

use crate::Strategy;

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        // An empty range degenerates to fixed-length `start` rather than
        // panicking; the workspace only builds `0..k` ranges.
        let hi = if r.end > r.start { r.end - 1 } else { r.start };
        SizeRange { lo: r.start, hi }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

/// A vector strategy: elements from `elem`, length from `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { elem, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_range_conversions() {
        let fixed: SizeRange = 3usize.into();
        assert_eq!((fixed.lo, fixed.hi), (3, 3));
        let half: SizeRange = (2usize..5).into();
        assert_eq!((half.lo, half.hi), (2, 4));
        let incl: SizeRange = (1usize..=6).into();
        assert_eq!((incl.lo, incl.hi), (1, 6));
        let empty: SizeRange = (0usize..0).into();
        assert_eq!((empty.lo, empty.hi), (0, 0));
    }

    #[test]
    fn vec_lengths_in_range() {
        let strat = vec(0u8..10, 2..=4);
        for case in 0..50 {
            let v = strat.generate(&mut crate::case_rng("vec", case));
            assert!((2..=4).contains(&v.len()));
        }
    }
}
